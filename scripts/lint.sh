#!/usr/bin/env bash
# Lint gate: ruff (when available) + pando-lint with a zero-findings baseline.
#
# The container used for local development may not ship ruff; the script
# skips it gracefully there and relies on CI (which installs ruff) for the
# style pass.  pando-lint always runs — it only needs the stdlib.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
  echo "== ruff =="
  ruff check src tests examples benchmarks
else
  echo "== ruff not installed; skipping style pass (CI runs it) =="
fi

echo "== pando-lint =="
PYTHONPATH=src python -m repro.analysis src/repro --baseline lint-baseline.txt
