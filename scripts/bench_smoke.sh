#!/usr/bin/env bash
# Fast benchmark smoke: executes the micro-benchmarks and the pool-speedup
# benches in REPRO_BENCH_FAST mode with pytest-benchmark timing disabled, so
# every bench code path runs in seconds.  CI calls this after tier-1.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_BENCH_FAST=1

python -m pytest \
    benchmarks/bench_core_micro.py \
    benchmarks/bench_pool_speedup.py \
    benchmarks/bench_shard_scaling.py \
    benchmarks/bench_unordered_scaling.py \
    benchmarks/bench_event_loop.py \
    benchmarks/bench_shm_transport.py \
    benchmarks/bench_ws_transport.py \
    benchmarks/bench_obs_overhead.py \
    benchmarks/bench_matrix_scale.py \
    -q --benchmark-disable "$@"
