#!/usr/bin/env python
"""Shard the master across two process pools that pump concurrently.

A single `StreamLender` is one ordering domain: one reorder buffer, one
upstream pump — attach two process pools to it and the first pool's blocking
result drain monopolises the interpreter thread while the second idles.
`DistributedMap(shards=2)` splits the input round-robin across two
independent lenders (each with its own reorder buffer, failure queue and
stats), places each pool on the least-loaded shard, and merges the outputs
back in global input order while `drive()` pumps both pools at once.

Run with::

    python examples/sharded_master.py --values 32 --shards 2

Add ``--compare`` to also time the single-master topology and print the
speedup.
"""

from __future__ import annotations

import argparse
import time

from repro import DistributedMap, collect, pull, values


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--values", type=int, default=32)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--processes-per-pool", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=2)
    parser.add_argument(
        "--sleep", type=float, default=0.02,
        help="seconds of simulated work per value (latency-bound, so the "
        "concurrency shows even on a single-core host)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="also run the single-master topology and report the speedup",
    )
    args = parser.parse_args()
    inputs = [
        {"sleep": args.sleep, "index": index} for index in range(args.values)
    ]

    if args.compare:
        from repro.bench.comparison import compare_sharding

        comparison = compare_sharding(
            "repro.pool.workloads:sleep_echo",
            inputs,
            shards=args.shards,
            processes_per_pool=args.processes_per_pool,
            batch_size=args.batch_size,
            workload="sleep_echo",
        )
        print(
            f"single master: {comparison.single_master_seconds:.3f}s, "
            f"{comparison.shards} shards: {comparison.sharded_seconds:.3f}s "
            f"({comparison.speedup:.2f}x, per-shard "
            f"{comparison.per_shard_delivered})"
        )

    started = time.perf_counter()
    dmap = DistributedMap(batch_size=args.batch_size, shards=args.shards)
    output = pull(values(inputs), dmap, collect())
    handles = [
        dmap.add_process_pool(
            "repro.pool.workloads:sleep_echo",
            processes=args.processes_per_pool,
            batch_size=args.batch_size,
        )
        for _ in range(args.shards)
    ]
    try:
        dmap.drive(output)          # pump every pool until the sink completes
        results = output.result()
    finally:
        dmap.close()
    elapsed = time.perf_counter() - started

    assert results == inputs        # global input order, exactly once
    placement = {handle.worker_id: handle.shard for handle in handles}
    print(
        f"processed {len(results)} values in {elapsed:.3f}s on "
        f"{args.shards} shards (placement {placement}, per-shard "
        f"{[stats.results_delivered for stats in dmap.per_shard_stats]})"
    )


if __name__ == "__main__":
    main()
