#!/usr/bin/env python
"""Quickstart: parallelize a function over a stream of values with Pando.

This is the Python equivalent of the paper's Figures 2-3: define a processing
function following the ``f(value, cb)`` convention, hand it to Pando, feed a
stream of inputs, and read the results back **in input order** while workers
join dynamically.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DistributedMap, bundle_function, collect, pull, values


def slow_square(value, cb):
    """The processing function (paper Figure 2 convention).

    Pando does not care what the function does — here it just squares the
    input — only that it reports its result (or an error) through ``cb``.
    """
    try:
        cb(None, int(value) ** 2)
    except Exception as exc:
        cb(exc, None)


def main() -> None:
    # 1. Bundle the processing function, exactly like `pando render.js` does.
    bundle = bundle_function(slow_square, name="square")

    # 2. Build the distributed map: it is a pull-stream *through* placed
    #    between the input stream and the output sink.
    dmap = DistributedMap(batch_size=2)
    inputs = list(range(20))
    output = pull(values(inputs), dmap, collect())

    # 3. Volunteers join dynamically — here three in-process workers, added
    #    *after* the pipeline is already set up, exactly like devices opening
    #    the volunteer URL after the tool started.
    for index in range(3):
        dmap.add_local_worker(bundle.apply, worker_id=f"local-{index}")

    # 4. Results come out in input order even though several workers
    #    processed them concurrently (declarative concurrency).
    results = output.result()
    print("inputs :", inputs)
    print("outputs:", results)
    assert results == [value ** 2 for value in inputs]

    # 5. StreamLender statistics show how the work was shared.
    stats = dmap.stats
    print(f"values read: {stats.values_read}, results delivered: {stats.results_delivered}")
    print("per-worker share:", stats.lent_per_substream)


if __name__ == "__main__":
    main()
