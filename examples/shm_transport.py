#!/usr/bin/env python
"""Move large payloads to a pool through shared memory instead of the pipe.

The process-pool backend's default transport pickles every frame — inputs
and results — through the ``ProcessPoolExecutor`` pipe.  For the paper's
binary workloads (raytraced pixel buffers, image tiles) that serialization
dominates the run.  ``transport="shm"`` keeps the control plane unchanged
and moves the payload bytes through a shared-memory slot ring: one memcpy
in, one memcpy out, only tiny control records on the pipe, and transparent
fallback to the pipe for payloads that fit no slot.

Run with::

    python examples/shm_transport.py --tiles 48 --tile-kb 512 --processes 2

Add ``--compare`` to also time the pipe transport on the same inputs and
print the measured speedup (the quantity ``benchmarks/bench_shm_transport
.py`` holds at >= 2x on large payloads).
"""

from __future__ import annotations

import argparse
import time

from repro import DistributedMap, collect, pull, values
from repro.bench.comparison import large_payload_inputs
from repro.pool.workloads import invert_tile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiles", type=int, default=48)
    parser.add_argument("--tile-kb", type=int, default=512, dest="tile_kb")
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument(
        "--compare", action="store_true",
        help="also run the pipe transport on the same inputs and report "
        "the shm speedup",
    )
    args = parser.parse_args()
    tile_bytes = args.tile_kb * 1024
    tiles = large_payload_inputs(args.tiles, tile_bytes)

    if args.compare:
        from repro.bench.comparison import compare_pool_transport

        comparison = compare_pool_transport(
            "repro.pool.workloads:invert_tile",
            count=args.tiles,
            payload_bytes=tile_bytes,
            processes=args.processes,
            batch_size=args.batch_size,
            workload="invert_tile",
        )
        print(
            f"pipe transport: {comparison.pipe_seconds:.3f}s, "
            f"shm transport: {comparison.shm_seconds:.3f}s "
            f"({comparison.speedup:.2f}x, "
            f"{comparison.shm_bytes_through_ring >> 20} MiB through the ring, "
            f"{comparison.shm_slots_leaked} slots leaked)"
        )

    started = time.perf_counter()
    dmap = DistributedMap(batch_size=args.batch_size)
    output = pull(values(tiles), dmap, collect())
    handle = dmap.add_process_pool(
        "repro.pool.workloads:invert_tile",
        processes=args.processes,
        batch_size=args.batch_size,
        transport="shm",
        slot_size=max(tile_bytes, 1 << 16),
    )
    try:
        inverted = output.result()
    finally:
        dmap.close()
    elapsed = time.perf_counter() - started

    assert inverted == [invert_tile(tile) for tile in tiles]
    ring = handle.pool.ring
    print(
        f"inverted {len(inverted)} tiles of {args.tile_kb} KiB in {elapsed:.3f}s "
        f"on {args.processes} processes: {ring.bytes_written + ring.bytes_read >> 20} "
        f"MiB through {ring.slot_count} shared-memory slots "
        f"({ring.slots_acquired} acquired, {ring.slots_acquired - ring.slots_released} "
        f"leaked, {ring.fallbacks} pipe fallbacks)"
    )


if __name__ == "__main__":
    main()
