#!/usr/bin/env python
"""Replay the paper's three deployments in the simulator (section 5).

Runs the raytracing workload on the simulated LAN (personal devices), VPN
(Grid5000) and WAN (PlanetLab EU) deployments, prints per-device throughput
shares next to the values reported in the paper's Table 2, and demonstrates
fault tolerance by crashing a device mid-run in a second phase (the Figure-4
deployment example).

Run with::

    python examples/simulated_deployments.py [--app raytrace] [--duration 30]
"""

from __future__ import annotations

import argparse

from repro.apps import registry as app_registry
from repro.bench import format_table2_cell, run_cell
from repro.devices import LAN_DEVICES
from repro.sim.failures import FailureSchedule
from repro.sim.scenario import DeploymentScenario, ScenarioConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="raytrace", choices=sorted(app_registry.names()))
    parser.add_argument("--duration", type=float, default=30.0,
                        help="virtual measurement window in seconds")
    args = parser.parse_args()

    # Phase 1: Table-2 style measurements on the three settings.
    for setting in ("lan", "vpn", "wan"):
        try:
            cell = run_cell(args.app, setting, duration=args.duration, warmup=5.0)
        except Exception as exc:  # e.g. imageproc on the WAN (not measured)
            print(f"[{setting.upper()}] skipped: {exc}")
            continue
        print(format_table2_cell(cell))
        print()

    # Phase 2: the Figure-4 deployment example — a tablet (novena) joins,
    # processes, crashes; a phone (iphone-se) joins later and takes over.
    app = app_registry.create(args.app)
    tablet, phone = "novena", "iphone-se"
    config = ScenarioConfig(
        application=app,
        setting="lan",
        devices=[d for d in LAN_DEVICES if d.name in (tablet, phone)],
        tabs={tablet: 1, phone: 1},
        join_times={tablet: 0.0, phone: 2.0},
        failure_schedule=FailureSchedule().crash(4.0, tablet),
    )
    scenario = DeploymentScenario(config)
    outcome = scenario.run_to_completion(app.generate_inputs(12))
    print("Figure-4 style run: tablet joins, phone joins, tablet crashes")
    print(f"  completed at t={outcome.completed_at:.2f}s with "
          f"{len(outcome.outputs)} ordered outputs")
    print(f"  crashes detected: {outcome.registry['crashes']}, "
          f"values re-lent after the crash: {outcome.lender_stats['values_relent']}")
    for line in outcome.log:
        print("  " + line)


if __name__ == "__main__":
    main()
