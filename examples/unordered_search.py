#!/usr/bin/env python
"""Crypto search across an unordered sharded master: first answer wins.

The paper's motivating search scenario (section 4.2): many attempts test
nonce ranges against a difficulty target, exactly one contains a valid
nonce, and the only result anybody cares about is the first hit.  An
*ordered* master would hold that hit hostage until every earlier attempt
completed; ``DistributedMap(shards=N, ordered=False)`` merges the shard
outputs in completion order instead, so the hit is delivered the moment any
shard computes it — and the ``find`` sink then aborts the whole pipeline
(early termination), cancelling the attempts still queued on every shard.

Run with::

    python examples/unordered_search.py --shards 2 --slow-count 100000

Add ``--ordered`` to watch the same search pay the in-order delivery tax.
"""

from __future__ import annotations

import argparse
import time

from repro import DistributedMap, pull
from repro.bench.comparison import crypto_search_inputs
from repro.pullstream import find, values


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--slow-count", type=int, default=100_000,
        help="nonces per slow attempt (the ranges the hit must not wait for)",
    )
    parser.add_argument(
        "--values", type=int, default=12, help="number of search attempts"
    )
    parser.add_argument(
        "--split-buffer", type=int, default=4,
        help="per-shard input buffer cap (bounds memory if a shard stalls)",
    )
    parser.add_argument(
        "--ordered", action="store_true",
        help="use the ordered merge instead, for comparison",
    )
    args = parser.parse_args()
    if args.shards < 2:
        parser.error("--shards must be >= 2 (the unordered merge joins "
                     "multiple shards; use ordered=False on an unsharded "
                     "map for single-lender completion order)")
    if args.values < 2:
        parser.error("--values must be >= 2 (one slow attempt plus the hit)")

    # The hit must land on a fast shard (index % shards != 0) and inside the
    # input; prefer a later index so the in-order delivery tax is visible.
    hit_index = 5 if args.values > 5 and 5 % args.shards != 0 else 1
    attempts, nonce = crypto_search_inputs(
        args.slow_count, shards=args.shards, values=args.values,
        hit_index=hit_index,
    )
    print(f"searching {args.values} attempts for nonce {nonce} "
          f"on {args.shards} shards ({'ordered' if args.ordered else 'unordered'})")

    started = time.perf_counter()
    dmap = DistributedMap(
        ordered=args.ordered,
        shards=args.shards,
        batch_size=1,
        split_buffer=args.split_buffer,
    )
    # ``find`` delivers the first hit and aborts the stream: early
    # termination fans out through the completion-order merge to every
    # shard, its workers, and the input.
    sink = pull(
        values(attempts),
        dmap,
        find(lambda result: result.get("found")),
    )
    try:
        for _ in range(args.shards):
            dmap.add_process_pool(
                "repro.pool.workloads:search_nonces", processes=1, batch_size=1
            )
        dmap.drive(sink)
        hit = sink.result()
    finally:
        dmap.close()
    elapsed = time.perf_counter() - started

    assert hit is not None and hit["nonce"] == nonce
    delivered = dmap.stats.results_delivered
    print(f"found nonce {hit['nonce']} in {elapsed:.3f}s after "
          f"{delivered} delivered result(s); the remaining "
          f"{args.values - delivered} attempt(s) were cancelled")


if __name__ == "__main__":
    main()
