#!/usr/bin/env python
"""Render a raytraced animation on a pool of OS processes.

The paper's motivating example (sections 2.1 and 4.1) renders the frames of a
rotation animation and assembles them in input order.  This example runs it
with the **process-pool backend**: one `DistributedMap` handle drives N
worker processes through the same StreamLender/Limiter composition used for
remote volunteers, with `--batch-size` frames coalesced per inter-process
round trip.

Run with::

    python examples/parallel_raytrace.py --frames 16 --processes 4

Add ``--compare`` to also time a synchronous single-worker run and print the
speedup.
"""

from __future__ import annotations

import argparse
import time

from repro import DistributedMap, collect, pull, values
from repro.apps.raytracer import assemble_animation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--size", default="32x24", help="frame size WxH")
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=2)
    parser.add_argument(
        "--compare", action="store_true",
        help="also run on one in-process worker and report the speedup",
    )
    args = parser.parse_args()
    width, height = (int(part) for part in args.size.split("x"))
    inputs = [
        {
            "angle": (360.0 / args.frames) * index,
            "frame": index,
            "width": width,
            "height": height,
        }
        for index in range(args.frames)
    ]

    if args.compare:
        from repro.bench.comparison import compare_backends

        comparison = compare_backends(
            "repro.pool.workloads:render_frame",
            inputs,
            processes=args.processes,
            batch_size=args.batch_size,
            workload="raytrace",
        )
        print(
            f"local worker: {comparison.local_seconds:.3f}s, "
            f"{args.processes}-process pool: {comparison.pool_seconds:.3f}s "
            f"({comparison.speedup:.2f}x)"
        )

    started = time.perf_counter()
    dmap = DistributedMap(batch_size=args.batch_size)
    output = pull(values(inputs), dmap, collect())
    handle = dmap.add_process_pool(
        "repro.pool.workloads:render_frame",
        processes=args.processes,
        batch_size=args.batch_size,
    )
    try:
        frames = output.result()
    finally:
        dmap.close()
    elapsed = time.perf_counter() - started

    # Results arrive in input order, so the animation assembles directly.
    animation = assemble_animation(frames)
    print(
        f"rendered {animation['frames']} frames ({animation['bytes']} bytes) "
        f"in {elapsed:.3f}s on {args.processes} processes "
        f"({handle.pool.tasks_submitted} frames dispatched in batches of "
        f"<= {args.batch_size})"
    )


if __name__ == "__main__":
    main()
