#!/usr/bin/env python
"""One event loop driving two process pools and a simulated network channel.

Without a scheduler, a single unsharded master serialises its pools: the
first pool's blocking head-of-line drain monopolises the interpreter thread
while the others idle.  `DistributedMap(scheduler="asyncio")` registers
every pool with one `EventLoopScheduler` — their futures wake the loop as
they complete, so all pools compute concurrently without sharding, and a
simulated network channel can interleave with them on the same thread.

Run with::

    python examples/event_loop_master.py --values 32

Add ``--compare`` to also time the blocking single-master topology and
print the speedup, and ``--with-channel`` to attach a simulated volunteer
channel next to the pools (its frames are stepped on the same loop).
"""

from __future__ import annotations

import argparse

from repro import DistributedMap, EventLoopScheduler, collect, pull, values
from repro.pullstream import async_map


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--values", type=int, default=32)
    parser.add_argument("--pools", type=int, default=2)
    parser.add_argument("--processes-per-pool", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=2)
    parser.add_argument(
        "--sleep", type=float, default=0.02,
        help="seconds of simulated work per value (latency-bound, so the "
        "concurrency shows even on a single-core host)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="also run the blocking single-master path and report the speedup",
    )
    parser.add_argument(
        "--with-channel", action="store_true",
        help="attach a simulated volunteer channel driven by the same loop",
    )
    args = parser.parse_args()
    inputs = [
        {"sleep": args.sleep, "index": index} for index in range(args.values)
    ]

    if args.compare:
        from repro.bench.comparison import compare_event_loop

        comparison = compare_event_loop(
            "repro.pool.workloads:sleep_echo",
            inputs,
            pools=args.pools,
            processes_per_pool=args.processes_per_pool,
            batch_size=args.batch_size,
            workload="sleep_echo",
        )
        print(
            f"blocking master: {comparison.blocking_seconds:.3f}s, "
            f"event loop: {comparison.event_loop_seconds:.3f}s, "
            f"speedup: {comparison.speedup:.2f}x "
            f"(per-pool {comparison.per_pool_delivered})"
        )
        assert comparison.results_match
        return

    scheduler = EventLoopScheduler()
    dmap = DistributedMap(batch_size=args.batch_size, scheduler=scheduler)
    sink = pull(values(inputs), dmap, collect())
    try:
        if args.with_channel:
            from repro.net.channel import SimChannel
            from repro.sim.clock import VirtualClock
            from repro.sim.network import LAN_PROFILE, NetworkModel
            from repro.sim.scheduler import Scheduler

            sim = Scheduler(VirtualClock())
            network = NetworkModel(default_profile=LAN_PROFILE, seed=42)
            channel = SimChannel(sim, network, "master", "volunteer",
                                 heartbeats_enabled=False)
            channel.connect(lambda _err, _chan: None)
            sim.run_until(sim.now + 1.0)
            pull(
                channel.remote.duplex.source,
                async_map(lambda value, cb: cb(None, value)),
                channel.remote.duplex.sink,
            )
            dmap.add_channel(channel.local.duplex, worker_id="channel")
            scheduler.register_sim(sim)
        for index in range(args.pools):
            dmap.add_process_pool(
                "repro.pool.workloads:sleep_echo",
                processes=args.processes_per_pool,
                worker_id=f"pool-{index}",
            )
        dmap.drive(sink, timeout=300)
        results = sink.result()
        assert results == inputs
        shares = {
            worker_id: handle.pool.results_returned
            if handle.pool is not None
            else "(channel)"
            for worker_id, handle in dmap.workers.items()
        }
        print(
            f"processed {len(results)} values on one event loop "
            f"({scheduler.rounds} rounds, {scheduler.dispatches} dispatches); "
            f"per-worker results: {shares}"
        )
    finally:
        dmap.close()
        scheduler.close()


if __name__ == "__main__":
    main()
