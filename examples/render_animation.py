#!/usr/bin/env python
"""Render the paper's rotation animation with real raytracing (section 2.1).

The motivating example of the paper: parallelize the raytracing of the frames
of a rotation animation around a 3D scene, while still obtaining the frames
in the correct order so they can be assembled into an animation.

This example performs the *real* computation (a small Whitted-style raytracer
implemented with numpy) on in-process workers, then assembles the frames —
the Python equivalent of::

    ./generate-angles.js | pando render.js --stdin | ./gif-encoder.js

Run with::

    python examples/render_animation.py [--frames 12] [--size 48x36]
"""

from __future__ import annotations

import argparse
import time

from repro import DistributedMap, bundle_function, collect, pull, values
from repro.apps.raytracer import RaytraceApplication, assemble_animation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12, help="number of frames")
    parser.add_argument("--size", default="32x24", help="frame resolution WxH")
    parser.add_argument("--workers", type=int, default=4, help="number of workers")
    args = parser.parse_args()
    width, height = (int(part) for part in args.size.lower().split("x"))

    app = RaytraceApplication(frames=args.frames, width=width, height=height)
    bundle = bundle_function(app.process, name="raytrace", application=app)

    # generate-angles: one camera angle per frame
    angles = list(app.generate_inputs(args.frames))

    # pando render.js --stdin
    dmap = DistributedMap(batch_size=2)
    output = pull(values(angles), dmap, collect())
    started = time.time()
    for index in range(args.workers):
        dmap.add_local_worker(bundle.apply, worker_id=f"tab-{index}")
    frames = output.result()
    elapsed = time.time() - started

    # gif-encoder: assemble in order
    animation = assemble_animation(frames)
    print(f"rendered {animation['frames']} frames of {width}x{height} pixels "
          f"in {elapsed:.2f}s ({animation['frames'] / elapsed:.2f} frames/s)")
    print(f"animation payload: {animation['bytes']} bytes, "
          f"angles: {animation['angles'][:4]}...")
    assert animation["frames"] == args.frames
    assert animation["angles"] == sorted(animation["angles"])


if __name__ == "__main__":
    main()
