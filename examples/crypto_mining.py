#!/usr/bin/env python
"""Synchronous parallel search: mine a small blockchain (paper section 4.2).

Crypto-currency mining introduces a feedback loop (paper Figure 11): a
monitor lazily generates mining attempts (block + nonce range) for the
*current* block, workers search their range, and as soon as a valid nonce is
found the monitor extends the chain and every subsequent attempt targets the
next block.  The unordered StreamLender variant is used so a valid nonce is
never held back behind earlier, uncompleted ranges.

Run with::

    python examples/crypto_mining.py [--blocks 3] [--difficulty 16]
"""

from __future__ import annotations

import argparse
import time

from repro import DistributedMap, bundle_function, drain, from_iterable, pull
from repro.apps.crypto import CryptoMiningApplication, MiningMonitor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=3, help="blocks to mine")
    parser.add_argument("--difficulty", type=int, default=14, help="difficulty bits")
    parser.add_argument("--range-size", type=int, default=2_000, help="nonces per attempt")
    parser.add_argument("--workers", type=int, default=4, help="number of workers")
    args = parser.parse_args()

    app = CryptoMiningApplication(
        difficulty_bits=args.difficulty, range_size=args.range_size
    )
    monitor = MiningMonitor(app, target_height=args.blocks)
    bundle = bundle_function(app.process, name="crypto", application=app)

    # The feedback loop: Pando's outputs feed back into the monitor, which
    # decides what the next lazily-generated attempts look like.
    hashes = {"total": 0}

    def handle_result(result) -> None:
        hashes["total"] += result.get("hashes", 0)
        monitor.record_result(result)
        if result.get("found"):
            print(f"block {result['height']}: nonce {result['nonce']} "
                  f"after {hashes['total']:,} hashes")

    # Unordered: report a valid nonce as soon as possible (section 4.2).
    dmap = DistributedMap(ordered=False, batch_size=2)
    output = pull(from_iterable(monitor.attempts()), dmap, drain(op=handle_result))

    started = time.time()
    for index in range(args.workers):
        dmap.add_local_worker(bundle.apply, worker_id=f"miner-{index}")
    elapsed = time.time() - started

    assert output.done and monitor.done
    print(f"mined {len(monitor.chain)} blocks in {elapsed:.2f}s "
          f"({hashes['total'] / max(elapsed, 1e-9):,.0f} hashes/s)")
    print("chain:", monitor.chain)


if __name__ == "__main__":
    main()
