#!/usr/bin/env python
"""Stubborn processing with a failure-prone external data store (section 4.3).

The image-processing application distributes its ~168 kB tiles outside of
Pando (DAT / WebTorrent in the paper).  Because those transfers are
asynchronous, a worker may report success while the upload of its result
later fails — so the application only emits an output after verifying the
download, and re-submits the input otherwise.  That feedback loop is the
``stubborn`` pull-stream module.

Run with::

    python examples/stubborn_image_processing.py [--tiles 24] [--failure-rate 0.4]
"""

from __future__ import annotations

import argparse

from repro import collect, pull, stubborn, values
from repro.apps.imageproc import FlakyP2PStore, ImageProcessingApplication
from repro.core.stubborn import StubbornStats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiles", type=int, default=24, help="number of tiles to blur")
    parser.add_argument("--failure-rate", type=float, default=0.4,
                        help="probability that an uploaded result never arrives")
    args = parser.parse_args()

    store = FlakyP2PStore(failure_rate=args.failure_rate, seed=7)
    app = ImageProcessingApplication(store=store)

    # process(value, cb): blur the tile and upload it through the flaky store.
    # verify(value, result, cb): check the data actually arrived; otherwise the
    # stubborn module re-submits the input.
    def verify(value, result, cb):
        store.verify(int(value["tile_id"]), result, cb)

    stats = StubbornStats()
    inputs = list(app.generate_inputs(args.tiles))
    output = pull(
        values(inputs),
        stubborn(app.process, verify=verify, stats=stats),
        collect(),
    )
    results = output.result()

    print(f"blurred {len(results)} tiles through a store losing "
          f"{100 * args.failure_rate:.0f}% of uploads")
    print(f"attempts: {stats.attempts}, retries: {stats.retries}, "
          f"verification failures: {stats.verification_failures}")
    print(f"store: {store.uploads} uploads, {store.lost_uploads} lost, "
          f"{len(store.results)} results available")
    assert len(results) == args.tiles
    assert all(store.has_result(value["tile_id"]) for value in inputs)


if __name__ == "__main__":
    main()
