#!/usr/bin/env python
"""Hyper-parameter search for a learning agent (paper section 4.1).

Each streamed value is one learning-rate configuration; the worker trains a
tabular Q-learning agent on a grid world for a fixed number of steps and
reports the cumulative reward and whether the greedy policy reaches the goal.
The post-processing stage picks the best learning rate — the local equivalent
of the paper's hybrid human-machine collaboration where the user watches the
agent learn and early-aborts bad configurations.

Run with::

    python examples/hyperparameter_search.py [--steps 3000]
"""

from __future__ import annotations

import argparse

from repro import DistributedMap, bundle_function, collect, pull, values
from repro.apps.ml_agent import MLAgentApplication


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=3_000, help="training steps per configuration")
    parser.add_argument("--workers", type=int, default=4, help="number of workers")
    args = parser.parse_args()

    rates = [0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    app = MLAgentApplication(learning_rates=rates, steps_per_value=args.steps)
    bundle = bundle_function(app.process, name="ml-agent", application=app)

    configurations = list(app.generate_inputs(len(rates)))
    dmap = DistributedMap(batch_size=2)
    output = pull(values(configurations), dmap, collect())
    for index in range(args.workers):
        dmap.add_local_worker(bundle.apply, worker_id=f"trainer-{index}")

    results = output.result()
    print(f"{'learning rate':>14}  {'reward':>10}  {'episodes':>8}  learned")
    for result in results:
        print(f"{result['learning_rate']:>14}  {result['total_reward']:>10.1f}  "
              f"{result['episodes']:>8}  {result['learned']}")

    best = app.postprocess(results)
    print(f"\nbest learning rate: {best['learning_rate']} "
          f"(cumulative reward {best['total_reward']:.1f})")


if __name__ == "__main__":
    main()
