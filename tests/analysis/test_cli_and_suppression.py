"""The pando-lint front door: suppressions, baseline, CLI and exit codes."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.cli import main as lint_main
from repro.analysis.findings import Finding
from repro.cli.pando_cli import main as pando_main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: a snippet with exactly one callback-discipline violation on line 3
VIOLATION = """\
def node(value, cb):
    if value is None:
        return
    cb(None, value)
"""

CLEAN = """\
def node(value, cb):
    cb(None, value)
"""


class TestSuppressions:
    def test_trailing_comment_silences_the_finding(self, lint):
        result = lint(
            """
            def node(value, cb):
                if value is None:
                    return  # pando-lint: ignore[callback-discipline]
                cb(None, value)
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_comment_on_the_line_above_also_covers(self, lint):
        result = lint(
            """
            def node(value, cb):
                if value is None:
                    # pando-lint: ignore[callback-discipline]
                    return
                cb(None, value)
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_wildcard_silences_any_checker(self, lint):
        result = lint(
            """
            def node(value, cb):
                if value is None:
                    return  # pando-lint: ignore[*]
                cb(None, value)
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_checker_id_does_not_silence(self, lint):
        result = lint(
            """
            def node(value, cb):
                if value is None:
                    return  # pando-lint: ignore[resource-pairing]
                cb(None, value)
            """
        )
        assert len(result.findings) == 1
        assert result.suppressed == 0


class TestBaseline:
    def test_baselined_fingerprint_is_filtered(self, lint):
        first = lint(VIOLATION)
        assert len(first.findings) == 1
        fingerprint = first.findings[0].fingerprint
        second = lint(VIOLATION, baseline={fingerprint})
        assert second.findings == []
        assert second.baselined == 1

    def test_fingerprint_is_line_free(self):
        # an edit that only moves the finding must not invalidate a
        # baseline entry
        a = Finding("c", "p.py", 3, "msg", function="f")
        b = Finding("c", "p.py", 30, "msg", function="f")
        assert a.fingerprint == b.fingerprint

    def test_committed_baseline_is_empty(self):
        from repro.analysis.findings import load_baseline

        assert load_baseline(str(REPO_ROOT / "lint-baseline.txt")) == set()


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN)
        assert lint_main([str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(VIOLATION)
        assert lint_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:3" in out
        assert "[callback-discipline]" in out

    def test_unknown_checker_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN)
        assert lint_main([str(target), "--checks", "no-such-check"]) == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN)
        assert lint_main([str(target), "--baseline", str(tmp_path / "nope")]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert lint_main([str(tmp_path / "missing.py")]) == 2

    def test_parse_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        assert lint_main([str(target)]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_list_checks(self, capsys):
        assert lint_main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        for checker_id in (
            "callback-discipline",
            "resource-pairing",
            "thread-ownership",
            "blocking-call-on-loop",
        ):
            assert checker_id in out


class TestCliOutput:
    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(VIOLATION)
        assert lint_main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert finding["checker"] == "callback-discipline"
        assert finding["line"] == 3
        assert finding["function"] == "node"
        assert finding["fingerprint"].startswith("callback-discipline|")

    def test_checks_filter_limits_the_run(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(VIOLATION)
        assert lint_main([str(target), "--checks", "resource-pairing"]) == 0

    def test_pando_lint_subcommand_delegates(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(VIOLATION)
        assert pando_main(["lint", str(target)]) == 1
        assert "[callback-discipline]" in capsys.readouterr().out


class TestSelfLint:
    def test_src_repro_is_clean_under_the_committed_baseline(self, capsys):
        """The acceptance gate: the shipped tree lints clean."""
        exit_code = lint_main(
            [
                str(REPO_ROOT / "src" / "repro"),
                "--baseline",
                str(REPO_ROOT / "lint-baseline.txt"),
            ]
        )
        assert exit_code == 0
        # the baseline is empty, so zero findings means zero — not
        # grandfathered-away
        assert "0 finding(s)" in capsys.readouterr().err

    def test_textwrap_fixture_sources_parse(self):
        # guard against indentation mistakes in this file's snippets
        compile(textwrap.dedent(VIOLATION), "<v>", "exec")
        compile(textwrap.dedent(CLEAN), "<c>", "exec")
