"""Runtime behaviour of @loop_only / @any_thread and the thread registry."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.annotations import (
    any_thread,
    enable_thread_asserts,
    loop_only,
    loop_thread_ident,
    mark_loop_thread,
    ownership_of,
    thread_asserts_enabled,
    unmark_loop_thread,
)
from repro.errors import ThreadOwnershipError


@pytest.fixture
def asserts_enabled():
    """Enable the runtime checks and register this thread as the loop."""
    previously_enabled = thread_asserts_enabled()
    previous_owner = mark_loop_thread()
    enable_thread_asserts(True)
    yield
    enable_thread_asserts(previously_enabled)
    unmark_loop_thread(previous_owner)


def _call_in_thread(fn):
    """Run *fn* on a foreign thread; return the exception it raised, if any."""
    box = {}

    def runner():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - captured for assertion
            box["exc"] = exc

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    return box.get("exc")


class TestLoopOnly:
    def test_foreign_thread_raises_when_asserts_enabled(self, asserts_enabled):
        @loop_only
        def dispatch():
            return "dispatched"

        exc = _call_in_thread(dispatch)
        assert isinstance(exc, ThreadOwnershipError)
        assert "dispatch" in str(exc)
        assert "PushablePort" in str(exc)  # the message names the fix

    def test_loop_thread_passes_when_asserts_enabled(self, asserts_enabled):
        @loop_only
        def dispatch():
            return "dispatched"

        assert dispatch() == "dispatched"

    def test_no_check_when_asserts_disabled(self):
        previous_owner = mark_loop_thread()
        previously_enabled = thread_asserts_enabled()
        enable_thread_asserts(False)
        try:

            @loop_only
            def dispatch():
                return "dispatched"

            assert _call_in_thread(dispatch) is None
        finally:
            enable_thread_asserts(previously_enabled)
            unmark_loop_thread(previous_owner)

    def test_no_check_when_loop_unmarked(self, asserts_enabled):
        previous = loop_thread_ident()
        unmark_loop_thread()
        try:

            @loop_only
            def dispatch():
                return "dispatched"

            assert _call_in_thread(dispatch) is None
        finally:
            mark_loop_thread(previous)

    def test_tag_survives_the_wrapper(self):
        @loop_only
        def dispatch():
            pass

        assert ownership_of(dispatch) == "loop_only"
        assert ownership_of(dispatch.__wrapped__) == "loop_only"


class TestAnyThread:
    def test_any_thread_is_a_pure_tag(self):
        def entry_point(x):
            return x * 2

        tagged = any_thread(entry_point)
        # identity preserved: executor.submit(entry_point) pickles the
        # original function by reference, so no wrapper is tolerable here
        assert tagged is entry_point
        assert ownership_of(tagged) == "any_thread"
        assert tagged(21) == 42

    def test_untagged_function_has_no_ownership(self):
        def plain():
            pass

        assert ownership_of(plain) is None


class TestLoopThreadRegistry:
    def test_mark_returns_previous_for_restore(self):
        first = mark_loop_thread(111)
        try:
            assert loop_thread_ident() == 111
            second = mark_loop_thread(222)
            assert second == 111
            assert loop_thread_ident() == 222
            unmark_loop_thread(second)
            assert loop_thread_ident() == 111
        finally:
            unmark_loop_thread(first)

    def test_scheduler_run_marks_and_restores(self):
        # EventLoopScheduler.run registers its thread for the duration of
        # the run and restores the previous owner afterwards.
        from repro.pullstream import collect, pull, values
        from repro.sched.event_loop import EventLoopScheduler

        sentinel = mark_loop_thread(12345)
        try:
            scheduler = EventLoopScheduler()
            sink = pull(values([1, 2, 3]), collect())  # completes synchronously
            scheduler.run(sink, timeout=5)
            scheduler.close()
            assert loop_thread_ident() == 12345
        finally:
            unmark_loop_thread(sentinel)
