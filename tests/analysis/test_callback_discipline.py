"""callback-discipline: exactly one answer per path, or a visible hand-off."""

from __future__ import annotations

CHECK = "callback-discipline"


class TestSeededViolations:
    def test_early_return_without_answer_is_caught(self, findings_of):
        findings = findings_of(
            """
            def node(value, cb):
                if value is None:
                    return  # bug: the asker waits forever
                cb(None, value)
            """,
            CHECK,
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.checker == CHECK
        assert finding.function == "node"
        assert "waits forever" in finding.message
        assert finding.line == 4  # the bare return

    def test_fallthrough_without_answer_is_caught(self, findings_of):
        findings = findings_of(
            """
            def node(value, cb):
                if value > 0:
                    cb(None, value)
                # bug: negative values fall off the end unanswered
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "falls off the end" in findings[0].message

    def test_double_invocation_is_caught(self, findings_of):
        findings = findings_of(
            """
            def node(value, cb):
                try:
                    cb(None, compute(value))
                except Exception as exc:
                    cb(exc, None)  # bug: fires again if cb itself raised
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "second" in findings[0].message

    def test_callback_named_callback_is_tracked_too(self, findings_of):
        findings = findings_of(
            """
            def node(value, callback):
                if value:
                    return
                callback(None, value)
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "'callback'" in findings[0].message


class TestCleanExemplars:
    def test_answer_on_every_branch_is_clean(self, findings_of):
        assert not findings_of(
            """
            def node(value, cb):
                if value is None:
                    cb(ValueError("empty"), None)
                    return
                cb(None, value)
            """,
            CHECK,
        )

    def test_compute_then_answer_shape_is_clean(self, findings_of):
        # The shape the app layer was refactored to in this PR.
        assert not findings_of(
            """
            def process(value, cb):
                try:
                    result = compute(value)
                except Exception as exc:
                    cb(exc, None)
                    return
                cb(None, result)
            """,
            CHECK,
        )

    def test_storing_the_callback_is_a_handoff(self, findings_of):
        assert not findings_of(
            """
            def read(self, end, cb):
                if self.buffer:
                    cb(None, self.buffer.pop())
                    return
                self._waiting = cb  # parked for the next push
            """,
            CHECK,
        )

    def test_passing_the_callback_on_is_a_handoff(self, findings_of):
        assert not findings_of(
            """
            def read(end, cb):
                upstream(end, cb)
            """,
            CHECK,
        )

    def test_keyword_argument_handoff_is_recognised(self, findings_of):
        # drain(done=callback): the callback travels inside an ast.keyword.
        assert not findings_of(
            """
            def on_end(callback):
                return drain(op=None, done=callback)
            """,
            CHECK,
        )

    def test_capture_in_nested_function_is_a_handoff(self, findings_of):
        assert not findings_of(
            """
            def node(value, cb):
                def later(err, result):
                    cb(err, result)
                schedule(later)
            """,
            CHECK,
        )

    def test_raising_paths_are_exempt(self, findings_of):
        assert not findings_of(
            """
            def node(value, cb):
                if value is None:
                    raise ValueError("no value")
                cb(None, value)
            """,
            CHECK,
        )

    def test_optional_callback_parameter_is_skipped(self, findings_of):
        # cb=None is legitimately droppable; not a pull-stream answer slot.
        assert not findings_of(
            """
            def fire(value, cb=None):
                if cb is None:
                    return
                cb(None, value)
            """,
            CHECK,
        )

    def test_functions_without_callback_params_are_ignored(self, findings_of):
        assert not findings_of(
            """
            def plain(a, b):
                return a + b
            """,
            CHECK,
        )
