"""blocking-call-on-loop: no unbounded waits in loop-reachable code."""

from __future__ import annotations

CHECK = "blocking-call-on-loop"


class TestSeededViolations:
    def test_untimed_future_result_in_dispatch_is_caught(self, findings_of):
        findings = findings_of(
            """
            class EventLoopScheduler:
                def dispatch_round(self):
                    return self.future.result()  # bug: unbounded wait
            """,
            CHECK,
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.checker == CHECK
        assert "Future.result()" in finding.message
        assert "scheduler dispatch machinery" in finding.detail

    def test_time_sleep_reachable_from_dispatch_is_caught(self, findings_of):
        findings = findings_of(
            """
            import time

            def backoff():
                time.sleep(0.1)

            class EventLoopScheduler:
                def dispatch_round(self):
                    backoff()
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "time.sleep()" in findings[0].message
        # the report names the path from the root into the blocking call
        assert "dispatch_round" in findings[0].detail

    def test_blocking_call_inside_loop_only_is_caught(self, findings_of):
        findings = findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def poll(self):
                return self.result_queue.get()  # bug: parks the loop
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "queue.get()" in findings[0].message

    def test_event_source_hook_is_a_root(self, findings_of):
        findings = findings_of(
            """
            class EventSource:
                pass

            class PoolSource(EventSource):
                def dispatch(self):
                    self.done_event.wait()  # bug: unbounded wait
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "EventSource hook" in findings[0].detail


class TestCleanExemplars:
    def test_bounded_result_is_a_deliberate_tradeoff(self, findings_of):
        assert not findings_of(
            """
            class EventLoopScheduler:
                def dispatch_round(self):
                    return self.future.result(timeout=1.0)
            """,
            CHECK,
        )

    def test_nonblocking_queue_get_is_clean(self, findings_of):
        assert not findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def poll(self):
                return self.result_queue.get(block=False)
            """,
            CHECK,
        )

    def test_blocking_call_off_the_loop_is_out_of_scope(self, findings_of):
        # A worker helper nobody reaches from loop machinery may block.
        assert not findings_of(
            """
            import time

            def child_entry_point(task):
                time.sleep(task.duration)
            """,
            CHECK,
        )

    def test_real_tree_has_no_findings(self):
        from pathlib import Path

        from repro.analysis.runner import analyze_paths, run_checkers

        tree = Path(__file__).resolve().parents[2] / "src" / "repro"
        modules = analyze_paths([str(tree)])
        result = run_checkers(modules, checks=[CHECK])
        assert result.findings == []
