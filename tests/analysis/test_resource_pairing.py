"""resource-pairing: every acquire is released or visibly escapes."""

from __future__ import annotations

CHECK = "resource-pairing"


class TestSeededViolations:
    def test_leaked_slot_on_early_return_is_caught(self, findings_of):
        findings = findings_of(
            """
            def send(self, ring, data):
                slot = ring.acquire()
                if not self.open:
                    return  # bug: the slot is never released
                ring.write(slot, data)
                ring.release(slot)
            """,
            CHECK,
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.checker == CHECK
        assert finding.function == "send"
        assert "slot" in finding.message

    def test_leaked_shared_memory_handle_is_caught(self, findings_of):
        findings = findings_of(
            """
            def attach(name):
                segment = SharedMemory(name=name)
                data = bytes(segment.buf[:4])
                if not data:
                    return None  # bug: segment never closed on this path
                segment.close()
                return data
            """,
            CHECK,
        )
        assert len(findings) == 1

    def test_leaked_executor_is_caught(self, findings_of):
        findings = findings_of(
            """
            def run(tasks):
                executor = ProcessPoolExecutor(2)
                if not tasks:
                    return []
                results = [executor.submit(task) for task in tasks]
                executor.shutdown()
                return results
            """,
            CHECK,
        )
        assert len(findings) == 1

    def test_discarded_acquire_is_caught(self, findings_of):
        findings = findings_of(
            """
            def warm(ring):
                ring.acquire()  # bug: the slot can never be released
            """,
            CHECK,
        )
        assert len(findings) == 1


class TestCleanExemplars:
    def test_acquire_release_pair_is_clean(self, findings_of):
        assert not findings_of(
            """
            def send(ring, data):
                slot = ring.acquire()
                ring.write(slot, data)
                ring.release(slot)
            """,
            CHECK,
        )

    def test_release_in_finally_covers_all_exits(self, findings_of):
        assert not findings_of(
            """
            def send(ring, data):
                slot = ring.acquire()
                try:
                    ring.write(slot, data)
                finally:
                    ring.release(slot)
            """,
            CHECK,
        )

    def test_none_narrowing_of_nonblocking_acquire(self, findings_of):
        # ``None`` means the ring was exhausted: nothing to release there.
        assert not findings_of(
            """
            def try_send(ring, data):
                slot = ring.acquire()
                if slot is None:
                    return False
                ring.write(slot, data)
                ring.release(slot)
                return True
            """,
            CHECK,
        )

    def test_escape_via_return_moves_ownership(self, findings_of):
        assert not findings_of(
            """
            def borrow(ring):
                slot = ring.acquire()
                return slot
            """,
            CHECK,
        )

    def test_escape_into_container_moves_ownership(self, findings_of):
        assert not findings_of(
            """
            def borrow_all(ring, slots):
                slot = ring.acquire()
                slots.append(slot)
            """,
            CHECK,
        )

    def test_calls_on_the_ring_itself_keep_tracking(self, findings_of):
        # ``ring.write(slot, ...)`` is a use, not an ownership transfer —
        # a leak after it must still be caught.
        findings = findings_of(
            """
            def send(self, ring, data):
                slot = ring.acquire()
                ring.write(slot, data)
                if data is None:
                    return  # bug: used but never released
                ring.release(slot)
            """,
            CHECK,
        )
        assert len(findings) == 1

    def test_shared_memory_closed_and_unlinked_is_clean(self, findings_of):
        assert not findings_of(
            """
            def create(name, size):
                segment = SharedMemory(name=name, create=True, size=size)
                segment.close()
                segment.unlink()
            """,
            CHECK,
        )

    def test_plain_lock_acquire_is_not_tracked(self, findings_of):
        # Only ring-named receivers are slot acquires; a threading.Lock
        # acquire/release pattern is out of scope for this checker.
        assert not findings_of(
            """
            def guarded(lock):
                lock.acquire()
                work()
            """,
            CHECK,
        )
