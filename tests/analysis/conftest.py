"""Fixtures for the pando-lint test suite.

The core helper turns a source string into analyzed modules and runs a
single checker (or the whole battery) over it, so each test can seed a
violation inline and assert the checker catches it — or feed it a clean
exemplar and assert zero false positives.
"""

from __future__ import annotations

import textwrap
from typing import List, Optional, Sequence

import pytest

from repro.analysis.findings import Finding
from repro.analysis.runner import LintResult, analyze_paths, run_checkers


@pytest.fixture
def lint(tmp_path):
    """``lint(source, checks=[...]) -> LintResult`` over a source snippet."""

    def _lint(
        source: str,
        checks: Optional[Sequence[str]] = None,
        filename: str = "fixture.py",
        baseline=None,
    ) -> LintResult:
        path = tmp_path / filename
        path.write_text(textwrap.dedent(source))
        modules = analyze_paths([str(path)])
        return run_checkers(modules, checks=checks, baseline=baseline)

    return _lint


@pytest.fixture
def findings_of(lint):
    """``findings_of(source, checker) -> List[Finding]`` for one checker."""

    def _findings(source: str, checker: str) -> List[Finding]:
        return lint(source, checks=[checker]).findings

    return _findings
