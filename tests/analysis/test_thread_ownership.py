"""thread-ownership: foreign threads must cross into the loop via wake()."""

from __future__ import annotations

CHECK = "thread-ownership"


class TestSeededViolations:
    def test_thread_target_reaching_loop_only_is_caught(self, findings_of):
        findings = findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def dispatch(value):
                pass

            def worker_main():
                dispatch(1)  # bug: loop-owned code from a foreign thread

            def start():
                Thread(target=worker_main).start()
            """,
            CHECK,
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.checker == CHECK
        assert "'dispatch'" in finding.message
        assert "'worker_main'" in finding.message
        assert "call path: worker_main -> dispatch" in finding.detail

    def test_done_callback_reaching_loop_only_is_caught(self, findings_of):
        findings = findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def on_result(future):
                pass

            def install(future):
                future.add_done_callback(on_result)
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "executor done-callback" in findings[0].message

    def test_any_thread_function_calling_loop_only_is_caught(self, findings_of):
        # @any_thread declares thread-safety; calling loop-owned code
        # directly from it breaks the declaration.
        findings = findings_of(
            """
            from repro.analysis.annotations import any_thread, loop_only

            @loop_only
            def mutate_state():
                pass

            @any_thread
            def push(value):
                mutate_state()
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "declared @any_thread" in findings[0].message

    def test_transitive_path_is_reported_with_the_chain(self, findings_of):
        findings = findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def dispatch():
                pass

            def helper():
                dispatch()

            def worker_main():
                helper()

            def start():
                Thread(target=worker_main).start()
            """,
            CHECK,
        )
        assert len(findings) == 1
        assert "worker_main -> helper -> dispatch" in findings[0].detail


class TestCleanExemplars:
    def test_crossing_through_wake_is_sanctioned(self, findings_of):
        assert not findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def dispatch():
                pass

            def worker_main(scheduler):
                scheduler.wake()  # the sanctioned hand-off

            def start(scheduler):
                Thread(target=worker_main).start()
            """,
            CHECK,
        )

    def test_call_soon_threadsafe_is_sanctioned(self, findings_of):
        assert not findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def dispatch():
                pass

            def worker_main(loop):
                loop.call_soon_threadsafe(dispatch)

            def start(loop):
                Thread(target=worker_main).start()
            """,
            CHECK,
        )

    def test_loop_only_called_from_loop_code_is_clean(self, findings_of):
        # No thread entry point in sight: nothing to flag.
        assert not findings_of(
            """
            from repro.analysis.annotations import loop_only

            @loop_only
            def dispatch():
                pass

            @loop_only
            def dispatch_round():
                dispatch()
            """,
            CHECK,
        )

    def test_real_tree_has_no_findings(self):
        # The annotated production tree (sched, pullstream, pool) obeys
        # its own ownership rule.
        from pathlib import Path

        from repro.analysis.runner import analyze_paths, run_checkers

        tree = Path(__file__).resolve().parents[2] / "src" / "repro"
        modules = analyze_paths([str(tree)])
        result = run_checkers(modules, checks=[CHECK])
        assert result.findings == []
