"""Tests for the real websocket volunteer transport.

Unit layers first (wire codec, RFC 6455 framing, handshake, LoopClock), then
in-process integration: a live :class:`WsVolunteerGateway` on a real loopback
socket with volunteers running :func:`repro.worker.run_volunteer` in threads.
Process-level churn (SIGKILL / SIGSTOP) lives in
``tests/integration/test_ws_volunteer_churn.py``.
"""

from __future__ import annotations

import asyncio
import struct
import threading

import pytest

from repro.core.distributed_map import DistributedMap
from repro.errors import PandoError, ProtocolError
from repro.net.serialization import Batch
from repro.net.ws_transport import (
    OP_BINARY,
    OP_CONT,
    WIRE_VERSION,
    LoopClock,
    WsConnection,
    _apply_mask,
    _read_ws_frame,
    connect_websocket,
    encode_ws_frame,
    pack_wire_frame,
    parse_ws_url,
    server_handshake,
    unpack_wire_frame,
)
from repro.pullstream import collect, from_iterable, pull
from repro.worker import run_volunteer


# --------------------------------------------------------------------------
# Wire codec
# --------------------------------------------------------------------------


class TestWireCodec:
    def test_record_without_values_roundtrips(self):
        record = {"kind": "welcome", "worker_id": "w-1", "version": WIRE_VERSION}
        assert unpack_wire_frame(pack_wire_frame(record)) == record

    def test_values_roundtrip_inline_and_oob(self):
        values = [1, "two", {"three": 3}, b"x" * 4096, None]
        out = unpack_wire_frame(
            pack_wire_frame({"kind": "data", "seq": 7}, values, oob_min_bytes=512)
        )
        assert out["seq"] == 7
        assert out["values"] == values

    def test_oob_threshold_respected(self):
        # Far above the threshold the payload section carries the raw bytes
        # once; far below everything rides inside the pickle.  Both decode
        # identically — the threshold is a wire-size knob, not a semantic one.
        values = [b"y" * 1000]
        split = pack_wire_frame({"kind": "data"}, values, oob_min_bytes=64)
        inline = pack_wire_frame({"kind": "data"}, values, oob_min_bytes=1 << 20)
        assert unpack_wire_frame(split)["values"] == values
        assert unpack_wire_frame(inline)["values"] == values
        (control_len,) = struct.unpack_from("!I", split, 0)
        assert len(split) == 4 + control_len + 1000  # raw buffer after pickle
        assert len(inline) == 4 + struct.unpack_from("!I", inline, 0)[0]

    def test_small_memoryview_is_inlined_as_bytes(self):
        # A memoryview is unpicklable; below the threshold it must still
        # travel (materialised), matching oob_unpack's bytes shape.
        out = unpack_wire_frame(
            pack_wire_frame({"kind": "data"}, [memoryview(b"tiny")], oob_min_bytes=512)
        )
        assert out["values"] == [b"tiny"]

    def test_large_memoryview_goes_out_of_band(self):
        view = memoryview(b"z" * 2048)
        out = unpack_wire_frame(
            pack_wire_frame({"kind": "data"}, [view], oob_min_bytes=512)
        )
        assert out["values"] == [b"z" * 2048]


# --------------------------------------------------------------------------
# RFC 6455 framing
# --------------------------------------------------------------------------


def _decode(data: bytes, max_frame: int = 1 << 26):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await _read_ws_frame(reader, max_frame)

    return asyncio.run(go())


class TestFraming:
    def test_mask_is_an_involution(self):
        payload, key = b"hello websocket world", b"\x12\x34\x56\x78"
        assert _apply_mask(_apply_mask(payload, key), key) == payload
        assert _apply_mask(b"", key) == b""

    @pytest.mark.parametrize("size", [0, 5, 125, 126, 65535, 65536, 100_000])
    @pytest.mark.parametrize("mask", [False, True])
    def test_encode_decode_roundtrip(self, size, mask):
        payload = bytes(range(256)) * (size // 256) + bytes(range(size % 256))
        fin, opcode, out = _decode(encode_ws_frame(OP_BINARY, payload, mask=mask))
        assert fin and opcode == OP_BINARY
        assert out == payload

    def test_oversized_frame_is_refused(self):
        frame = encode_ws_frame(OP_BINARY, b"x" * 1000, mask=False)
        with pytest.raises(ProtocolError):
            _decode(frame, max_frame=100)

    def test_fragmented_message_reassembles(self):
        # FIN=0 BINARY then FIN=1 CONT — hand-built headers.
        first = bytes([OP_BINARY, 3]) + b"abc"
        final = bytes([0x80 | OP_CONT, 3]) + b"def"

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(first + final)
            reader.feed_eof()
            writer_closed = []

            class _W:
                def write(self, data):
                    pass

                def is_closing(self):
                    return False

                def close(self):
                    writer_closed.append(True)

            conn = WsConnection(reader, _W(), client_side=False)
            return await conn.recv()

        assert asyncio.run(go()) == b"abcdef"

    def test_parse_ws_url(self):
        assert parse_ws_url("ws://127.0.0.1:5000") == ("127.0.0.1", 5000, "/")
        assert parse_ws_url("ws://host/path") == ("host", 80, "/path")
        with pytest.raises(PandoError):
            parse_ws_url("http://host:80/")


# --------------------------------------------------------------------------
# Handshake + a live echo socket
# --------------------------------------------------------------------------


class TestHandshake:
    def test_client_server_handshake_and_echo(self):
        async def go():
            async def handler(reader, writer):
                await server_handshake(reader, writer)
                conn = WsConnection(reader, writer, client_side=False)
                while True:
                    payload = await conn.recv()
                    if payload is None:
                        break
                    conn.send_bytes(payload)
                conn.close_transport()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            conn = await connect_websocket(f"ws://127.0.0.1:{port}")
            conn.send_bytes(b"ping me back")
            await conn.drain()
            echoed = await asyncio.wait_for(conn.recv(), 5)
            conn.send_ping()
            conn.send_close()
            closed = await asyncio.wait_for(conn.recv(), 5)
            conn.close_transport()
            server.close()
            await server.wait_closed()
            return echoed, closed

        echoed, closed = asyncio.run(go())
        assert echoed == b"ping me back"
        assert closed is None

    def test_non_websocket_request_is_rejected(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            written = []

            class _W:
                def write(self, data):
                    written.append(data)

                async def drain(self):
                    pass

            with pytest.raises(ProtocolError):
                await server_handshake(reader, _W())
            return b"".join(written)

        response = asyncio.run(go())
        assert response.startswith(b"HTTP/1.1 400")


class TestLoopClock:
    def test_now_and_call_later(self):
        async def go():
            loop = asyncio.get_running_loop()
            clock = LoopClock(loop)
            fired = []
            before = clock.now
            handle = clock.call_later(0.01, lambda: fired.append(clock.now))
            cancelled = clock.call_later(10.0, lambda: fired.append("never"))
            cancelled.cancel()
            await asyncio.sleep(0.05)
            assert handle is not None
            return before, fired

        before, fired = asyncio.run(go())
        assert len(fired) == 1
        assert fired[0] >= before + 0.01


# --------------------------------------------------------------------------
# Gateway integration (threaded volunteers on a real loopback socket)
# --------------------------------------------------------------------------


def start_volunteer_thread(url, **kwargs):
    """Run one volunteer session in a thread; returns (thread, result box)."""
    box = {}

    def target():
        box["report"] = run_volunteer(url, **kwargs)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def failing_fn(value):
    raise ValueError(f"cannot process {value!r}")


class TestGatewayIntegration:
    def test_end_to_end_ordered_results(self):
        dmap = DistributedMap(scheduler="asyncio", batch_size=2)
        sink = pull(from_iterable(range(30)), dmap, collect())
        gateway = dmap.serve_volunteers(fn_ref="operator:neg")
        threads = [
            start_volunteer_thread(gateway.url, name=f"vol-{i}", tabs=2)
            for i in range(2)
        ]
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-i for i in range(30)]
        finally:
            dmap.close()
            for thread, _box in threads:
                thread.join(10)
        reports = [box["report"] for _thread, box in threads]
        assert all(report.graceful for report in reports)
        assert all(report.error is None for report in reports)
        assert sum(report.values_processed for report in reports) == 30
        assert gateway.volunteers_joined == 2
        assert gateway.volunteers_left == 2
        assert gateway.volunteers_crashed == 0
        assert gateway.suspicions == 0
        assert gateway.registry.joins == 2 and gateway.registry.leaves == 2
        assert {record.device_name for record in gateway.registry.records} == {
            "vol-0",
            "vol-1",
        }

    def test_volunteer_supplies_its_own_function(self):
        # The master announces no function reference; the volunteer brings
        # one locally (the --module / --fn path of the CLI).
        dmap = DistributedMap(scheduler="asyncio")
        sink = pull(from_iterable([1, 2, 3]), dmap, collect())
        gateway = dmap.serve_volunteers()  # fn_ref=None
        thread, box = start_volunteer_thread(gateway.url, fn_ref="operator:neg")
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-1, -2, -3]
        finally:
            dmap.close()
            thread.join(10)
        assert box["report"].graceful

    def test_no_function_anywhere_fails_the_session(self):
        # Neither side names a function: the volunteer refuses the welcome
        # and leaves; with no workers left the drive can only time out.
        dmap = DistributedMap(scheduler="asyncio")
        sink = pull(from_iterable([1]), dmap, collect())
        gateway = dmap.serve_volunteers()  # fn_ref=None
        thread, box = start_volunteer_thread(gateway.url)
        try:
            with pytest.raises(PandoError, match="timed out"):
                dmap.drive(sink, timeout=2)
            thread.join(10)
            assert not thread.is_alive()
        finally:
            dmap.close()
        report = box["report"]
        assert report.error is not None
        assert "function reference" in report.error

    def test_task_error_fails_substream_and_relends(self):
        # One volunteer whose function raises on every value: its sub-stream
        # fails with a TaskError and everything it borrowed is re-lent to
        # the healthy volunteer — the stream still completes exactly once.
        dmap = DistributedMap(scheduler="asyncio", batch_size=2)
        sink = pull(from_iterable(range(12)), dmap, collect())
        gateway = dmap.serve_volunteers()
        bad_thread, bad_box = start_volunteer_thread(
            gateway.url, fn_ref=failing_fn, name="bad"
        )
        good_thread, good_box = start_volunteer_thread(
            gateway.url, fn_ref="operator:neg", name="good"
        )
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-i for i in range(12)]
        finally:
            dmap.close()
            bad_thread.join(10)
            good_thread.join(10)
        assert bad_box["report"].error is not None
        assert "task failed" in bad_box["report"].error
        assert good_box["report"].error is None
        assert gateway.volunteers_crashed == 1
        assert gateway.registry.crashes == 1

    def test_max_frames_graceful_leave_relends(self):
        # A volunteer that answers two frames and leaves (bye) mid-stream:
        # a graceful departure, not a crash, and no value is lost.
        dmap = DistributedMap(scheduler="asyncio", batch_size=1)
        sink = pull(from_iterable(range(16)), dmap, collect())
        gateway = dmap.serve_volunteers(fn_ref="operator:neg")
        leaver_thread, leaver_box = start_volunteer_thread(
            gateway.url, name="leaver", max_frames=2
        )
        stayer_thread, _stayer_box = start_volunteer_thread(
            gateway.url, name="stayer"
        )
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-i for i in range(16)]
        finally:
            dmap.close()
            leaver_thread.join(10)
            stayer_thread.join(10)
        assert leaver_box["report"].graceful
        assert leaver_box["report"].frames_processed == 2
        assert gateway.volunteers_crashed == 0
        assert gateway.volunteers_left == 2

    def test_heartbeats_flow_without_false_suspicion(self):
        # Aggressive ping interval over a slow workload: pings and pongs
        # must flow in both directions and nobody gets suspected.
        inputs = [{"sleep": 0.05, "n": i} for i in range(8)]
        dmap = DistributedMap(scheduler="asyncio")
        sink = pull(from_iterable(inputs), dmap, collect())
        gateway = dmap.serve_volunteers(
            fn_ref="repro.pool.workloads:sleep_echo",
            heartbeat_interval=0.05,
            heartbeat_timeout=2.0,
        )
        thread, box = start_volunteer_thread(gateway.url, name="steady")
        try:
            dmap.drive(sink, timeout=30)
            assert [v["n"] for v in sink.result()] == list(range(8))
        finally:
            dmap.close()
            thread.join(10)
        report = box["report"]
        assert report.graceful and not report.suspected_master
        assert report.pings_received >= 1  # master pinged the volunteer
        assert gateway.suspicions == 0

    def test_batched_frames_roundtrip(self):
        # frame_batch > 1 coalesces values into Batch frames on the wire and
        # the volunteer answers one Batch result frame per input frame.
        dmap = DistributedMap(scheduler="asyncio", batch_size=4)
        sink = pull(from_iterable(range(20)), dmap, collect())
        gateway = dmap.serve_volunteers(
            fn_ref="operator:neg", frame_batch=4, window=2
        )
        thread, box = start_volunteer_thread(gateway.url, name="batcher")
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-i for i in range(20)]
        finally:
            dmap.close()
            thread.join(10)
        report = box["report"]
        assert report.values_processed == 20
        assert report.frames_processed == 5  # 20 values / frame_batch 4

    def test_connect_failure_is_reported_not_raised(self):
        report = run_volunteer("ws://127.0.0.1:9", connect_timeout=2.0)
        assert report.error is not None and "connect failed" in report.error
        assert report.worker_id is None

    def test_gateway_requires_an_event_loop_scheduler(self):
        dmap = DistributedMap()  # thread driver, no scheduler
        with pytest.raises(PandoError):
            dmap.serve_volunteers()
        dmap.close()

    def test_batch_frames_use_the_wire_batch_marker(self):
        # The DATA frame for a Batch sets batched=True and carries the
        # values flat — spot-check the codec contract the two sides share.
        frame = Batch([1, 2, 3])
        payload = pack_wire_frame(
            {"kind": "data", "seq": 1, "batched": True}, list(frame.values)
        )
        out = unpack_wire_frame(payload)
        assert out["batched"] is True
        assert out["values"] == [1, 2, 3]


class TestVolunteerCli:
    def test_cli_runs_a_session_end_to_end(self, capsys):
        from repro.cli.pando_cli import main as pando_main

        dmap = DistributedMap(scheduler="asyncio")
        sink = pull(from_iterable([1, 2, 3]), dmap, collect())
        gateway = dmap.serve_volunteers(fn_ref="operator:neg")
        box = {}

        def target():
            box["code"] = pando_main(
                ["volunteer", gateway.url, "--name", "cli-vol", "--tabs", "2"]
            )

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-1, -2, -3]
        finally:
            dmap.close()
            thread.join(10)
        assert box["code"] == 0
        assert "cli-vol" in capsys.readouterr().err

    def test_cli_reports_connect_failure(self, capsys):
        from repro.worker.volunteer import main as volunteer_main

        code = volunteer_main(["ws://127.0.0.1:9", "--fn", "operator:neg"])
        assert code == 1
        assert "connect failed" in capsys.readouterr().err
