"""Unit tests for the shared-memory slot ring and the out-of-band codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PandoError
from repro.net.serialization import oob_pack, oob_unpack
from repro.net.shm_ring import (
    ShmRing,
    load_entry,
    pack_frame,
    store_entry,
    unpack_frame,
)


class TestOobCodec:
    def test_bytes_round_trip(self):
        tag, buffer, meta = oob_pack(b"payload" * 100)
        assert tag == "raw" and meta is None
        assert oob_unpack(tag, buffer, meta) == b"payload" * 100

    def test_bytearray_round_trip_preserves_the_type(self):
        """Regression: the codec returned bytes for bytearray inputs, so
        flipping a pool to transport="shm" changed the type the task
        function (and the downstream sink) observed."""
        value = bytearray(b"abc" * 50)
        tag, buffer, meta = oob_pack(value)
        rebuilt = oob_unpack(tag, buffer, meta)
        assert isinstance(rebuilt, bytearray)
        assert rebuilt == value

    def test_memoryview_round_trips_as_bytes(self):
        tag, buffer, meta = oob_pack(memoryview(b"xyz" * 50))
        rebuilt = oob_unpack(tag, buffer, meta)
        assert isinstance(rebuilt, bytes)
        assert rebuilt == b"xyz" * 50

    def test_ndarray_round_trip_preserves_dtype_and_shape(self):
        array = np.arange(600, dtype=np.float32).reshape(20, 30)
        tag, buffer, meta = oob_pack(array)
        assert tag == "nd"
        rebuilt = oob_unpack(tag, buffer, meta)
        assert rebuilt.dtype == array.dtype
        assert rebuilt.shape == array.shape
        assert (rebuilt == array).all()

    def test_zero_copy_unpack_aliases_the_buffer(self):
        array = np.arange(100, dtype=np.int64)
        tag, buffer, meta = oob_pack(array)
        view = oob_unpack(tag, buffer, meta, copy=False)
        assert np.shares_memory(view, array)

    def test_strided_memoryview_is_materialised_not_rejected(self):
        """Regression: a non-contiguous memoryview passed oob_pack but blew
        up in ``ShmRing.write``'s cast (leaking the acquired slot).  It is
        unpicklable, so in-band is no fallback either — the codec must
        materialise it."""
        strided = memoryview(bytes(range(256)))[::2]
        tag, buffer, meta = oob_pack(strided)
        assert tag == "raw" and isinstance(buffer, bytes)
        assert oob_unpack(tag, buffer, meta) == bytes(strided)

    def test_strided_memoryview_round_trips_through_the_ring(self):
        strided = memoryview(bytes(2048))[::2]
        with ShmRing(slot_count=2, slot_size=4096) as ring:
            entries, slots = pack_frame(ring, [strided], min_bytes=1)
            assert entries[0][0] == "shm"
            assert unpack_frame(ring, entries) == [bytes(strided)]
            ring.release_all(slots)
            assert ring.in_use == 0

    def test_inband_shapes_return_none(self):
        for value in (42, "text", {"size": 3}, [1, 2], None):
            assert oob_pack(value) is None

    def test_non_contiguous_array_stays_inband(self):
        array = np.arange(100, dtype=np.int64).reshape(10, 10)[:, ::2]
        assert not array.flags["C_CONTIGUOUS"]
        assert oob_pack(array) is None

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError):
            oob_unpack("bogus", b"", None)


class TestShmRing:
    def test_geometry_validation(self):
        with pytest.raises(PandoError):
            ShmRing(slot_count=0)
        with pytest.raises(PandoError):
            ShmRing(slot_size=0)

    def test_acquire_release_accounting(self):
        with ShmRing(slot_count=3, slot_size=64) as ring:
            slots = [ring.acquire() for _ in range(3)]
            assert sorted(slots) == [0, 1, 2]
            assert ring.acquire() is None  # exhausted, never blocks
            assert ring.in_use == 3 and ring.free_slots == 0
            ring.release(slots[1])
            assert ring.acquire() == slots[1]  # recycled
            ring.release_all([slots[0], slots[1], slots[2]])
            assert ring.in_use == 0
            assert ring.slots_acquired == 4
            assert ring.slots_released == 4

    def test_double_release_raises(self):
        with ShmRing(slot_count=1, slot_size=8) as ring:
            slot = ring.acquire()
            ring.release(slot)
            with pytest.raises(PandoError):
                ring.release(slot)

    def test_release_all_survives_a_failing_release_mid_sequence(self):
        # Regression: a double release in the middle of the batch used to
        # abort the loop, leaking every slot after it until close().  Now
        # every release is attempted and the first error re-raised.
        with ShmRing(slot_count=4, slot_size=8) as ring:
            slots = [ring.acquire() for _ in range(4)]
            ring.release(slots[1])  # make slots[1] a double release below
            with pytest.raises(PandoError, match="double release"):
                ring.release_all(slots)
            # the three healthy slots were still released
            assert ring.in_use == 0
            assert ring.free_slots == 4

    def test_release_all_reports_the_first_of_several_errors(self):
        with ShmRing(slot_count=3, slot_size=8) as ring:
            held = ring.acquire()
            with pytest.raises(PandoError, match="slot 1 is not acquired"):
                ring.release_all([1, 2, held])
            assert ring.in_use == 0  # the held slot still came back

    def test_write_and_view(self):
        with ShmRing(slot_count=2, slot_size=16) as ring:
            assert ring.write(1, b"0123456789") == 10
            view = ring.view(1, 10)
            assert bytes(view) == b"0123456789"
            view.release()

    def test_oversized_write_raises(self):
        with ShmRing(slot_count=1, slot_size=8) as ring:
            with pytest.raises(PandoError):
                ring.write(0, b"way too large for the slot")

    def test_close_is_idempotent_and_counters_survive(self):
        ring = ShmRing(slot_count=2, slot_size=32)
        ring.acquire()
        acquired = ring.slots_acquired
        ring.close()
        ring.close()
        assert ring.closed
        assert ring.slots_acquired == acquired
        assert ring.acquire() is None
        with pytest.raises(PandoError):
            ring.write(0, b"x")


class TestFramePacking:
    def test_large_payloads_go_through_slots(self):
        with ShmRing(slot_count=4, slot_size=4096) as ring:
            payloads = [b"a" * 2048, b"b" * 2048]
            entries, slots = pack_frame(ring, payloads)
            assert [entry[0] for entry in entries] == ["shm", "shm"]
            assert len(slots) == 2
            assert unpack_frame(ring, entries) == payloads
            ring.release_all(slots)
            assert ring.in_use == 0

    def test_small_payloads_stay_inline_with_a_spare(self):
        with ShmRing(slot_count=4, slot_size=4096) as ring:
            entries, slots = pack_frame(ring, [b"tiny", 42])
            assert [entry[0] for entry in entries] == ["inline", "inline"]
            # Each inline value got a spare slot for its result.
            assert len(slots) == 2
            assert all(entry[2] is not None for entry in entries)
            assert unpack_frame(ring, entries) == [b"tiny", 42]
            ring.release_all(slots)

    def test_oversized_payload_falls_back_inline(self):
        with ShmRing(slot_count=4, slot_size=64) as ring:
            big = b"z" * 1024
            entries, slots = pack_frame(ring, [big])
            assert entries[0][0] == "inline" and entries[0][1] == big
            assert ring.fallbacks == 1
            ring.release_all(slots)

    def test_inband_memoryview_fallbacks_are_picklable(self):
        """Regression: a memoryview that missed the ring (too small, too
        large, or exhausted) went inline as-is and blew up the executor's
        pickling; every in-band fallback must materialise it."""
        import pickle

        small = memoryview(b"s" * 16)
        big = memoryview(b"b" * 4096)
        with ShmRing(slot_count=1, slot_size=1024) as ring:
            entries, slots = pack_frame(ring, [small, big], min_bytes=512)
            for entry in entries:
                assert entry[0] == "inline"
                assert isinstance(entry[1], bytes)
                pickle.dumps(entry)
            assert unpack_frame(ring, entries) == [bytes(small), bytes(big)]
            ring.release_all(slots)

    def test_spares_keep_a_quarter_of_the_ring_free(self):
        """Frames of small control values must not starve the payloads the
        ring exists for: spares stop at the reserve line."""
        with ShmRing(slot_count=8, slot_size=4096) as ring:
            entries, slots = pack_frame(ring, list(range(8)), min_bytes=1)
            assert len(slots) == 6  # 8 - 8 // 4 reserved for payloads
            assert [entry[2] is not None for entry in entries].count(True) == 6
            # A genuinely large payload still finds a slot.
            payload_entries, payload_slots = pack_frame(
                ring, [b"p" * 2048], min_bytes=1
            )
            assert payload_entries[0][0] == "shm"
            ring.release_all(slots + payload_slots)
            assert ring.in_use == 0

    def test_exhausted_ring_falls_back_inline(self):
        with ShmRing(slot_count=1, slot_size=4096) as ring:
            entries, slots = pack_frame(ring, [b"a" * 2048, b"b" * 2048])
            assert entries[0][0] == "shm"
            # Second payload found no slot: in-band, no spare either.
            assert entries[1][0] == "inline" and entries[1][2] is None
            assert ring.fallbacks == 1
            assert unpack_frame(ring, entries) == [b"a" * 2048, b"b" * 2048]
            ring.release_all(slots)


class TestChildSideEntries:
    def test_load_and_store_round_trip(self):
        with ShmRing(slot_count=2, slot_size=4096) as ring:
            entries, slots = pack_frame(ring, [b"q" * 2048])
            loaded = load_entry(ring.name, ring.slot_size, entries[0])
            assert loaded == b"q" * 2048
            result_entry = store_entry(
                ring.name, ring.slot_size, entries[0], loaded[::-1]
            )
            assert result_entry[0] == "shm"
            assert unpack_frame(ring, [result_entry]) == [loaded[::-1]]
            ring.release_all(slots)

    def test_store_through_a_spare_slot(self):
        with ShmRing(slot_count=2, slot_size=4096) as ring:
            entries, slots = pack_frame(ring, [{"spec": 1}])
            assert entries[0][0] == "inline" and entries[0][2] is not None
            result_entry = store_entry(
                ring.name, ring.slot_size, entries[0], b"r" * 2048
            )
            assert result_entry[0] == "shm"
            assert unpack_frame(ring, [result_entry]) == [b"r" * 2048]
            ring.release_all(slots)

    def test_small_or_unshaped_results_return_inline(self):
        with ShmRing(slot_count=2, slot_size=4096) as ring:
            entries, slots = pack_frame(ring, [b"x" * 2048])
            for result in (b"tiny", {"found": True}, 7):
                entry = store_entry(ring.name, ring.slot_size, entries[0], result)
                assert entry == ("inline", result, None)
            ring.release_all(slots)

    def test_oversized_result_returns_inline_and_counts_as_fallback(self):
        with ShmRing(slot_count=2, slot_size=1024) as ring:
            entries, slots = pack_frame(ring, [b"x" * 1024])
            entry = store_entry(ring.name, ring.slot_size, entries[0], b"y" * 2048)
            assert entry == ("inline", b"y" * 2048, "fallback")
            # The master folds result-plane fallbacks into the counter.
            before = ring.fallbacks
            assert unpack_frame(ring, [entry]) == [b"y" * 2048]
            assert ring.fallbacks == before + 1
            ring.release_all(slots)

    def test_echo_of_a_zero_copy_load_is_safe(self):
        """A function returning its zero-copy ndarray input makes the store
        write a buffer over itself; the defensive copy must keep it exact."""
        array = np.arange(512, dtype=np.float64)
        with ShmRing(slot_count=2, slot_size=8192) as ring:
            entries, slots = pack_frame(ring, [array])
            loaded = load_entry(ring.name, ring.slot_size, entries[0], copy=False)
            entry = store_entry(ring.name, ring.slot_size, entries[0], loaded)
            assert entry[0] == "shm"
            (rebuilt,) = unpack_frame(ring, [entry])
            assert (rebuilt == array).all()
            ring.release_all(slots)
