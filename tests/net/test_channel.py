"""Tests for simulated channels, heartbeats and failure detection."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionClosed
from repro.net.channel import SimChannel
from repro.net.heartbeat import HeartbeatMonitor
from repro.net.websocket import WebSocketConnection
from repro.pullstream import async_map, collect, pull, values


def connect(channel):
    done = []
    channel.connect(lambda err, ch: done.append(err))
    channel.scheduler.run(until=lambda: bool(done))
    assert done and done[0] is None
    return channel


class TestHeartbeatMonitor:
    def test_sends_heartbeats_periodically(self, scheduler):
        beats = []
        monitor = HeartbeatMonitor(
            scheduler, send=lambda: beats.append(scheduler.now),
            on_failure=lambda: None, interval=1.0, timeout=10.0,
        )
        monitor.start()
        scheduler.run_until(5.5)
        assert len(beats) == 5

    def test_detects_silence(self, scheduler):
        failures = []
        monitor = HeartbeatMonitor(
            scheduler, send=lambda: None, on_failure=lambda: failures.append(scheduler.now),
            interval=1.0, timeout=3.0,
        )
        monitor.start()
        scheduler.run_until(10.0)
        assert len(failures) == 1
        assert failures[0] == pytest.approx(3.0, abs=0.2)
        assert monitor.failed

    def test_touch_postpones_failure(self, scheduler):
        failures = []
        monitor = HeartbeatMonitor(
            scheduler, send=lambda: None, on_failure=lambda: failures.append(scheduler.now),
            interval=1.0, timeout=3.0,
        )
        monitor.start()
        scheduler.call_later(2.0, monitor.touch)
        scheduler.call_later(4.0, monitor.touch)
        scheduler.run_until(6.5)
        assert failures == []
        scheduler.run_until(10.0)
        assert len(failures) == 1

    def test_stop_cancels_everything(self, scheduler):
        failures = []
        monitor = HeartbeatMonitor(
            scheduler, send=lambda: None, on_failure=lambda: failures.append(1),
            interval=1.0, timeout=2.0,
        )
        monitor.start()
        monitor.stop()
        scheduler.run_until(20.0)
        assert failures == []

    def test_invalid_parameters(self, scheduler):
        with pytest.raises(ValueError):
            HeartbeatMonitor(scheduler, send=lambda: None, on_failure=lambda: None, interval=0)


class TestSimChannel:
    def test_data_flows_both_ways(self, scheduler, network):
        channel = connect(SimChannel(scheduler, network, "master", "laptop"))
        at_remote = pull(channel.remote.duplex.source, collect())
        at_local = pull(channel.local.duplex.source, collect())
        channel.local.send("hello")
        channel.remote.send("world")
        scheduler.run_until(scheduler.now + 1.0)
        channel.local.close()
        scheduler.run_until(scheduler.now + 1.0)
        assert at_remote.value == ["hello"]
        assert at_local.value == ["world"]

    def test_latency_is_charged(self, scheduler, network):
        channel = connect(SimChannel(scheduler, network, "master", "laptop"))
        arrivals = []
        pull(channel.remote.duplex.source, collect(done=lambda e, items: None))
        channel.remote.duplex  # endpoint exists
        sent_at = scheduler.now
        received = pull(channel.remote.duplex.source, collect())
        channel.local.send("ping")
        scheduler.run(until=lambda: channel.remote.messages_received > 0)
        assert scheduler.now - sent_at >= network.profile("master", "laptop").latency

    def test_pull_stream_sink_sends_values(self, scheduler, network):
        channel = connect(SimChannel(scheduler, network, "master", "laptop"))
        received = pull(channel.remote.duplex.source, collect())
        channel.local.duplex.sink(values([1, 2, 3]))
        scheduler.run(until=lambda: received.done)
        assert received.value == [1, 2, 3]

    def test_echo_worker_over_channel(self, scheduler, network):
        """Full round trip: values -> channel -> async_map worker -> back."""
        channel = connect(SimChannel(scheduler, network, "master", "worker-host"))
        pull(
            channel.remote.duplex.source,
            async_map(lambda v, cb: cb(None, v * 2)),
            channel.remote.duplex.sink,
        )
        results = pull(channel.local.duplex.source, collect())
        channel.local.duplex.sink(values([1, 2, 3, 4]))
        scheduler.run(until=lambda: results.done)
        assert results.value == [2, 4, 6, 8]

    def test_graceful_close_ends_peer_source(self, scheduler, network):
        channel = connect(SimChannel(scheduler, network, "a", "b"))
        at_remote = pull(channel.remote.duplex.source, collect())
        channel.local.close()
        scheduler.run_until(scheduler.now + 1.0)
        assert at_remote.done
        assert at_remote.end is not None and not isinstance(at_remote.end, Exception)

    def test_crash_detected_by_heartbeat_timeout(self, scheduler, network):
        channel = connect(
            SimChannel(scheduler, network, "master", "tablet",
                       heartbeat_interval=0.5, heartbeat_timeout=1.5)
        )
        at_master = pull(channel.local.duplex.source, collect())
        crash_time = scheduler.now + 1.0
        scheduler.call_at(crash_time, channel.remote.crash)
        scheduler.run(until=lambda: at_master.done)
        assert isinstance(at_master.end, ConnectionClosed)
        # detection happened within roughly the heartbeat timeout
        assert scheduler.now - crash_time <= 2 * 1.5 + 0.5

    def test_messages_lost_after_crash(self, scheduler, network):
        channel = connect(SimChannel(scheduler, network, "a", "b"))
        channel.remote.crash()
        channel.local.send("into the void")
        scheduler.run_until(scheduler.now + 1.0)
        assert channel.remote.messages_received == 0

    def test_byte_counters(self, scheduler, network):
        channel = connect(SimChannel(scheduler, network, "a", "b"))
        channel.local.send({"size_bytes": 1000})
        scheduler.run_until(scheduler.now + 1.0)
        assert channel.local.bytes_sent >= 1000
        assert network.total_bytes() >= 1000

    def test_websocket_setup_cost(self, scheduler, network):
        start = scheduler.now
        connect(WebSocketConnection(scheduler, network, "a", "b"))
        rtt = network.profile("a", "b").rtt
        assert scheduler.now - start >= 2 * rtt * 0.99


class TestBatchedFraming:
    """Batched DATA frames: one frame carries batch_size values."""

    def test_frame_counters_for_batches(self, scheduler, network):
        from repro.net.serialization import Batch

        channel = connect(SimChannel(scheduler, network, "a", "b"))
        channel.local.send(Batch([1, 2, 3]))
        channel.local.send("single")
        scheduler.run_until(scheduler.now + 1.0)
        assert channel.local.data_frames_sent == 2
        assert channel.local.values_sent == 4

    def test_batch_size_is_charged_on_the_wire(self, scheduler, network):
        from repro.net.serialization import Batch, estimate_size

        payloads = [{"size_bytes": 500} for _ in range(4)]
        batch = Batch(payloads)
        assert estimate_size(batch) >= 4 * 500
        channel = connect(SimChannel(scheduler, network, "a", "b"))
        channel.local.send(batch)
        scheduler.run_until(scheduler.now + 1.0)
        assert channel.local.bytes_sent >= 2000

    def test_distributed_map_frame_batching_over_channel(self, scheduler, network):
        """End-to-end Figure 9 with frame batching: batch_size× fewer DATA
        frames for the same results, the far side unbatching per element."""
        from repro.core import DistributedMap
        from repro.pullstream import map_batches

        count_values = 40
        frames_by_mode = {}
        for frame_batch in (1, 4):
            channel = connect(
                SimChannel(scheduler, network, "master", "volunteer",
                           heartbeats_enabled=False)
            )
            pull(
                channel.remote.duplex.source,
                map_batches(lambda v, cb: cb(None, v + 100)),
                channel.remote.duplex.sink,
            )
            dmap = DistributedMap(batch_size=4)
            output = pull(values(list(range(count_values))), dmap, collect())
            dmap.add_channel(
                channel.local.duplex, batch_size=4, frame_batch=frame_batch
            )
            scheduler.run(until=lambda: output.done)
            assert output.result() == [value + 100 for value in range(count_values)]
            assert channel.local.values_sent == count_values
            frames_by_mode[frame_batch] = channel.local.data_frames_sent
        assert frames_by_mode[1] == count_values
        # ~4x fewer frames when 4 values share one frame
        assert frames_by_mode[4] <= count_values // 4 + 2
