"""Regression tests for HeartbeatMonitor start/stop lifecycle.

``start()`` on an already-running monitor used to stack a second timer
chain (double heartbeats forever), and ``start()`` after ``stop()`` was a
silent no-op because the stopped flag was never reset — so one monitor
could not follow a connection through a reconnect.  Both are pinned here on
the virtual-time scheduler.
"""

from __future__ import annotations

import pytest


class TestHeartbeatRestart:
    def make(self, scheduler, beats, failures, interval=1.0, timeout=3.0):
        from repro.net.heartbeat import HeartbeatMonitor

        return HeartbeatMonitor(
            scheduler,
            send=lambda: beats.append(scheduler.now),
            on_failure=lambda: failures.append(scheduler.now),
            interval=interval,
            timeout=timeout,
        )

    def test_double_start_does_not_stack_timer_chains(self, scheduler):
        beats, failures = [], []
        monitor = self.make(scheduler, beats, failures, timeout=100.0)
        monitor.start()
        scheduler.run_until(2.5)
        assert len(beats) == 2  # t=1, t=2
        monitor.start()  # reconnect: restart, do not duplicate
        scheduler.run_until(5.6)
        # One chain only: beats at 3.5, 4.5, 5.5 — a duplicated chain would
        # also keep beating at 3, 4, 5.
        assert len(beats) == 5

    def test_stop_then_start_resumes(self, scheduler):
        beats, failures = [], []
        monitor = self.make(scheduler, beats, failures)
        monitor.start()
        scheduler.run_until(1.5)
        assert len(beats) == 1
        monitor.stop()
        scheduler.run_until(4.0)
        assert len(beats) == 1  # silent while stopped, and no failure
        assert failures == []
        monitor.start()
        scheduler.run_until(5.5)
        assert len(beats) == 2  # resumed: beat at 5.0
        assert not monitor.failed

    def test_restart_resets_the_silence_clock(self, scheduler):
        beats, failures = [], []
        monitor = self.make(scheduler, beats, failures, timeout=3.0)
        monitor.start()
        scheduler.run_until(2.0)  # 2s of silence already accumulated
        monitor.start()  # reconnect resets last_seen
        scheduler.run_until(4.5)
        assert failures == []  # old silence must not count
        scheduler.run_until(6.0)
        assert len(failures) == 1
        assert failures[0] == pytest.approx(5.0, abs=0.2)  # restart + timeout

    def test_restart_after_failure_recovers(self, scheduler):
        beats, failures = [], []
        monitor = self.make(scheduler, beats, failures, timeout=2.0)
        monitor.start()
        scheduler.run_until(3.0)
        assert monitor.failed and len(failures) == 1
        monitor.start()  # the peer reconnected
        assert not monitor.failed
        monitor.touch()
        scheduler.run_until(4.5)
        assert len(failures) == 1  # no immediate re-failure
        assert len(beats) >= 2  # heartbeats flowing again

    def test_stop_is_idempotent_and_start_stop_start(self, scheduler):
        beats, failures = [], []
        monitor = self.make(scheduler, beats, failures)
        monitor.start()
        monitor.stop()
        monitor.stop()
        monitor.start()
        monitor.stop()
        scheduler.run_until(10.0)
        assert beats == []
        assert failures == []
