"""Tests for serialization helpers and wire messages."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.net.message import CLOSE, CONTROL, DATA, HEARTBEAT, Message
from repro.net.serialization import (
    SizedPayload,
    decode_binary,
    decode_json,
    encode_binary,
    encode_json,
    estimate_size,
)


class TestJsonEncoding:
    def test_roundtrip(self):
        value = {"a": 1, "b": [1, 2, 3], "c": "text"}
        assert decode_json(encode_json(value)) == value

    def test_compact_output(self):
        assert " " not in encode_json({"a": 1, "b": 2})

    def test_non_serialisable_fallback(self):
        class Weird:
            pass

        encoded = encode_json({"x": Weird()})
        assert "Weird" in encoded


class TestBinaryEncoding:
    def test_roundtrip(self):
        payload = bytes(range(256)) * 10
        assert decode_binary(encode_binary(payload)) == payload

    def test_compresses_repetitive_data(self):
        payload = b"a" * 100_000
        assert len(encode_binary(payload)) < len(payload) / 10

    @given(st.binary(max_size=4096))
    def test_roundtrip_property(self, payload):
        assert decode_binary(encode_binary(payload)) == payload


class TestEstimateSize:
    def test_sized_payload(self):
        assert estimate_size(SizedPayload("x", 168_000)) == 168_000

    def test_dict_with_size_bytes(self):
        assert estimate_size({"size_bytes": 5000, "other": "data"}) == 5000

    def test_bytes(self):
        assert estimate_size(b"12345") == 5

    def test_json_fallback(self):
        assert estimate_size({"a": 1}) == len('{"a":1}')

    def test_object_with_attribute(self):
        class Blob:
            size_bytes = 777

        assert estimate_size(Blob()) == 777

    def test_sized_payload_equality(self):
        assert SizedPayload("a", 10) == SizedPayload("a", 10)
        assert SizedPayload("a", 10) != SizedPayload("a", 11)


class TestMessage:
    def test_data_message_size(self):
        message = Message.data({"size_bytes": 1000}, sender="master")
        assert message.kind == DATA
        assert message.size_bytes == 1000
        assert message.sender == "master"

    def test_data_message_minimum_size(self):
        assert Message.data(1).size_bytes >= 16

    def test_heartbeat_is_small(self):
        assert Message.heartbeat().size_bytes <= 16
        assert Message.heartbeat().kind == HEARTBEAT

    def test_close_carries_reason(self):
        message = Message.close(reason="done")
        assert message.kind == CLOSE
        assert message.payload == "done"

    def test_control(self):
        assert Message.control({"type": "offer"}).kind == CONTROL

    def test_sequence_numbers_increase(self):
        first = Message.data(1)
        second = Message.data(2)
        assert second.seq > first.seq


class TestBatchFrames:
    """Batch frames: explicit marker type and wire-size accounting."""

    def test_equality_is_by_contents(self):
        from repro.net.serialization import Batch

        assert Batch([1, {"a": 2}]) == Batch([1, {"a": 2}])
        assert Batch([1]) != Batch([2])

    def test_size_includes_overhead(self):
        from repro.net.serialization import (
            BATCH_FRAME_OVERHEAD,
            Batch,
            estimate_size,
        )

        batch = Batch([{"size_bytes": 100}, {"size_bytes": 200}])
        assert estimate_size(batch) == BATCH_FRAME_OVERHEAD + 300

    def test_batch_is_not_a_plain_list(self):
        from repro.net.serialization import Batch

        batch = Batch([1, 2])
        assert batch != [1, 2]
        assert list(batch) == [1, 2]
        assert len(batch) == 2
