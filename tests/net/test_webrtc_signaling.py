"""Tests for the public signalling server, WebRTC connections and NAT model."""

from __future__ import annotations


from repro.errors import NATTraversalError, SignallingError
from repro.net.nat import NATConfig, NATModel
from repro.net.signaling import PublicServer
from repro.net.webrtc import WebRTCConnection
from repro.pullstream import collect, pull, values
from repro.sim.network import NetworkModel, WAN_PROFILE


class TestPublicServer:
    def test_register_deployment_returns_url(self, scheduler, network):
        server = PublicServer(scheduler, network)
        deployment = server.register_deployment("master", on_join_request=lambda h, i: None)
        assert deployment.url.startswith("http://public-server/")
        assert deployment.active

    def test_join_reaches_master(self, scheduler, network):
        server = PublicServer(scheduler, network)
        joins = []
        deployment = server.register_deployment(
            "master", on_join_request=lambda host, info: joins.append((host, info))
        )
        server.join(deployment.url, "phone", info={"tabs": 2})
        scheduler.run(until=lambda: bool(joins))
        assert joins[0][0] == "phone"
        assert joins[0][1]["tabs"] == 2
        assert "phone" in deployment.volunteers

    def test_join_unknown_url_fails(self, scheduler, network):
        server = PublicServer(scheduler, network)
        errors = []
        server.join("http://public-server/nope", "phone", cb=errors.append)
        assert isinstance(errors[0], SignallingError)

    def test_join_after_shutdown_fails(self, scheduler, network):
        server = PublicServer(scheduler, network)
        deployment = server.register_deployment("master", on_join_request=lambda h, i: None)
        server.shutdown_deployment(deployment.deployment_id)
        errors = []
        server.join(deployment.url, "phone", cb=errors.append)
        assert isinstance(errors[0], SignallingError)

    def test_relay_signal_charges_latency(self, scheduler, network):
        server = PublicServer(scheduler, network)
        delivered = []
        start = scheduler.now
        server.relay_signal("a", "b", {"sdp": "offer"}, delivered.append)
        scheduler.run(until=lambda: bool(delivered))
        assert delivered == [{"sdp": "offer"}]
        assert scheduler.now > start
        assert server.signalling_messages == 1


class TestNATModel:
    def test_open_hosts_always_connect(self, network):
        model = NATModel(network)
        assert model.direct_connection_possible("a", "b")

    def test_configured_host(self, network):
        model = NATModel(network)
        model.configure(NATConfig(host="phone", behind_nat=True, traversal_failure_rate=1.0))
        assert not model.direct_connection_possible("master", "phone")

    def test_default_config(self, network):
        model = NATModel(network)
        config = model.config_for("unknown-host")
        assert not config.behind_nat


class TestWebRTCConnection:
    def _wan_network(self, seed=1):
        return NetworkModel(default_profile=WAN_PROFILE, seed=seed)

    def test_connect_through_signalling_server(self, scheduler):
        network = self._wan_network()
        server = PublicServer(scheduler, network)
        channel = WebRTCConnection(
            scheduler, network, "master", "planetlab-node", signalling_server=server
        )
        done = []
        channel.connect(lambda err, ch: done.append(err))
        scheduler.run(until=lambda: bool(done))
        assert done[0] is None
        assert channel.established
        assert server.signalling_messages >= channel.SIGNALLING_ROUND_TRIPS

    def test_connect_without_server_is_direct(self, scheduler, network):
        channel = WebRTCConnection(scheduler, network, "a", "b")
        done = []
        channel.connect(lambda err, ch: done.append(err))
        scheduler.run(until=lambda: bool(done))
        assert done[0] is None

    def test_setup_slower_than_websocket(self, scheduler):
        """WebRTC setup through signalling costs more than a WebSocket."""
        from repro.net.websocket import WebSocketConnection

        network = self._wan_network()
        server = PublicServer(scheduler, network)
        ws_done, rtc_done = [], []
        ws = WebSocketConnection(scheduler, network, "master", "node")
        ws.connect(lambda err, ch: ws_done.append(scheduler.now))
        scheduler.run(until=lambda: bool(ws_done))
        ws_setup = ws_done[0]

        rtc = WebRTCConnection(
            scheduler, network, "master", "node", signalling_server=server
        )
        start = scheduler.now
        rtc.connect(lambda err, ch: rtc_done.append(scheduler.now - start))
        scheduler.run(until=lambda: bool(rtc_done))
        assert rtc_done[0] > ws_setup

    def test_nat_failure_without_fallback(self, scheduler):
        network = self._wan_network()
        nat = NATModel(network)
        nat.configure(NATConfig(host="behind", behind_nat=True, traversal_failure_rate=1.0))
        channel = WebRTCConnection(
            scheduler, network, "master", "behind",
            nat_model=nat, relay_fallback=False,
        )
        outcome = []
        channel.connect(lambda err, ch: outcome.append(err))
        scheduler.run(until=lambda: bool(outcome))
        assert isinstance(outcome[0], NATTraversalError)

    def test_nat_failure_with_relay_fallback(self, scheduler):
        network = self._wan_network()
        server = PublicServer(scheduler, network)
        nat = NATModel(network)
        nat.configure(NATConfig(host="behind", behind_nat=True, traversal_failure_rate=1.0))
        channel = WebRTCConnection(
            scheduler, network, "master", "behind",
            signalling_server=server, nat_model=nat, relay_fallback=True,
        )
        outcome = []
        channel.connect(lambda err, ch: outcome.append(err))
        scheduler.run(until=lambda: bool(outcome))
        assert outcome[0] is None
        assert channel.used_relay
        assert channel.relay_host == server.host

    def test_data_still_flows_over_relay(self, scheduler):
        network = self._wan_network()
        server = PublicServer(scheduler, network)
        nat = NATModel(network)
        nat.configure(NATConfig(host="behind", behind_nat=True, traversal_failure_rate=1.0))
        channel = WebRTCConnection(
            scheduler, network, "master", "behind",
            signalling_server=server, nat_model=nat, relay_fallback=True,
        )
        ready = []
        channel.connect(lambda err, ch: ready.append(err))
        scheduler.run(until=lambda: bool(ready))
        received = pull(channel.remote.duplex.source, collect())
        channel.local.duplex.sink(values(["via-relay"]))
        scheduler.run(until=lambda: received.done)
        assert received.value == ["via-relay"]
