"""Property tests for the shared-memory slot ring.

Three guarantees are pinned down over randomised payload sizes, ring
geometries and frame interleavings:

* **exactly-once round trip** — every value of every frame comes back
  through pack → child load/transform/store → unpack precisely once, in
  frame order, whatever mix of in-band and slot-backed entries the sizes
  produce;
* **no slot leaks** — across arbitrary interleavings of frame submission,
  in-order/out-of-order delivery and mid-stream aborts, every acquired slot
  is released and the free-list conservation invariant
  (``free + in_use == slot_count``) holds at every step;
* **graceful fallback** — a payload larger than the largest slot (or
  arriving when the ring is exhausted) travels in-band and still
  round-trips exactly.

The child side runs in-process here (the helpers are the same module-level
functions the executor children import), which keeps hypothesis shrinking
deterministic; the real cross-process path is covered by
``tests/pool/test_shm_transport.py`` and the churn suite.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.net.serialization import oob_pack
from repro.net.shm_ring import (
    ShmRing,
    load_entry,
    pack_frame,
    store_entry,
    unpack_frame,
)

# Small geometries shrink well and exercise exhaustion quickly.
slot_counts = st.integers(min_value=1, max_value=6)
slot_sizes = st.sampled_from([64, 256, 1024])
payload_sizes = st.integers(min_value=0, max_value=2048)


def payload(index: int, size: int) -> bytes:
    """Distinct, content-checkable payload of exactly *size* bytes."""
    seed = index.to_bytes(4, "big")
    return (seed * (size // 4 + 1))[:size]


def transform(value):
    """The child-side function: content-dependent, size-preserving."""
    if isinstance(value, (bytes, bytearray)):
        return bytes(255 - b for b in bytes(value))
    return ("seen", value)


def child_apply(ring: ShmRing, entries, min_bytes: int):
    """Emulate ``run_shm_batch`` against *ring* without a subprocess."""
    return [
        store_entry(
            ring.name,
            ring.slot_size,
            entry,
            transform(load_entry(ring.name, ring.slot_size, entry)),
            min_bytes=min_bytes,
        )
        for entry in entries
    ]


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(payload_sizes, min_size=1, max_size=10),
        slot_count=slot_counts,
        slot_size=slot_sizes,
        min_bytes=st.sampled_from([1, 32, 512]),
    )
    def test_every_value_returns_exactly_once_in_order(
        self, sizes, slot_count, slot_size, min_bytes
    ):
        values = [payload(index, size) for index, size in enumerate(sizes)]
        with ShmRing(slot_count=slot_count, slot_size=slot_size) as ring:
            entries, slots = pack_frame(ring, values, min_bytes=min_bytes)
            results = unpack_frame(
                ring, child_apply(ring, entries, min_bytes)
            )
            ring.release_all(slots)
            assert results == [transform(value) for value in values]
            assert ring.in_use == 0
            assert ring.slots_acquired == ring.slots_released

    @settings(max_examples=25, deadline=None)
    @given(
        frames=st.lists(
            st.lists(payload_sizes, min_size=1, max_size=4), min_size=1, max_size=6
        ),
        slot_count=slot_counts,
        slot_size=slot_sizes,
    )
    def test_consecutive_frames_share_the_ring_exactly_once(
        self, frames, slot_count, slot_size
    ):
        """Frames submitted and delivered in sequence recycle slots; the
        concatenated results are the transformed inputs, exactly once."""
        with ShmRing(slot_count=slot_count, slot_size=slot_size) as ring:
            delivered = []
            index = 0
            for sizes in frames:
                values = [payload(index + offset, size)
                          for offset, size in enumerate(sizes)]
                index += len(sizes)
                entries, slots = pack_frame(ring, values, min_bytes=1)
                delivered.extend(
                    unpack_frame(ring, child_apply(ring, entries, 1))
                )
                ring.release_all(slots)
            expected = []
            index = 0
            for sizes in frames:
                expected.extend(
                    transform(payload(index + offset, size))
                    for offset, size in enumerate(sizes)
                )
                index += len(sizes)
            assert delivered == expected
            assert ring.in_use == 0


class TestNoLeaks:
    @settings(max_examples=40, deadline=None)
    @given(
        script=st.lists(
            st.tuples(
                st.sampled_from(["submit", "deliver", "abort"]),
                st.lists(payload_sizes, min_size=1, max_size=3),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=20,
        ),
        slot_count=slot_counts,
        slot_size=slot_sizes,
    )
    def test_interleaved_submit_deliver_abort_never_leaks(
        self, script, slot_count, slot_size
    ):
        """An arbitrary interleaving of frame lifecycles — submissions,
        out-of-order deliveries, aborts of still-pending frames — keeps the
        conservation invariant at every step and leaks nothing at the end."""
        with ShmRing(slot_count=slot_count, slot_size=slot_size) as ring:
            live = {}
            next_frame = 0
            for op, sizes, pick in script:
                if op == "submit":
                    values = [payload(next_frame * 16 + offset, size)
                              for offset, size in enumerate(sizes)]
                    entries, slots = pack_frame(ring, values, min_bytes=1)
                    live[next_frame] = (values, entries, slots)
                    next_frame += 1
                elif live:
                    frame_id = sorted(live)[pick % len(live)]
                    values, entries, slots = live.pop(frame_id)
                    if op == "deliver":
                        results = unpack_frame(
                            ring, child_apply(ring, entries, 1)
                        )
                        assert results == [transform(v) for v in values]
                    # An aborted frame releases without ever being read.
                    ring.release_all(slots)
                # Conservation: every slot is free or held, never both/lost.
                assert ring.in_use + ring.free_slots == slot_count
                assert ring.in_use == sum(
                    len(slots) for _v, _e, slots in live.values()
                )
            for _values, _entries, slots in live.values():
                ring.release_all(slots)
            assert ring.in_use == 0
            assert ring.slots_acquired == ring.slots_released


class TestFallback:
    @settings(max_examples=30, deadline=None)
    @given(
        oversize=st.integers(min_value=1, max_value=1024),
        slot_count=slot_counts,
        slot_size=st.sampled_from([64, 256]),
    )
    def test_payload_exceeding_the_largest_slot_rides_the_pipe(
        self, oversize, slot_count, slot_size
    ):
        """A payload no slot can hold stays in-band (the pipe transport),
        counts as a fallback, acquires at most a spare — and still
        round-trips exactly."""
        value = payload(7, slot_size + oversize)
        with ShmRing(slot_count=slot_count, slot_size=slot_size) as ring:
            entries, slots = pack_frame(ring, [value], min_bytes=1)
            assert entries[0][0] == "inline"
            assert ring.fallbacks == 1
            assert ring.bytes_written == 0
            results = unpack_frame(ring, child_apply(ring, entries, 1))
            ring.release_all(slots)
            assert results == [transform(value)]
            assert ring.in_use == 0

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=64, max_value=256),
                          min_size=3, max_size=8))
    def test_exhaustion_degrades_to_the_pipe_without_loss(self, sizes):
        """A one-slot ring forces most of the frame in-band; nothing is
        lost, duplicated or reordered."""
        values = [payload(index, size) for index, size in enumerate(sizes)]
        with ShmRing(slot_count=1, slot_size=512) as ring:
            entries, slots = pack_frame(ring, values, min_bytes=1)
            assert len(slots) <= 1
            results = unpack_frame(ring, child_apply(ring, entries, 1))
            ring.release_all(slots)
            assert results == [transform(value) for value in values]
            assert ring.in_use == 0
            assert ring.slots_acquired == ring.slots_released


def test_oob_pack_none_for_unshaped_values_is_total():
    """The codec's in-band contract: anything without a flat byte shape
    packs to None, never raises (the fallback every layer relies on)."""
    for value in (0, 1.5, "s", [b"x"], {"k": b"v"}, object(), (1, 2)):
        assert oob_pack(value) is None
