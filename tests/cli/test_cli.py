"""Tests for the command-line interface (Unix-pipeline usage, Figure 3)."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli.pando_cli import build_parser, main, run_pipeline
from repro.cli.tools import generate_angles_main, gif_encoder_main
from repro.master.bundler import bundle_function


class TestParser:
    def test_requires_module_or_app(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_defaults(self):
        args = build_parser().parse_args(["--app", "collatz"])
        assert args.batch_size == 2
        assert args.workers == 2
        assert not args.unordered


class TestRunPipeline:
    def test_local_pipeline(self, square_fn):
        bundle = bundle_function(square_fn)
        results = run_pipeline(bundle, [1, 2, 3], workers=2, batch_size=2)
        assert results == [1, 4, 9]

    def test_unordered_pipeline(self, square_fn):
        bundle = bundle_function(square_fn)
        results = run_pipeline(bundle, [3, 2, 1], workers=1, batch_size=1, ordered=False)
        assert sorted(results) == [1, 4, 9]


class TestMainWithBuiltinApps:
    def test_collatz_app_generates_and_processes(self, capsys):
        code = main(["--app", "collatz", "--count", "3", "--workers", "2"])
        assert code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(lines) == 3
        assert all("steps" in line for line in lines)
        assert "Serving volunteer code" in captured.err

    def test_arxiv_app(self, capsys):
        assert main(["--app", "arxiv", "--count", "4"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 4
        assert all("interesting" in line for line in lines)

    def test_module_file(self, tmp_path, capsys):
        module = tmp_path / "double.py"
        module.write_text("def pando(value, cb):\n    cb(None, int(value) * 2)\n")
        assert main([str(module), "4", "5"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert lines == [8, 10]

    def test_stdin_json_input(self, monkeypatch, capsys, tmp_path):
        module = tmp_path / "incr.py"
        module.write_text("def pando(value, cb):\n    cb(None, value + 1)\n")
        monkeypatch.setattr("sys.stdin", io.StringIO("1\n2\n3\n"))
        assert main([str(module), "--stdin", "--json"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert lines == [2, 3, 4]

    def test_simulated_lan_run(self, capsys):
        assert main(["--app", "raytrace", "--simulate", "lan", "--count", "4"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(lines) == 4
        assert "Simulating a LAN deployment" in captured.err


class TestCompanionTools:
    def test_generate_angles(self, capsys):
        assert generate_angles_main(["--frames", "4"]) == 0
        angles = [float(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert angles == [0.0, 90.0, 180.0, 270.0]

    def test_generate_angles_json(self, capsys):
        assert generate_angles_main(["--frames", "2", "--json"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert lines[0] == {"angle": 0.0, "frame": 0}

    def test_gif_encoder_roundtrip(self, monkeypatch, capsys, tmp_path):
        """generate-angles | pando --app raytrace | gif-encoder, in process."""
        from repro.apps.raytracer import RaytraceApplication

        app = RaytraceApplication(width=8, height=6)
        frames = []
        for value in app.generate_inputs(3):
            app.process(value, lambda err, result: frames.append(result))
        stdin = io.StringIO("\n".join(json.dumps(frame) for frame in frames))
        monkeypatch.setattr("sys.stdin", stdin)
        output_path = tmp_path / "animation.json"
        assert gif_encoder_main(["--output", str(output_path)]) == 0
        summary = json.loads(output_path.read_text())
        assert summary["frames"] == 3


class TestSharding:
    def test_pool_sizes_distribute_the_remainder(self):
        from repro.cli.pando_cli import _pool_sizes

        assert _pool_sizes(4, 3) == [2, 1, 1]   # nothing silently dropped
        assert _pool_sizes(6, 2) == [3, 3]
        assert _pool_sizes(1, 2) == [1, 1]      # every shard needs a pool
        assert _pool_sizes(0, 1) == [1]

    def test_sharded_local_pipeline(self, square_fn):
        bundle = bundle_function(square_fn)
        results = run_pipeline(
            bundle, list(range(10)), workers=1, batch_size=2, shards=2
        )
        assert results == [v * v for v in range(10)]

    def test_local_backend_failure_keeps_the_accurate_diagnostic(self):
        """Regression: run_pipeline called drive() unconditionally, so a
        local-backend run whose workers all crash-stopped raised the
        pool-stall message instead of the accurate 'stream has not
        terminated yet' volunteer-wait semantics."""
        from repro.errors import PandoError

        def failing(value, cb):
            cb(RuntimeError("always fails"), None)

        bundle = bundle_function(failing)
        with pytest.raises(PandoError, match="not terminated"):
            run_pipeline(bundle, [1, 2, 3], workers=2, batch_size=1)

    def test_unordered_sharded_pipeline(self, square_fn):
        bundle = bundle_function(square_fn)
        results = run_pipeline(
            bundle, list(range(10)), workers=1, batch_size=2, shards=2,
            ordered=False,
        )
        assert sorted(results) == [v * v for v in range(10)]

    def test_sharded_pipeline_with_split_buffer(self, square_fn):
        bundle = bundle_function(square_fn)
        results = run_pipeline(
            bundle, list(range(12)), workers=1, batch_size=2, shards=2,
            split_buffer=1,
        )
        assert results == [v * v for v in range(12)]

    def test_unordered_with_shards_accepted(self, capsys):
        code = main(["--app", "collatz", "--count", "4", "--shards", "2",
                     "--unordered"])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 4

    def test_split_buffer_requires_shards(self, capsys):
        with pytest.raises(SystemExit):
            main(["--app", "collatz", "--count", "2", "--split-buffer", "4"])
        with pytest.raises(SystemExit):
            main(["--app", "collatz", "--count", "2", "--shards", "2",
                  "--split-buffer", "0"])

    def test_split_buffer_sharded_run(self, capsys):
        code = main(["--app", "collatz", "--count", "4", "--shards", "2",
                     "--split-buffer", "2"])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 4

    def test_shards_rejected_with_simulate(self, capsys):
        """Regression: --simulate returned before the --shards validation,
        silently ignoring the flag (even an invalid --shards 0 exited 0)."""
        with pytest.raises(SystemExit):
            main(["--app", "collatz", "--simulate", "lan", "--shards", "2"])
        with pytest.raises(SystemExit):
            main(["--app", "collatz", "--simulate", "lan", "--shards", "0"])


class TestSchedulerFlag:
    def test_asyncio_scheduler_pool_run(self, capsys):
        """Two pools on one unsharded master, pumped by the event loop."""
        code = main(["--app", "collatz", "--count", "6", "--workers", "2",
                     "--backend", "pool", "--scheduler", "asyncio"])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 6

    def test_asyncio_scheduler_composes_with_shards(self, capsys):
        code = main(["--app", "collatz", "--count", "6", "--workers", "2",
                     "--backend", "pool", "--shards", "2",
                     "--scheduler", "asyncio"])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 6

    def test_run_pipeline_asyncio_local_backend_is_harmless(self, square_fn):
        """Local workers complete during attachment; the loop has nothing
        to pump but the composition must still drain correctly."""
        bundle = bundle_function(square_fn)
        results = run_pipeline(
            bundle, list(range(8)), workers=2, batch_size=2,
            scheduler="asyncio",
        )
        assert results == [v * v for v in range(8)]

    def test_asyncio_rejected_with_simulate(self, capsys):
        with pytest.raises(SystemExit):
            main(["--app", "collatz", "--simulate", "lan",
                  "--scheduler", "asyncio"])


class TestPoolTransportFlag:
    def test_shm_transport_pool_run(self, capsys):
        """The full pipeline over the shared-memory transport: small app
        values ride in-band, the plumbing must be transparent."""
        code = main(["--app", "collatz", "--count", "6", "--workers", "2",
                     "--backend", "pool", "--pool-transport", "shm"])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 6
        assert all("steps" in line for line in lines)

    def test_shm_transport_composes_with_shards(self, capsys):
        code = main(["--app", "collatz", "--count", "6", "--workers", "2",
                     "--backend", "pool", "--shards", "2",
                     "--pool-transport", "shm"])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 6

    def test_shm_transport_requires_pool_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["--app", "collatz", "--count", "4",
                  "--pool-transport", "shm"])

    def test_default_is_pipe(self):
        args = build_parser().parse_args(["--app", "collatz"])
        assert args.pool_transport == "pipe"


class TestObservabilityFlags:
    def test_metrics_port_and_stats_json(self, capsys):
        code = main(["--app", "collatz", "--count", "4", "--workers", "2",
                     "--metrics-port", "0", "--stats-json"])
        assert code == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 4
        assert "Serving metrics at http://127.0.0.1:" in captured.err
        snapshot_lines = [line for line in captured.err.splitlines()
                          if line.startswith("{")]
        assert len(snapshot_lines) == 1
        snapshot = json.loads(snapshot_lines[0])
        assert snapshot["pando_frames_total"]["type"] == "counter"
        assert "pando_lender_values_read_total" in snapshot

    def test_defaults_leave_observability_quiet(self, capsys):
        code = main(["--app", "collatz", "--count", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Serving metrics" not in captured.err
        assert not [line for line in captured.err.splitlines()
                    if line.startswith("{")]


class TestSimulateSubcommand:
    def test_list_names_the_whole_catalogue(self, capsys):
        assert main(["simulate", "--matrix", "--list"]) == 0
        names = capsys.readouterr().out.split()
        assert "golden" in names
        assert "abort-skew" in names
        assert "ordered-single-pipe" in names
        assert len(names) == 11

    def test_single_cell_run_reports_ok(self, capsys):
        code = main(["simulate", "--matrix", "--cell", "golden"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("[ok] golden: 32 output(s)")

    def test_json_summary_with_overrides(self, capsys):
        code = main(["simulate", "--matrix", "--cell", "golden", "--json",
                     "--inputs", "8"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["cell"] == "golden"
        assert summary["outputs"] == 8
        assert summary["violations"] == []

    def test_unknown_cell_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--matrix", "--cell", "nope"])
        assert "unknown cell" in capsys.readouterr().err

    def test_matrix_flag_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate"])
        assert "--matrix" in capsys.readouterr().err
