"""Tests for the process-pool execution backend."""

from __future__ import annotations


import pytest

from repro.core import DistributedMap
from repro.errors import PandoError
from repro.pool import ProcessPoolWorker, default_window, resolve_callable
from repro.pool.tasks import expects_callback, run_batch, run_task
from repro.pullstream import collect, pull, values


def node_increment(value, cb):
    """Module-level node-style function (picklable)."""
    cb(None, value + 1)


def failing_task(value):
    raise RuntimeError(f"cannot process {value!r}")


class TestFunctionRefs:
    def test_resolve_colon_reference(self):
        fn = resolve_callable("repro.pool.workloads:square")
        assert fn(6) == 36

    def test_resolve_dotted_reference(self):
        fn = resolve_callable("repro.pool.workloads.square")
        assert fn(6) == 36

    def test_resolve_callable_passthrough(self):
        assert resolve_callable(node_increment) is node_increment

    def test_resolve_file_reference(self, tmp_path):
        module = tmp_path / "triple.py"
        module.write_text("def pando(value, cb):\n    cb(None, value * 3)\n")
        fn = resolve_callable(("file", str(module)))
        box = []
        fn(4, lambda err, result: box.append((err, result)))
        assert box == [(None, 12)]

    def test_unresolvable_reference_raises(self):
        with pytest.raises(PandoError):
            resolve_callable("repro.pool.workloads:does_not_exist")
        with pytest.raises(PandoError):
            resolve_callable(12345)

    def test_convention_detection(self):
        assert expects_callback(node_increment)
        assert not expects_callback(resolve_callable("repro.pool.workloads:square"))

    def test_run_task_supports_both_conventions(self):
        assert run_task("repro.pool.workloads:square", 5) == 25
        assert run_task(node_increment, 5) == 6

    def test_run_batch_preserves_order(self):
        assert run_batch("repro.pool.workloads:square", [1, 2, 3]) == [1, 4, 9]

    def test_node_style_error_is_raised(self):
        def bad(value, cb):
            cb(ValueError("nope"), None)

        with pytest.raises(ValueError):
            run_task(bad, 1)


class TestProcessPoolWorker:
    def test_unpicklable_callable_fails_fast(self):
        with pytest.raises(PandoError):
            ProcessPoolWorker(lambda v: v)

    def test_default_window_covers_the_pool(self):
        assert default_window(4) == 5
        assert default_window(1) == 2

    def test_close_is_idempotent(self):
        pool = ProcessPoolWorker("repro.pool.workloads:echo", processes=1)
        pool.close()
        pool.close()
        assert pool.closed


class TestTerminationPrecedence:
    def test_read_after_close_reports_the_close_reason(self):
        """Regression: ``read`` checked ``_pending`` before ``_closed``, so a
        read after ``close()`` delivered a cancelled future and reported a
        bogus ``WorkerCrashed`` instead of the close reason."""
        from repro.pullstream import DONE, pushable

        pool = ProcessPoolWorker("repro.pool.workloads:sleep_echo", processes=1)
        source = pushable()
        pool.sink(source)
        source.push({"sleep": 0.2, "index": 0})
        source.push({"sleep": 0.2, "index": 1})
        assert pool.pending == 2
        pool.close()
        assert pool.pending == 0  # cancelled futures are dropped at shutdown
        answers = []
        pool.source(None, lambda end, value: answers.append((end, value)))
        assert answers == [(DONE, None)]

    def test_read_after_error_shutdown_reports_the_stored_error(self):
        boom = RuntimeError("torn down")
        pool = ProcessPoolWorker("repro.pool.workloads:echo", processes=1)
        pool._shutdown(boom)
        answers = []
        pool.source(None, lambda end, value: answers.append(end))
        assert answers == [boom]

    def test_maybe_finish_honours_the_close_error(self):
        """Regression: ``_maybe_finish`` ignored an error stored in
        ``_closed`` and reported from ``_upstream_ended`` only; it now shares
        the read path's precedence (close error > upstream error > DONE)."""
        from repro.pullstream import DONE

        pool = ProcessPoolWorker("repro.pool.workloads:echo", processes=1)
        boom = RuntimeError("torn down")
        answers = []
        pool._result_waiting = lambda end, value: answers.append(end)
        pool._closed = boom
        pool._upstream_ended = DONE
        pool._maybe_finish()
        assert answers == [boom]
        assert pool._termination() is boom
        pool.close()


class TestNonBlockingDelivery:
    def test_parked_ask_is_delivered_by_poll(self):
        from repro.pullstream import DONE, pushable

        pool = ProcessPoolWorker(
            "repro.pool.workloads:echo", processes=1, blocking=False
        )
        try:
            source = pushable()
            pool.sink(source)
            answers = []
            pool.source(None, lambda end, value: answers.append((end, value)))
            source.push(41)
            assert answers == []  # parked: the future is not awaited inline
            while not pool.poll():
                pass
            assert answers == [(None, 41)]
            source.end()
            answers.clear()
            # With the upstream drained and ended, the ask answers inline.
            pool.source(None, lambda end, value: answers.append((end, value)))
            assert answers == [(DONE, None)]
        finally:
            pool.close()

    def test_head_future_and_waiting_expose_driver_state(self):
        from repro.pullstream import pushable

        pool = ProcessPoolWorker(
            "repro.pool.workloads:sleep_echo", processes=1, blocking=False
        )
        try:
            source = pushable()
            pool.sink(source)
            assert pool.head_future is None
            pool.source(None, lambda end, value: None)
            assert pool.waiting
            source.push({"sleep": 0.01, "index": 0})
            assert pool.head_future is not None
        finally:
            pool.close()


class TestDistributedMapPoolBackend:
    def test_results_in_input_order(self):
        dmap = DistributedMap(batch_size=3)
        output = pull(values(list(range(20))), dmap, collect())
        handle = dmap.add_process_pool("repro.pool.workloads:square", processes=2)
        try:
            assert output.result() == [value * value for value in range(20)]
        finally:
            dmap.close()
        assert handle.pool.values_dispatched == 20
        assert handle.pool.results_returned == 20
        # 20 values in frames of <= 3
        assert handle.pool.tasks_submitted == 7

    def test_node_style_function(self):
        dmap = DistributedMap(batch_size=2)
        output = pull(values([1, 2, 3, 4]), dmap, collect())
        dmap.add_process_pool(node_increment, processes=2)
        try:
            assert output.result() == [2, 3, 4, 5]
        finally:
            dmap.close()

    def test_unbatched_frames(self):
        dmap = DistributedMap(batch_size=1)
        output = pull(values(list(range(6))), dmap, collect())
        handle = dmap.add_process_pool("repro.pool.workloads:echo", processes=1)
        try:
            assert output.result() == list(range(6))
        finally:
            dmap.close()
        assert handle.pool.tasks_submitted == 6

    def test_task_failure_is_a_worker_crash(self):
        """A raising task closes the pool sub-stream; borrowed values are
        re-lent and a healthy worker completes the stream (the same
        containment as a crashing browser tab)."""
        dmap = DistributedMap(batch_size=2)
        output = pull(values(list(range(6))), dmap, collect())
        handle = dmap.add_process_pool(failing_task, processes=1)
        assert handle.closed
        assert not output.done
        assert dmap.lender.relendable >= 1
        assert dmap.stats.substreams_failed == 1
        dmap.add_local_worker(lambda v, cb: cb(None, v))
        try:
            assert output.result() == list(range(6))
        finally:
            dmap.close()

    def test_mixed_pool_and_local_workers(self):
        dmap = DistributedMap(batch_size=2)
        output = pull(values(list(range(24))), dmap, collect())
        dmap.add_process_pool("repro.pool.workloads:square", processes=2)
        dmap.add_local_worker(lambda v, cb: cb(None, v * v))
        try:
            assert output.result() == [value * value for value in range(24)]
        finally:
            dmap.close()

    def test_stats_balance_after_pool_run(self):
        dmap = DistributedMap(batch_size=4)
        output = pull(values(list(range(17))), dmap, collect())
        dmap.add_process_pool("repro.pool.workloads:echo", processes=2)
        try:
            output.result()
        finally:
            dmap.close()
        stats = dmap.stats
        assert stats.values_lent == (
            stats.results_delivered + dmap.lender.relendable + dmap.lender.outstanding
        )
        assert stats.results_delivered == 17

    def test_file_reference_backend(self, tmp_path):
        module = tmp_path / "double.py"
        module.write_text(
            "exports = {'/pando/1.0.0': lambda value, cb: cb(None, value * 2)}\n"
        )
        dmap = DistributedMap(batch_size=2)
        output = pull(values([1, 2, 3]), dmap, collect())
        dmap.add_process_pool(("file", str(module)), processes=1)
        try:
            assert output.result() == [2, 4, 6]
        finally:
            dmap.close()

    def test_close_with_parked_result_ask_closes_substream(self):
        """Regression: close() while the pool source waits for input must
        answer the parked ask so the sub-stream closes and later values are
        lent to live workers instead of being stranded."""
        from repro.pullstream import pushable

        source = pushable()
        dmap = DistributedMap(batch_size=1)
        output = pull(source, dmap, collect())
        handle = dmap.add_process_pool("repro.pool.workloads:echo", processes=1)
        assert not handle.closed  # parked, waiting for the first input
        dmap.close()
        assert handle.closed
        source.push(1)
        dmap.add_local_worker(lambda v, cb: cb(None, v))
        source.end()
        assert output.result() == [1]
        assert dmap.lender.outstanding == 0

    def test_invalid_window_does_not_leak_the_pool(self):
        dmap = DistributedMap()
        pull(values([1]), dmap, collect())
        with pytest.raises(ValueError):
            dmap.add_process_pool(
                "repro.pool.workloads:echo", processes=1, window=0
            )
        assert dmap._pools == []
        assert dmap.workers == {}

    def test_attach_after_abort_raises_without_spawning(self):
        from repro.pullstream import count, take

        dmap = DistributedMap()
        output = pull(count(100), dmap, take(2), collect())
        dmap.add_local_worker(lambda v, cb: cb(None, v))
        assert output.done
        with pytest.raises(PandoError):
            dmap.add_process_pool("repro.pool.workloads:echo", processes=1)
        assert dmap._pools == []
