"""Pool-level tests for the shared-memory batch transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.comparison import large_payload_inputs
from repro.core import DistributedMap
from repro.errors import PandoError
from repro.pool import ProcessPoolWorker
from repro.pool.workloads import invert_tile
from repro.pullstream import collect, pull, values

INVERT = "repro.pool.workloads:invert_tile"
ECHO = "repro.pool.workloads:echo"


def tiles(count, size=8192):
    return large_payload_inputs(count, size)


def assert_no_leak(ring):
    assert ring.slots_acquired == ring.slots_released
    assert ring.in_use == 0


class TestConstruction:
    def test_unknown_transport_rejected(self):
        with pytest.raises(PandoError):
            ProcessPoolWorker(ECHO, processes=1, transport="carrier-pigeon")

    def test_ring_knobs_require_shm_transport(self):
        with pytest.raises(PandoError):
            ProcessPoolWorker(ECHO, processes=1, slot_count=4)
        with pytest.raises(PandoError):
            ProcessPoolWorker(ECHO, processes=1, slot_size=1 << 16)
        with pytest.raises(PandoError):
            ProcessPoolWorker(ECHO, processes=1, shm_min_bytes=128)

    def test_pipe_transport_has_no_ring(self):
        with ProcessPoolWorker(ECHO, processes=1) as pool:
            assert pool.ring is None
            assert pool.transport == "pipe"

    def test_shm_transport_owns_a_ring(self):
        with ProcessPoolWorker(
            ECHO, processes=1, transport="shm", slot_count=4, slot_size=1 << 16
        ) as pool:
            assert pool.ring is not None
            assert pool.ring.slot_count == 4
        assert pool.ring.closed  # close() reaps the ring with the executor


class TestRoundTrip:
    def test_batched_bytes_round_trip(self):
        items = tiles(12)
        dmap = DistributedMap(batch_size=3)
        sink = pull(values(items), dmap, collect())
        handle = dmap.add_process_pool(INVERT, processes=2, transport="shm")
        try:
            assert sink.result() == [invert_tile(tile) for tile in items]
        finally:
            dmap.close()
        assert_no_leak(handle.pool.ring)
        assert handle.pool.ring.bytes_written > 0
        assert handle.pool.ring.bytes_read > 0

    def test_unbatched_ndarray_round_trip(self):
        arrays = [np.full((40, 50), index, dtype=np.int32) for index in range(6)]
        dmap = DistributedMap(batch_size=1)
        sink = pull(values(arrays), dmap, collect())
        handle = dmap.add_process_pool(ECHO, processes=1, transport="shm")
        try:
            results = sink.result()
        finally:
            dmap.close()
        for array, result in zip(arrays, results):
            assert result.dtype == array.dtype and result.shape == array.shape
            assert (result == array).all()
        assert_no_leak(handle.pool.ring)

    def test_asymmetric_frames_return_results_through_spares(self):
        """Tiny inline specs in, large pixel buffers out: the result path
        must use the frame's spare slots, not the pipe."""
        specs = [{"angle": 30.0 * index, "width": 48, "height": 36}
                 for index in range(6)]
        dmap = DistributedMap(batch_size=2)
        sink = pull(values(specs), dmap, collect())
        handle = dmap.add_process_pool(
            "repro.pool.workloads:render_frame_pixels",
            processes=2,
            transport="shm",
            shm_min_bytes=256,
        )
        try:
            results = sink.result()
        finally:
            dmap.close()
        assert len(results) == len(specs)
        ring = handle.pool.ring
        assert_no_leak(ring)
        assert ring.bytes_written == 0  # every input travelled in-band
        assert ring.bytes_read > 0  # every pixel buffer came back via slots

    def test_mixed_inline_and_shm_values_in_one_frame(self):
        items = [b"big" * 4096, 7, "small", b"also-big" * 4096]
        dmap = DistributedMap(batch_size=4)
        sink = pull(values(items), dmap, collect())
        handle = dmap.add_process_pool(ECHO, processes=1, transport="shm")
        try:
            assert sink.result() == items
        finally:
            dmap.close()
        assert_no_leak(handle.pool.ring)


class TestFallbacks:
    def test_oversized_payload_falls_back_to_pipe(self):
        big = bytes(200_000)
        small = b"x" * 4096
        dmap = DistributedMap(batch_size=1)
        sink = pull(values([big, small]), dmap, collect())
        handle = dmap.add_process_pool(
            ECHO, processes=1, transport="shm", slot_count=4, slot_size=1 << 16
        )
        try:
            assert sink.result() == [big, small]
        finally:
            dmap.close()
        assert handle.pool.ring.fallbacks >= 1
        assert_no_leak(handle.pool.ring)

    def test_exhausted_ring_falls_back_and_recovers(self):
        """More in-flight payloads than slots: the overflow rides the pipe
        and the run still completes exactly once, in order."""
        items = tiles(16, size=4096)
        dmap = DistributedMap(batch_size=4)
        sink = pull(values(items), dmap, collect())
        handle = dmap.add_process_pool(
            INVERT,
            processes=2,
            transport="shm",
            slot_count=2,
            slot_size=1 << 16,
        )
        try:
            assert sink.result() == [invert_tile(tile) for tile in items]
        finally:
            dmap.close()
        assert handle.pool.ring.fallbacks > 0
        assert_no_leak(handle.pool.ring)


class TestLeakProofLifecycle:
    def test_close_releases_slots_of_undelivered_frames(self):
        pool = ProcessPoolWorker(
            "repro.pool.workloads:sleep_blob",
            processes=1,
            transport="shm",
        )
        pool.sink(values(tiles(6)))
        assert pool.pending == 6
        held = pool.ring.in_use
        assert held > 0
        pool.close()
        assert_no_leak(pool.ring)
        assert pool.ring.closed

    def test_task_error_releases_the_frame_slots(self):
        """A raising task errors the result stream (crash-stop) and the
        failed frame's slots — plus every queued frame's — go back."""
        pool = ProcessPoolWorker(
            "tests.pool.test_shm_transport:explode", processes=1, transport="shm"
        )
        pool.sink(values(tiles(4)))
        assert pool.ring.slots_acquired >= 4
        answers = []
        pool.source(None, lambda end, value: answers.append(end))
        assert isinstance(answers[0], RuntimeError)
        assert pool.closed
        assert_no_leak(pool.ring)

    def test_nonblocking_drive_round_trip(self):
        items = tiles(10)
        dmap = DistributedMap(batch_size=2, shards=2)
        sink = pull(values(items), dmap, collect())
        handles = [
            dmap.add_process_pool(INVERT, processes=1, transport="shm")
            for _ in range(2)
        ]
        try:
            dmap.drive(sink, timeout=60)
            assert sink.result() == [invert_tile(tile) for tile in items]
        finally:
            dmap.close()
        for handle in handles:
            assert_no_leak(handle.pool.ring)


def explode(value):
    raise RuntimeError("boom on a shared-memory frame")
