"""Bounded-tail cancellation on a live process pool.

The simulated half of this invariant lives in
``tests/integration/test_scenario_matrix.py`` (the abort-skew cell).  Here
the same bound is measured against real executor children: after a
``find`` hit aborts the stream, the cancellation fan-out raises the shared
:class:`~repro.pool.cancel.CancelFlag`, and every frame already *running*
must stop at its next chunk boundary — so no child process completes more
than one value after the ``abort_fanout`` trace event.

The children prove it themselves: the ``log_completion`` workload appends
``"<pid> <id> <monotonic>"`` to ``$PANDO_COMPLETION_LOG`` after each value,
and ``CLOCK_MONOTONIC`` is system-wide on Linux, so those timestamps are
directly comparable with the master-side trace timestamp.
"""

from __future__ import annotations

import pytest

from repro.core.distributed_map import DistributedMap
from repro.pool import CancelFlag, flag_is_set
from repro.pullstream import find, pull, values

WORKLOAD = "repro.pool.workloads:log_completion"


class TestCancelFlag:
    def test_starts_clear_and_raises_idempotently(self):
        with CancelFlag() as flag:
            assert not flag.is_set()
            flag.set()
            flag.set()
            assert flag.is_set()

    def test_child_side_poll_sees_the_master_raise_it(self):
        with CancelFlag() as flag:
            assert not flag_is_set(flag.name)
            flag.set()
            assert flag_is_set(flag.name)

    def test_missing_flag_reads_as_raised(self):
        """A vanished master means nobody wants the results: fail-stop."""
        flag = CancelFlag()
        name = flag.name
        flag.close()  # unlinks; the name was never polled, so no cache
        assert flag_is_set(name)

    def test_closed_flag_reads_as_set_locally(self):
        flag = CancelFlag()
        flag.close()
        assert flag.is_set()
        flag.set()  # must not touch the released buffer


def read_completion_log(path):
    """Parse ``log_completion`` records into ``(pid, id, monotonic)`` rows."""
    rows = []
    for line in path.read_text().splitlines():
        pid, ident, stamp = line.split()
        rows.append((int(pid), int(ident), float(stamp)))
    return rows


def test_running_frames_stop_within_one_value_of_the_abort(tmp_path, monkeypatch):
    log = tmp_path / "completions.log"
    monkeypatch.setenv("PANDO_COMPLETION_LOG", str(log))
    hit_index = 40
    inputs = [
        {"i": index, "sleep": 0.02, "hit": index == hit_index}
        for index in range(200)
    ]
    dmap = DistributedMap(batch_size=4)
    sink = pull(values(inputs), dmap, find(lambda value: value["hit"]))
    try:
        handle = dmap.add_process_pool(
            WORKLOAD,
            processes=2,
            window=12,
            blocking=False,
            cancel_chunk=1,
        )
        dmap.drive(sink, timeout=120)
    finally:
        dmap.close()

    assert sink.aborted and sink.result()["i"] == hit_index

    fanouts = dmap.obs.trace.events("abort_fanout")
    assert fanouts, "drive() must emit the abort fan-out trace"
    # The flag is raised inside cancel_pending(), *before* the trace event
    # is stamped — so the event timestamp is a safe (late) abort reference.
    abort_at = fanouts[0].ts

    rows = read_completion_log(log)
    assert rows, "children never logged any completions"
    # Queued frames were cancelled rather than computed: the children logged
    # strictly fewer completions than the stream had inputs.
    assert len(rows) < len(inputs)
    assert handle.pool.tasks_cancelled > 0

    late_by_pid = {}
    for pid, _ident, stamp in rows:
        if stamp > abort_at:
            late_by_pid[pid] = late_by_pid.get(pid, 0) + 1
    # Bounded tail: with cancel_chunk=1 each child checks the flag before
    # every value, so only the value already in flight may still complete.
    assert all(count <= 1 for count in late_by_pid.values()), (
        f"tail not bounded: {late_by_pid} completions after the abort "
        f"(abort_at={abort_at})"
    )
