"""Fault-injection churn over the shared-memory pool transport.

Mirror of ``tests/sched/test_sched_churn.py`` with the data plane under
test: a **220-worker population** — two process pools running the
shared-memory transport (real OS processes, payloads through
:class:`~repro.net.shm_ring.ShmRing` slots) and 218 driver-backed workers
churning with crash-stop failures — serves one sharded map over binary
tile payloads.  The assertions are the transport's contract under churn:

* exactly-once delivery (global order on the ordered map, a permutation on
  the unordered one) of content-checked inverted tiles;
* zero leaked ring slots after ``close()`` — every slot acquired across
  hundreds of frames, re-lent values and crash-stopped borrows is released;
* both pools actually moved payloads through their rings (the churn did
  not silently starve the transport under test).

The pools run deliberately tiny rings (8 slots), so slot recycling and the
exhaustion fallback are exercised under load, not just in unit tests.
"""

from __future__ import annotations

import pytest

from repro.core.distributed_map import DistributedMap
from repro.pool.workloads import invert_tile
from repro.pullstream import collect, pull, values
from repro.sched import EventLoopScheduler
from repro.sched.sources import EventSource
from repro.sim.failures import ChurnModel

SHARDS = 4
WORKERS = 220
DRIVERS = WORKERS - 2  # two shm pools complete the population
INPUTS = 500
TILE_BYTES = 2048


class DriverStepSource(EventSource):
    """Step the manual sub-stream drivers from the event loop, fairly.

    One dispatch delivers the pending results of exactly one driver
    (rotating), so the driver population shares rounds with the pools
    instead of flushing all at once.
    """

    def __init__(self, drivers):
        self.drivers = drivers
        self._cursor = 0

    def _deliverable(self, driver):
        return not driver.crashed and len(driver.pending_results) > 0

    def ready(self):
        return any(self._deliverable(driver) for driver in self.drivers)

    def dispatch(self):
        count = len(self.drivers)
        for offset in range(count):
            driver = self.drivers[(self._cursor + offset) % count]
            if self._deliverable(driver):
                self._cursor = (self._cursor + offset + 1) % count
                driver.deliver_all()
                return True
        return False

    def live(self):
        return self.ready()


def tile(index: int) -> bytes:
    return (index.to_bytes(4, "big") * (TILE_BYTES // 4))[:TILE_BYTES]


def lend(dmap):
    box = []
    dmap.lender.lend_stream(lambda err, sub: box.append(sub))
    return box[0]


def build_churn_run(dmap, sched, substream_driver, seed=1234):
    """Attach two shm pools and churning drivers to *dmap*."""
    input_values = [tile(index) for index in range(INPUTS)]
    output = pull(values(input_values), dmap, collect())

    # --- two process pools on the shared-memory transport ------------------
    pool_handles = [
        dmap.add_process_pool(
            "repro.pool.workloads:invert_tile",
            processes=1,
            batch_size=1,
            worker_id=f"shm-pool-{index}",
            transport="shm",
            slot_count=8,
            slot_size=4096,
        )
        for index in range(2)
    ]

    # --- 218 churning driver-backed workers --------------------------------
    worker_ids = [f"driver-{index}" for index in range(DRIVERS)]
    churn = ChurnModel(mean_uptime=8.0, seed=seed)
    schedule = churn.schedule_for(worker_ids, horizon=12.0)
    crash_points = {}
    for event in schedule:
        if event.kind == "crash" and event.worker_id not in crash_points:
            crash_points[event.worker_id] = int(event.time)
    survivors = [wid for wid in worker_ids if wid not in crash_points]
    assert survivors, "churn model crashed every worker; adjust parameters"
    assert len(crash_points) >= DRIVERS // 2, "churn should be substantial"

    drivers = []
    surviving_shards = {handle.shard for handle in pool_handles}
    for worker_id in worker_ids:
        sub = lend(dmap)  # least-loaded placement
        if worker_id in crash_points:
            driver = substream_driver(
                sub, fn=invert_tile, crash_after=crash_points[worker_id],
                auto_deliver=False,
            )
        else:
            driver = substream_driver(
                sub, fn=invert_tile, auto_deliver=False, max_in_flight=1
            )
            surviving_shards.add(sub.shard)
        drivers.append(driver.start())
    # Liveness precondition: every shard keeps at least one server that
    # never crashes (a pool or a surviving driver).
    assert surviving_shards >= set(range(SHARDS)), surviving_shards

    sched.register(DriverStepSource(drivers))
    return input_values, output, pool_handles


def assert_accounting(dmap):
    total = dmap.stats
    assert total.values_read == INPUTS
    assert total.results_delivered == INPUTS
    assert total.substreams_opened == WORKERS
    assert total.values_lent == INPUTS + total.values_relent
    assert sum(total.lent_per_substream.values()) == total.values_lent
    for lender in dmap.lender.shards:
        assert lender.outstanding == 0
        assert lender.relendable == 0


def assert_zero_leaked_slots(handle):
    ring = handle.pool.ring
    assert ring.closed  # close() reaped the ring with the executor
    assert ring.slots_acquired == ring.slots_released
    assert ring.in_use == 0


@pytest.mark.parametrize("ordered", [True, False], ids=["ordered", "unordered"])
def test_two_shm_pools_survive_churn(substream_driver, ordered):
    sched = EventLoopScheduler()
    dmap = DistributedMap(ordered=ordered, batch_size=1, shards=SHARDS,
                          scheduler=sched)
    try:
        inputs, output, pool_handles = build_churn_run(
            dmap, sched, substream_driver
        )
        dmap.drive(output, timeout=120)

        expected = [invert_tile(value) for value in inputs]
        if ordered:
            # Exactly once, in global input order.
            assert output.result() == expected
        else:
            # Exactly once: a permutation, nothing lost or duplicated.
            assert sorted(output.result()) == sorted(expected)
        assert_accounting(dmap)

        # Both pools moved payloads through their rings under churn.
        for handle in pool_handles:
            assert handle.pool.results_returned > 0
            assert handle.pool.ring.slots_acquired > 0
            assert handle.pool.ring.bytes_read > 0
    finally:
        dmap.close()
        sched.close()
    # Zero leaked slots after close(): the headline leak-proofness claim.
    for handle in pool_handles:
        assert_zero_leaked_slots(handle)
