"""Tests for device profiles (Table-2 catalogue) and simulated devices."""

from __future__ import annotations

import pytest

from repro.devices import (
    ALL_DEVICES,
    APPLICATIONS,
    LAN_DEVICES,
    MASTER_DEVICE,
    SimDevice,
    VPN_DEVICES,
    WAN_DEVICES,
    device_by_name,
    devices_for_setting,
)
from repro.errors import WorkerCrashed


class TestCatalogue:
    def test_device_counts_match_paper(self):
        assert len(LAN_DEVICES) == 5
        assert len(VPN_DEVICES) == 8
        assert len(WAN_DEVICES) == 7

    def test_lan_totals_match_paper(self):
        """The per-device rates must sum to the totals the paper reports.

        The tolerance is 2% because the paper's own totals are rounded (its
        image-processing devices sum to 0.72 while the reported total is 0.71).
        """
        totals = {
            "collatz": 2209.65,
            "crypto": 378_672.0,
            "lender_test": 3603.70,
            "raytrace": 18.94,
            "imageproc": 0.71,
            "ml_agent": 484.90,
        }
        for app, expected in totals.items():
            measured = sum(device.rate(app) for device in LAN_DEVICES)
            assert measured == pytest.approx(expected, rel=0.02)

    def test_vpn_totals_match_paper(self):
        totals = {"collatz": 3823.51, "raytrace": 16.38, "imageproc": 2.73}
        for app, expected in totals.items():
            measured = sum(device.rate(app) for device in VPN_DEVICES)
            assert measured == pytest.approx(expected, rel=0.01)

    def test_wan_totals_match_paper(self):
        totals = {"collatz": 1845.52, "raytrace": 4.75, "ml_agent": 714.38}
        for app, expected in totals.items():
            measured = sum(device.rate(app) for device in WAN_DEVICES)
            assert measured == pytest.approx(expected, rel=0.01)

    def test_wan_has_no_imageproc(self):
        assert all(not device.supports("imageproc") for device in WAN_DEVICES)

    def test_every_device_has_every_other_application(self):
        for device in ALL_DEVICES:
            for app in APPLICATIONS:
                if device.setting == "wan" and app == "imageproc":
                    continue
                assert device.supports(app), f"{device.name} lacks {app}"

    def test_lookup_by_name(self):
        assert device_by_name("iphone-se").setting == "lan"
        assert device_by_name("dahu.grenoble").setting == "vpn"
        with pytest.raises(KeyError):
            device_by_name("nokia-3310")

    def test_devices_for_setting(self):
        assert devices_for_setting("lan") == LAN_DEVICES
        with pytest.raises(ValueError):
            devices_for_setting("moon")

    def test_per_core_rate(self):
        mbpro = device_by_name("mbpro-2016")
        assert mbpro.per_core_rate("collatz") == pytest.approx(1045.58 / 2)

    def test_task_duration(self):
        iphone = device_by_name("iphone-se")
        assert iphone.task_duration("collatz", cost=336.18) == pytest.approx(1.0)

    def test_iphone_beats_uvb_on_collatz(self):
        """One of the paper's headline comparisons (section 5.5)."""
        assert device_by_name("iphone-se").per_core_rate("collatz") > device_by_name(
            "uvb.sophia"
        ).per_core_rate("collatz")

    def test_master_device_has_no_rates(self):
        assert not MASTER_DEVICE.supports("collatz")
        with pytest.raises(KeyError):
            MASTER_DEVICE.rate("collatz")


class TestSimDevice:
    def test_task_duration_matches_rate(self, scheduler):
        device = SimDevice(device_by_name("iphone-se"), scheduler)
        done = []
        device.execute("collatz", cost=336.18, callback=lambda err, d: done.append(scheduler.now))
        scheduler.run()
        assert done[0] == pytest.approx(1.0)

    def test_parallel_cores(self, scheduler):
        device = SimDevice(device_by_name("mbpro-2016"), scheduler)  # 2 cores
        finish_times = []
        for _ in range(2):
            device.execute("raytrace", 1.0, lambda err, d: finish_times.append(scheduler.now))
        scheduler.run()
        # both tasks ran in parallel: same completion time
        assert finish_times[0] == pytest.approx(finish_times[1])

    def test_queueing_when_cores_busy(self, scheduler):
        device = SimDevice(device_by_name("iphone-se"), scheduler, cores=1)
        finish_times = []
        for _ in range(2):
            device.execute("raytrace", 1.0, lambda err, d: finish_times.append(scheduler.now))
        scheduler.run()
        assert finish_times[1] == pytest.approx(2 * finish_times[0])

    def test_unknown_application_uses_default_rate(self, scheduler):
        device = SimDevice(device_by_name("iphone-se"), scheduler)
        done = []
        device.execute("my-custom-task", cost=device.default_rate, callback=lambda e, d: done.append(scheduler.now))
        scheduler.run()
        assert done[0] == pytest.approx(1.0)

    def test_crash_drops_running_tasks(self, scheduler):
        device = SimDevice(device_by_name("novena"), scheduler)
        completions = []
        device.execute("collatz", 1000.0, lambda err, d: completions.append(err))
        scheduler.call_later(0.1, device.crash)
        scheduler.run()
        assert completions == []  # the callback was never invoked
        assert device.crashed

    def test_execute_after_crash_reports_error(self, scheduler):
        device = SimDevice(device_by_name("novena"), scheduler)
        device.crash()
        errors = []
        device.execute("collatz", 1.0, lambda err, d: errors.append(err))
        assert isinstance(errors[0], WorkerCrashed)

    def test_crash_listener(self, scheduler):
        device = SimDevice(device_by_name("novena"), scheduler)
        crashed = []
        device.on_crash(lambda d: crashed.append(d.name))
        device.crash()
        device.crash()  # idempotent
        assert crashed == ["novena"]

    def test_utilisation_and_counters(self, scheduler):
        device = SimDevice(device_by_name("iphone-se"), scheduler, cores=1)
        device.execute("collatz", 336.18, lambda err, d: None)
        scheduler.run()
        assert device.tasks_completed == 1
        assert device.total_busy_time == pytest.approx(1.0)
        assert device.utilisation(window=2.0) == pytest.approx(0.5)
