"""Tests for the virtual clock, scheduler, network model, failures and metrics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.failures import ChurnModel, FailureEvent, FailureSchedule
from repro.sim.metrics import MetricsCollector
from repro.sim.network import (
    LAN_PROFILE,
    LOOPBACK_PROFILE,
    NetworkModel,
    VPN_PROFILE,
    WAN_PROFILE,
    profile_for_setting,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_by(2.5)
        assert clock.now == 7.5

    def test_cannot_go_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)


class TestScheduler:
    def test_events_run_in_time_order(self, scheduler):
        order = []
        scheduler.call_later(3.0, lambda: order.append("c"))
        scheduler.call_later(1.0, lambda: order.append("a"))
        scheduler.call_later(2.0, lambda: order.append("b"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, scheduler):
        order = []
        for name in "abc":
            scheduler.call_at(1.0, lambda n=name: order.append(n))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, scheduler):
        times = []
        scheduler.call_later(4.5, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [4.5]

    def test_run_until_leaves_future_events(self, scheduler):
        fired = []
        scheduler.call_later(1.0, lambda: fired.append(1))
        scheduler.call_later(5.0, lambda: fired.append(5))
        scheduler.run_until(2.0)
        assert fired == [1]
        assert scheduler.now == 2.0
        assert scheduler.pending() == 1

    def test_run_for(self, scheduler):
        scheduler.call_later(1.0, lambda: None)
        scheduler.run_for(3.0)
        assert scheduler.now == 3.0

    def test_cancellation(self, scheduler):
        fired = []
        event = scheduler.call_later(1.0, lambda: fired.append(1))
        event.cancel()
        scheduler.run()
        assert fired == []

    def test_cannot_schedule_in_the_past(self, scheduler):
        scheduler.call_later(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.call_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.call_later(-1.0, lambda: None)

    def test_run_until_condition(self, scheduler):
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            scheduler.call_later(1.0, tick)

        scheduler.call_later(1.0, tick)
        scheduler.run(until=lambda: counter["n"] >= 5)
        assert counter["n"] == 5

    def test_max_events_guard(self, scheduler):
        scheduler.max_events = 10

        def forever():
            scheduler.call_soon(forever)

        scheduler.call_soon(forever)
        with pytest.raises(SimulationError):
            scheduler.run()

    def test_events_processed_counter(self, scheduler):
        for _ in range(5):
            scheduler.call_soon(lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 5


class TestNetworkModel:
    def test_profile_for_setting(self):
        assert profile_for_setting("lan") is LAN_PROFILE
        assert profile_for_setting("VPN") is VPN_PROFILE
        assert profile_for_setting("wan") is WAN_PROFILE
        with pytest.raises(ValueError):
            profile_for_setting("mars")

    def test_latency_ordering(self):
        assert LAN_PROFILE.latency < VPN_PROFILE.latency < WAN_PROFILE.latency

    def test_loopback_for_same_host(self):
        model = NetworkModel(default_profile=WAN_PROFILE)
        assert model.profile("x", "x") is LOOPBACK_PROFILE

    def test_delay_includes_transfer_time(self):
        model = NetworkModel(default_profile=LAN_PROFILE, seed=1)
        small = model.delay("a", "b", 100)
        large = model.delay("a", "b", 10_000_000)
        assert large > small

    def test_specific_link_overrides_default(self):
        model = NetworkModel(default_profile=LAN_PROFILE, seed=1)
        model.set_link("a", "b", WAN_PROFILE)
        assert model.profile("a", "b") is WAN_PROFILE
        assert model.profile("b", "a") is WAN_PROFILE
        assert model.profile("a", "c") is LAN_PROFILE

    def test_byte_accounting(self):
        model = NetworkModel(default_profile=LAN_PROFILE, seed=1)
        model.delay("a", "b", 500)
        model.delay("a", "b", 700)
        assert model.total_bytes() == 1200

    def test_deterministic_with_seed(self):
        first = NetworkModel(default_profile=WAN_PROFILE, seed=7)
        second = NetworkModel(default_profile=WAN_PROFILE, seed=7)
        assert [first.delay("a", "b", 100) for _ in range(5)] == [
            second.delay("a", "b", 100) for _ in range(5)
        ]

    def test_rtt(self):
        assert LAN_PROFILE.rtt == pytest.approx(2 * LAN_PROFILE.latency)


class TestFailures:
    def test_schedule_ordering(self):
        schedule = FailureSchedule()
        schedule.crash(5.0, "b").crash(1.0, "a").join(3.0, "c")
        assert [event.time for event in schedule] == [1.0, 3.0, 5.0]

    def test_events_for(self):
        schedule = FailureSchedule().crash(1.0, "x").crash(2.0, "y").leave(3.0, "x")
        assert len(schedule.events_for("x")) == 2

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            FailureEvent(time=1.0, worker_id="x", kind="explode")

    def test_churn_model_generates_crashes(self):
        churn = ChurnModel(mean_uptime=10.0, seed=42)
        schedule = churn.schedule_for(["a", "b", "c"], horizon=100.0)
        assert len(schedule) >= 1
        assert all(event.kind == "crash" for event in schedule)

    def test_churn_model_with_rejoin(self):
        churn = ChurnModel(mean_uptime=5.0, mean_downtime=2.0, rejoin=True, seed=1)
        schedule = churn.schedule_for(["a"], horizon=100.0)
        kinds = {event.kind for event in schedule}
        assert "crash" in kinds and "join" in kinds

    def test_churn_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(mean_uptime=0)


class TestMetrics:
    def test_throughput_report(self):
        metrics = MetricsCollector()
        metrics.start_window(0.0)
        metrics.record_work("fast", timestamp=1.0, duration=0.1)
        metrics.record_work("fast", timestamp=2.0, duration=0.1)
        metrics.record_work("slow", timestamp=3.0, duration=0.5)
        metrics.record_output(3)
        metrics.end_window(10.0)
        report = metrics.report("collatz", "lan")
        assert report.total_items == 3
        assert report.per_worker_items == {"fast": 2, "slow": 1}
        assert report.total_throughput == pytest.approx(0.3)
        assert report.per_worker_share["fast"] == pytest.approx(66.67, abs=0.1)
        assert report.output_throughput == pytest.approx(0.3)

    def test_disabled_collection_ignores_records(self):
        metrics = MetricsCollector()
        metrics.enabled = False
        metrics.record_work("w", 1.0, 0.1)
        metrics.record_output()
        metrics.start_window(5.0)
        metrics.record_work("w", 6.0, 0.1)
        metrics.end_window(10.0)
        report = metrics.report("app", "lan")
        assert report.total_items == 1
        assert report.output_items == 0

    def test_report_requires_window(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.report("a", "lan")

    def test_worker_utilisation(self):
        metrics = MetricsCollector()
        metrics.record_work("w", 1.0, 2.0)
        assert metrics.worker("w").utilisation(4.0) == pytest.approx(0.5)


class TestClockListeners:
    def test_on_advance_reports_every_move(self):
        clock = VirtualClock()
        moves = []
        clock.on_advance(lambda prev, now: moves.append((prev, now)))
        clock.advance_to(1.5)
        clock.advance_by(0.5)
        assert moves == [(0.0, 1.5), (1.5, 2.0)]

    def test_zero_delta_advance_is_silent(self):
        clock = VirtualClock(start=3.0)
        moves = []
        clock.on_advance(lambda prev, now: moves.append((prev, now)))
        clock.advance_to(3.0)
        clock.advance_by(0.0)
        assert moves == []


class TestSchedulerStepping:
    def test_step_processes_exactly_one_event(self, scheduler):
        fired = []
        scheduler.call_later(1.0, lambda: fired.append("a"))
        scheduler.call_later(2.0, lambda: fired.append("b"))
        assert scheduler.step() is True
        assert fired == ["a"]
        assert scheduler.now == 1.0
        assert scheduler.step() is True
        assert fired == ["a", "b"]
        assert scheduler.step() is False

    def test_next_event_time_skips_cancelled_heads(self, scheduler):
        doomed = scheduler.call_later(0.5, lambda: None)
        scheduler.call_later(2.0, lambda: None)
        doomed.cancel()
        assert scheduler.next_event_time() == 2.0
        assert scheduler.step() is True
        assert scheduler.next_event_time() is None

    def test_step_on_empty_queue(self, scheduler):
        assert scheduler.next_event_time() is None
        assert scheduler.step() is False
