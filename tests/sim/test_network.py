"""Unit tests for the network latency/bandwidth models."""

from __future__ import annotations

import random

import pytest

from repro.sim.network import (
    LAN_PROFILE,
    LOOPBACK_PROFILE,
    VPN_PROFILE,
    WAN_PROFILE,
    LinkProfile,
    NetworkModel,
    profile_for_setting,
)


# ------------------------------------------------------------ LinkProfile
def test_one_way_delay_bounds_jitter_and_adds_transfer_time():
    profile = LinkProfile(name="t", latency=0.010, jitter=0.004, bandwidth=1000.0)
    rng = random.Random(1)
    for _ in range(200):
        delay = profile.one_way_delay(500, rng)
        # latency + transfer (500 B / 1000 B/s) + jitter in [0, 0.004)
        assert 0.510 <= delay < 0.514


def test_one_way_delay_without_jitter_is_exact():
    profile = LinkProfile(name="t", latency=0.002, jitter=0.0, bandwidth=100.0)
    assert profile.one_way_delay(50) == pytest.approx(0.002 + 0.5)
    zero_bw = LinkProfile(name="z", latency=0.001, jitter=0.0, bandwidth=0.0)
    assert zero_bw.one_way_delay(10**9) == pytest.approx(0.001)


def test_rtt_is_twice_the_base_latency():
    assert LAN_PROFILE.rtt == pytest.approx(2 * LAN_PROFILE.latency)
    assert WAN_PROFILE.rtt > VPN_PROFILE.rtt > LAN_PROFILE.rtt


def test_profile_for_setting_maps_names_case_insensitively():
    assert profile_for_setting("lan") is LAN_PROFILE
    assert profile_for_setting("VPN") is VPN_PROFILE
    assert profile_for_setting("Wan") is WAN_PROFILE
    assert profile_for_setting("loopback") is LOOPBACK_PROFILE
    with pytest.raises(ValueError, match="unknown network setting"):
        profile_for_setting("carrier-pigeon")


# ----------------------------------------------------------- NetworkModel
def test_set_link_is_order_independent():
    model = NetworkModel(default_profile=LAN_PROFILE, seed=0)
    model.set_link("master", "pl-node", WAN_PROFILE)
    assert model.profile("master", "pl-node") is WAN_PROFILE
    assert model.profile("pl-node", "master") is WAN_PROFILE
    assert model.profile("master", "other") is LAN_PROFILE


def test_same_host_messages_use_the_loopback_profile():
    model = NetworkModel(default_profile=WAN_PROFILE, seed=0)
    assert model.profile("master", "master") is LOOPBACK_PROFILE
    assert model.delay("master", "master", 100) < WAN_PROFILE.latency


def test_delay_is_seed_deterministic_and_tracks_counters():
    def run(seed):
        model = NetworkModel(default_profile=VPN_PROFILE, seed=seed)
        return [model.delay("a", "b", 1000) for _ in range(10)], model

    first, model = run(42)
    second, _ = run(42)
    third, _ = run(43)
    assert first == second
    assert first != third
    assert model.messages_sent[("a", "b")] == 10
    assert model.bytes_sent[("a", "b")] == 10_000
    assert model.total_bytes() == 10_000


def test_delay_accumulates_per_link_not_per_direction():
    model = NetworkModel(default_profile=LAN_PROFILE, seed=0)
    model.delay("a", "b", 100)
    model.delay("b", "a", 200)
    assert model.bytes_sent == {("a", "b"): 300}
    assert model.messages_sent == {("a", "b"): 2}


def test_nat_blocking_samples_only_natted_profiles():
    model = NetworkModel(default_profile=LAN_PROFILE, seed=7)
    # LAN has no NAT failure rate: never blocks, never consumes randomness.
    assert not any(model.nat_blocks_direct_connection("a", "b") for _ in range(50))
    model.set_link("a", "w", WAN_PROFILE)
    outcomes = [model.nat_blocks_direct_connection("a", "w") for _ in range(2000)]
    rate = sum(outcomes) / len(outcomes)
    assert 0.0 < rate < 0.15  # around the profile's 5%
