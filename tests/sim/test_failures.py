"""Unit tests for the failure-injection layer (events, schedules, churn)."""

from __future__ import annotations

import pytest

from repro.sim.failures import ChurnModel, FailureEvent, FailureSchedule


# ------------------------------------------------------------ FailureEvent
def test_event_kinds_are_validated():
    with pytest.raises(ValueError, match="unknown failure event kind"):
        FailureEvent(time=1.0, worker_id="w", kind="explode")


def test_slowdown_requires_positive_factor():
    with pytest.raises(ValueError, match="positive factor"):
        FailureEvent(time=1.0, worker_id="w", kind="slowdown")
    with pytest.raises(ValueError, match="positive factor"):
        FailureEvent(time=1.0, worker_id="w", kind="slowdown", factor=0.0)
    event = FailureEvent(time=1.0, worker_id="w", kind="slowdown", factor=2.0)
    assert event.factor == 2.0


def test_non_slowdown_events_reject_a_factor():
    for kind in ("crash", "leave", "join"):
        with pytest.raises(ValueError, match="do not take a factor"):
            FailureEvent(time=1.0, worker_id="w", kind=kind, factor=2.0)


# --------------------------------------------------------- FailureSchedule
def test_empty_schedule_iterates_to_nothing():
    schedule = FailureSchedule()
    assert len(schedule) == 0
    assert list(schedule) == []
    assert schedule.events_for("anyone") == []


def test_schedule_keeps_events_sorted_by_time():
    schedule = FailureSchedule()
    schedule.crash(5.0, "late")
    schedule.leave(1.0, "early")
    schedule.slowdown(3.0, "mid", factor=2.0)
    assert [event.time for event in schedule] == [1.0, 3.0, 5.0]


def test_duplicate_timestamps_preserve_insertion_order():
    """Simultaneous events (a healing partition) keep FIFO order: the sort
    is stable, so a crash added before a join at the same instant stays
    before it — which is what makes crash-then-rejoin at one timestamp a
    rejoin rather than a join-then-crash."""
    schedule = FailureSchedule()
    schedule.crash(2.0, "a")
    schedule.join(2.0, "a")
    schedule.crash(2.0, "b")
    kinds = [(event.worker_id, event.kind) for event in schedule]
    assert kinds == [("a", "crash"), ("a", "join"), ("b", "crash")]


def test_extend_merges_and_resorts():
    first = FailureSchedule().crash(4.0, "a")
    second = FailureSchedule().leave(1.0, "b").join(9.0, "b")
    first.extend(second)
    assert [event.time for event in first] == [1.0, 4.0, 9.0]
    assert len(second) == 2  # the source schedule is not consumed


def test_events_for_filters_by_worker():
    schedule = FailureSchedule().crash(1.0, "a").leave(2.0, "b").join(3.0, "a")
    assert [event.kind for event in schedule.events_for("a")] == ["crash", "join"]


# ----------------------------------------------------------- ChurnModel
def test_churn_model_crash_before_any_join_is_expressible():
    """A schedule may crash a worker before its (re)join: the scenario
    treats the later join as a rejoin of the departed host."""
    schedule = FailureSchedule().crash(0.5, "w").join(2.0, "w")
    kinds = [event.kind for event in schedule]
    assert kinds == ["crash", "join"]


def test_waves_validate_parameters():
    model = ChurnModel(mean_uptime=10.0, seed=1)
    with pytest.raises(ValueError, match="period"):
        model.waves(["w"], horizon=10.0, period=0.0)
    with pytest.raises(ValueError, match="duty"):
        model.waves(["w"], horizon=10.0, period=5.0, duty=1.0)
    with pytest.raises(ValueError, match="jitter"):
        model.waves(["w"], horizon=10.0, period=5.0, jitter=-1.0)
    with pytest.raises(ValueError, match="participation"):
        model.waves(["w"], horizon=10.0, period=5.0, participation=1.5)


def test_waves_alternate_leave_join_per_worker():
    model = ChurnModel(mean_uptime=10.0, seed=7)
    schedule = model.waves(
        ["a", "b"], horizon=30.0, period=10.0, duty=0.5, jitter=2.0
    )
    for worker in ("a", "b"):
        events = schedule.events_for(worker)
        kinds = [event.kind for event in events]
        # leave, join, leave, join, ... possibly truncated at the horizon
        assert kinds == (["leave", "join"] * 3)[: len(kinds)]
        times = [event.time for event in events]
        assert times == sorted(times)
        assert all(time < 30.0 for time in times)


def test_waves_participation_zero_yields_empty_schedule():
    model = ChurnModel(mean_uptime=10.0, seed=7)
    schedule = model.waves(["a"], horizon=30.0, period=10.0, participation=0.0)
    assert len(schedule) == 0


def test_partitions_emit_shared_timestamps():
    model = ChurnModel(mean_uptime=10.0, seed=7)
    schedule = model.partitions(["a", "b"], [(5.0, 8.0)])
    crashes = [event for event in schedule if event.kind == "crash"]
    joins = [event for event in schedule if event.kind == "join"]
    assert {event.time for event in crashes} == {5.0}
    assert {event.time for event in joins} == {8.0}
    assert {event.worker_id for event in crashes} == {"a", "b"}


def test_partitions_reject_bad_windows():
    model = ChurnModel(mean_uptime=10.0, seed=7)
    with pytest.raises(ValueError, match="never heals"):
        model.partitions(["a"], [(5.0, 5.0)])
    with pytest.raises(ValueError, match="overlap"):
        model.partitions(["a"], [(1.0, 4.0), (3.0, 6.0)])
    with pytest.raises(ValueError, match="fraction"):
        model.partitions(["a"], [(1.0, 2.0)], fraction=2.0)


def test_stragglers_slow_a_bounded_subset():
    model = ChurnModel(mean_uptime=10.0, seed=7)
    workers = [f"w{i}" for i in range(20)]
    schedule = model.stragglers(workers, time=1.0, factor=4.0)
    events = list(schedule)
    assert len(events) == 2  # a tenth of twenty
    assert all(event.kind == "slowdown" and event.factor == 4.0 for event in events)
    with pytest.raises(ValueError, match="count exceeds"):
        model.stragglers(["a"], time=0.0, factor=2.0, count=2)
    with pytest.raises(ValueError, match="factor"):
        model.stragglers(["a"], time=0.0, factor=0.0)


def test_churn_model_is_seed_deterministic():
    def build(seed):
        model = ChurnModel(mean_uptime=10.0, seed=seed)
        return [
            (event.time, event.worker_id, event.kind)
            for event in model.waves(
                ["a", "b", "c"], horizon=50.0, period=10.0, jitter=2.0,
                participation=0.7,
            )
        ]

    assert build(3) == build(3)
    assert build(3) != build(4)
