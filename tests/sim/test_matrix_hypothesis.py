"""Property-based tests for the scenario matrix (hypothesis).

Two families of properties:

* **Causal validity of generated schedules** — for any wave/partition
  parameters the :class:`~repro.sim.failures.ChurnModel` accepts, the
  schedule it emits must be replayable: per-worker events alternate
  (leave before rejoin, rejoin before the next leave), timestamps never
  decrease and never escape the horizon.  These are the invariants
  ``DeploymentScenario._schedule_failures`` silently relies on.

* **Exactly-once under random abort points** — a tiny pure-sim matrix cell
  whose ``find()`` hit lands at a randomly chosen input must always abort,
  deliver exactly the one hit, and pass every ``verify_cell`` invariant.
  This is the randomized sibling of the pinned abort cell in
  ``tests/integration/test_scenario_matrix.py``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.failures import ChurnModel
from repro.sim.matrix import MatrixCell, run_cell, verify_cell

# ----------------------------------------------------- schedule validity
wave_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "workers": st.integers(1, 8),
        "horizon": st.floats(5.0, 80.0),
        "period": st.floats(2.0, 30.0),
        "duty": st.floats(0.1, 0.9),
        "jitter": st.floats(0.0, 10.0),
        "participation": st.floats(0.0, 1.0),
    }
)


@given(params=wave_params)
@settings(max_examples=60, deadline=None)
def test_waves_are_always_causally_valid(params):
    model = ChurnModel(mean_uptime=10.0, seed=params["seed"])
    worker_ids = [f"w{i}" for i in range(params["workers"])]
    schedule = model.waves(
        worker_ids,
        horizon=params["horizon"],
        period=params["period"],
        duty=params["duty"],
        jitter=params["jitter"],
        participation=params["participation"],
    )
    times = [event.time for event in schedule]
    assert times == sorted(times)
    assert all(0.0 <= time < params["horizon"] for time in times)
    for worker_id in worker_ids:
        events = schedule.events_for(worker_id)
        # Strict alternation starting with a leave; jitter clamping must
        # keep each pair ordered even when the requested jitter is huge.
        kinds = [event.kind for event in events]
        assert kinds == (["leave", "join"] * len(events))[: len(events)]
        for earlier, later in zip(events, events[1:]):
            assert earlier.time < later.time


@given(
    raw=st.lists(
        st.tuples(st.floats(0.0, 50.0), st.floats(0.1, 20.0)),
        min_size=1,
        max_size=4,
    ),
    workers=st.integers(1, 6),
    fraction=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_partitions_are_always_causally_valid(raw, workers, fraction, seed):
    # Lay the (gap, width) pairs out as guaranteed-disjoint windows.
    windows = []
    cursor = 0.0
    for gap, width in raw:
        begin = cursor + gap
        windows.append((begin, begin + width))
        cursor = begin + width
    model = ChurnModel(mean_uptime=10.0, seed=seed)
    worker_ids = [f"w{i}" for i in range(workers)]
    schedule = model.partitions(worker_ids, windows, fraction=fraction)
    for worker_id in worker_ids:
        events = schedule.events_for(worker_id)
        kinds = [event.kind for event in events]
        assert kinds == (["crash", "join"] * len(events))[: len(events)]
        assert len(events) % 2 == 0  # every partition the worker joins heals
        for crash, join in zip(events[::2], events[1::2]):
            assert crash.time < join.time
    # Timestamps are shared across members: only window boundaries appear.
    boundary_times = {time for window in windows for time in window}
    assert {event.time for event in schedule} <= boundary_times


# ------------------------------------------ exactly-once random aborts
@given(
    hit_id=st.integers(0, 23),
    seed=st.integers(0, 2**16),
    ordered=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_random_abort_points_deliver_exactly_the_hit(hit_id, seed, ordered):
    cell = MatrixCell(
        name=f"hyp-abort-{hit_id}",
        ordered=ordered,
        shards=1,
        pool=None,
        volunteers=3,
        inputs=24,
        seed=seed,
        base_cost=30.0,
        batch_size=2,
        hit_id=hit_id,
        abort_on_hit=True,
        task_chunk=120.0,
        drain_for=120.0,
        timeout=60.0,
    )
    cell_result = run_cell(cell)
    violations = verify_cell(cell_result)
    assert not violations, f"hit={hit_id} seed={seed}: {violations}"
    assert cell_result.aborted
    assert cell_result.outputs == [{"id": hit_id, "hit": True}]
