"""Unit tests for the per-worker throughput/utilisation metrics."""

from __future__ import annotations

import pytest

from repro.sim.metrics import MetricsCollector, WorkerMetrics


# ---------------------------------------------------------- WorkerMetrics
def test_worker_metrics_accumulate_and_timestamp():
    metrics = WorkerMetrics("w")
    metrics.record(timestamp=1.0, duration=0.5)
    metrics.record(timestamp=3.0, duration=0.25, items=4)
    assert metrics.items_processed == 5
    assert metrics.compute_time == pytest.approx(0.75)
    assert metrics.first_item_at == 1.0
    assert metrics.last_item_at == 3.0


def test_throughput_and_utilisation_guard_zero_windows():
    metrics = WorkerMetrics("w")
    metrics.record(timestamp=0.0, duration=10.0, items=5)
    assert metrics.throughput(0.0) == 0.0
    assert metrics.utilisation(-1.0) == 0.0
    assert metrics.throughput(2.5) == pytest.approx(2.0)
    # compute_time beyond the window caps at full utilisation
    assert metrics.utilisation(5.0) == 1.0
    assert metrics.utilisation(20.0) == pytest.approx(0.5)


# ------------------------------------------------------- MetricsCollector
def make_collector():
    collector = MetricsCollector()
    collector.start_window(0.0)
    collector.record_work("fast", timestamp=1.0, duration=0.2, items=6)
    collector.record_work("slow", timestamp=2.0, duration=0.8, items=2)
    collector.record_output(items=8)
    collector.end_window(4.0)
    return collector


def test_report_requires_a_closed_window():
    collector = MetricsCollector()
    collector.start_window(0.0)
    with pytest.raises(ValueError, match="end_window"):
        collector.report("app", "lan")


def test_report_reconciles_workers_and_output():
    report = make_collector().report("matrix_search", "lan")
    assert report.window == pytest.approx(4.0)
    assert report.per_worker_items == {"fast": 6, "slow": 2}
    assert report.total_items == 8
    assert report.per_worker_throughput == {
        "fast": pytest.approx(1.5),
        "slow": pytest.approx(0.5),
    }
    assert report.total_throughput == pytest.approx(2.0)
    # Shares are percentages and sum to 100 (paper Figure 4's y-axis).
    assert report.per_worker_share == {
        "fast": pytest.approx(75.0),
        "slow": pytest.approx(25.0),
    }
    assert sum(report.per_worker_share.values()) == pytest.approx(100.0)
    # "the total of all devices corresponded to the throughput observed at
    # the output of Pando" (section 5.1)
    assert report.output_items == report.total_items
    assert report.output_throughput == pytest.approx(report.total_throughput)


def test_disabled_collector_ignores_records():
    collector = MetricsCollector()
    collector.start_window(0.0)
    collector.end_window(1.0)  # end_window disables collection
    collector.record_work("late", timestamp=2.0, duration=0.1)
    collector.record_output()
    report = collector.report("app", "lan")
    assert report.total_items == 0
    assert report.output_items == 0
    assert report.per_worker_share == {}


def test_empty_window_yields_zero_rates_not_division_errors():
    collector = MetricsCollector()
    collector.start_window(5.0)
    collector.record_work("w", timestamp=5.0, duration=0.0, items=3)
    collector.end_window(5.0)  # zero-length window
    report = collector.report("app", "lan")
    assert report.total_throughput == 0.0
    assert report.output_throughput == 0.0
    assert report.per_worker_share == {"w": 0.0}


def test_as_dict_round_trips_report_fields():
    report = make_collector().report("matrix_search", "vpn")
    payload = report.as_dict()
    assert payload["application"] == "matrix_search"
    assert payload["setting"] == "vpn"
    assert payload["per_worker_items"] == {"fast": 6, "slow": 2}
    assert payload["output_items"] == 8
