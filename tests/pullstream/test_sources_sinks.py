"""Tests for the standard pull-stream sources and sinks."""

from __future__ import annotations

import pytest

from repro.errors import PandoError
from repro.pullstream import (
    DONE,
    collect,
    collect_sync,
    count,
    drain,
    drain_sync,
    empty,
    error,
    find,
    from_iterable,
    infinite,
    keys,
    on_end,
    once,
    pull,
    reduce,
    take,
    values,
)


class TestSources:
    def test_count_produces_one_to_n(self):
        assert collect_sync(count(5)) == [1, 2, 3, 4, 5]

    def test_count_zero_is_empty(self):
        assert collect_sync(count(0)) == []

    def test_values(self):
        assert collect_sync(values(["a", "b", "c"])) == ["a", "b", "c"]

    def test_values_empty(self):
        assert collect_sync(values([])) == []

    def test_once(self):
        assert collect_sync(once(42)) == [42]

    def test_keys(self):
        assert collect_sync(keys({"x": 1, "y": 2})) == ["x", "y"]

    def test_empty(self):
        assert collect_sync(empty()) == []

    def test_error_source_propagates(self):
        boom = ValueError("boom")
        result = pull(error(boom), collect())
        assert result.done
        assert result.end is boom
        with pytest.raises(ValueError):
            result.result()

    def test_from_iterable_is_lazy(self):
        pulled = []

        def generator():
            for index in range(100):
                pulled.append(index)
                yield index

        source = from_iterable(generator())
        result = pull(source, take(3), collect())
        assert result.result() == [0, 1, 2]
        # only the values actually requested were generated (plus none extra
        # beyond the take window)
        assert len(pulled) <= 4

    def test_from_iterable_generator_failure(self):
        def generator():
            yield 1
            raise RuntimeError("generator failed")

        result = pull(from_iterable(generator()), collect())
        assert isinstance(result.end, RuntimeError)

    def test_infinite_with_take(self):
        assert pull(infinite(), take(4), collect()).result() == [0, 1, 2, 3]

    def test_infinite_custom_generator(self):
        result = pull(infinite(lambda: "x"), take(3), collect()).result()
        assert result == ["x", "x", "x"]


class TestSinks:
    def test_collect(self):
        assert pull(count(3), collect()).result() == [1, 2, 3]

    def test_drain_counts_values(self):
        assert pull(count(7), drain()).result() == 7

    def test_drain_with_op(self):
        seen = []
        pull(count(3), drain(op=seen.append))
        assert seen == [1, 2, 3]

    def test_drain_op_false_aborts(self):
        seen = []

        def op(value):
            seen.append(value)
            return value < 3  # abort after 3

        result = pull(count(100), drain(op=op))
        assert result.done
        assert seen[-1] == 3

    def test_drain_sync(self):
        assert drain_sync(count(10)) == 10

    def test_reduce(self):
        assert pull(count(5), reduce(lambda acc, v: acc + v, 0)).result() == 15

    def test_reduce_initial(self):
        assert pull(values([]), reduce(lambda acc, v: acc + v, 100)).result() == 100

    def test_find(self):
        assert pull(count(100), find(lambda v: v > 10)).result() == 11

    def test_find_no_match(self):
        assert pull(count(5), find(lambda v: v > 10)).result() is None

    def test_on_end_callback(self):
        ends = []
        pull(count(3), on_end(ends.append))
        assert len(ends) == 1 and ends[0] is DONE

    def test_done_callbacks_fire(self):
        calls = []
        result = pull(count(2), collect(done=lambda end, items: calls.append(items)))
        assert calls == [[1, 2]]
        result.on_done(lambda r: calls.append("late"))
        assert calls[-1] == "late"

    def test_result_raises_before_done(self):
        from repro.pullstream.sinks import SinkResult

        pending = SinkResult()
        with pytest.raises(PandoError):
            pending.result()

    def test_large_synchronous_stream_no_recursion_error(self):
        # 100k synchronous values must not blow the recursion limit
        assert pull(count(100_000), drain()).result() == 100_000


class TestEagerPump:
    def test_late_async_answer_propagates_the_abort(self):
        """Regression: when an asynchronous answer arrived after
        ``closed_reason()`` became non-None, the pump dropped the value but
        returned without re-entering the loop — so the upstream never
        received the abort and stayed open forever."""
        from repro.pullstream import eager_pump

        aborts = []
        parked = []

        def upstream(end, cb):
            if end is not None:
                aborts.append(end)
                cb(DONE, None)
                return
            parked.append(cb)  # answer later, like a sim-clock channel

        closed = {"reason": None}
        seen = []
        eager_pump(
            upstream,
            on_value=seen.append,
            on_end=lambda end: seen.append(("end", end)),
            closed_reason=lambda: closed["reason"],
        )
        assert len(parked) == 1
        closed["reason"] = DONE           # endpoint closes mid-flight
        parked.pop()(None, "late value")  # the async answer lands afterwards
        assert seen == []                 # dropped, as before the fix
        assert aborts == [DONE]           # ...but the abort now propagates

    def test_late_answer_releases_a_lender_substream(self):
        """End-to-end shape of the same bug: a lender sub-stream drained by
        an eager pump whose endpoint dies while a borrow answer is in
        flight.  Without the abort, the sub-stream stayed open and its
        borrowed value was never re-lent."""
        from repro.core import StreamLender
        from repro.errors import WorkerCrashed
        from repro.pullstream import eager_pump, pushable

        source = pushable()
        lender = StreamLender()
        pull(source, lender, collect())
        box = []
        lender.lend_stream(lambda err, sub: box.append(sub))
        sub = box[0]
        closed = {"reason": None}
        eager_pump(
            sub.source,
            on_value=lambda value: None,
            on_end=lambda end: None,
            closed_reason=lambda: closed["reason"],
        )
        closed["reason"] = WorkerCrashed("w1")  # endpoint dies while parked
        source.push(1)  # the borrow answer arrives after the death
        assert sub.closed
        assert lender.outstanding == 0
        assert lender.relendable == 1  # the borrowed value is re-lendable
        assert lender.stats.substreams_failed == 1


class TestSinkAbortedFlag:
    """``SinkResult.aborted`` distinguishes a sink-initiated early abort
    (the trigger for cancellation fan-out) from a natural upstream end."""

    def test_find_hit_sets_aborted(self):
        result = pull(values([1, 2, 3, 4]), find(lambda v: v == 2))
        assert result.result() == 2
        assert result.aborted is True

    def test_find_without_match_is_not_aborted(self):
        result = pull(values([1, 3, 5]), find(lambda v: v == 2))
        assert result.result() is None
        assert result.aborted is False

    def test_drain_op_false_sets_aborted(self):
        result = pull(values([1, 2, 3]), drain(op=lambda v: v < 2))
        assert result.done
        assert result.aborted is True

    def test_collect_of_a_full_stream_is_not_aborted(self):
        result = pull(values([1, 2]), collect())
        assert result.result() == [1, 2]
        assert result.aborted is False

    def test_upstream_error_is_not_an_abort(self):
        from repro.pullstream import error

        result = pull(error(RuntimeError("boom")), drain())
        assert result.done
        assert result.aborted is False
