"""Tests for the standard pull-stream sources and sinks."""

from __future__ import annotations

import pytest

from repro.errors import PandoError
from repro.pullstream import (
    DONE,
    collect,
    collect_sync,
    count,
    drain,
    drain_sync,
    empty,
    error,
    find,
    from_iterable,
    infinite,
    keys,
    on_end,
    once,
    pull,
    reduce,
    take,
    values,
)


class TestSources:
    def test_count_produces_one_to_n(self):
        assert collect_sync(count(5)) == [1, 2, 3, 4, 5]

    def test_count_zero_is_empty(self):
        assert collect_sync(count(0)) == []

    def test_values(self):
        assert collect_sync(values(["a", "b", "c"])) == ["a", "b", "c"]

    def test_values_empty(self):
        assert collect_sync(values([])) == []

    def test_once(self):
        assert collect_sync(once(42)) == [42]

    def test_keys(self):
        assert collect_sync(keys({"x": 1, "y": 2})) == ["x", "y"]

    def test_empty(self):
        assert collect_sync(empty()) == []

    def test_error_source_propagates(self):
        boom = ValueError("boom")
        result = pull(error(boom), collect())
        assert result.done
        assert result.end is boom
        with pytest.raises(ValueError):
            result.result()

    def test_from_iterable_is_lazy(self):
        pulled = []

        def generator():
            for index in range(100):
                pulled.append(index)
                yield index

        source = from_iterable(generator())
        result = pull(source, take(3), collect())
        assert result.result() == [0, 1, 2]
        # only the values actually requested were generated (plus none extra
        # beyond the take window)
        assert len(pulled) <= 4

    def test_from_iterable_generator_failure(self):
        def generator():
            yield 1
            raise RuntimeError("generator failed")

        result = pull(from_iterable(generator()), collect())
        assert isinstance(result.end, RuntimeError)

    def test_infinite_with_take(self):
        assert pull(infinite(), take(4), collect()).result() == [0, 1, 2, 3]

    def test_infinite_custom_generator(self):
        result = pull(infinite(lambda: "x"), take(3), collect()).result()
        assert result == ["x", "x", "x"]


class TestSinks:
    def test_collect(self):
        assert pull(count(3), collect()).result() == [1, 2, 3]

    def test_drain_counts_values(self):
        assert pull(count(7), drain()).result() == 7

    def test_drain_with_op(self):
        seen = []
        pull(count(3), drain(op=seen.append))
        assert seen == [1, 2, 3]

    def test_drain_op_false_aborts(self):
        seen = []

        def op(value):
            seen.append(value)
            return value < 3  # abort after 3

        result = pull(count(100), drain(op=op))
        assert result.done
        assert seen[-1] == 3

    def test_drain_sync(self):
        assert drain_sync(count(10)) == 10

    def test_reduce(self):
        assert pull(count(5), reduce(lambda acc, v: acc + v, 0)).result() == 15

    def test_reduce_initial(self):
        assert pull(values([]), reduce(lambda acc, v: acc + v, 100)).result() == 100

    def test_find(self):
        assert pull(count(100), find(lambda v: v > 10)).result() == 11

    def test_find_no_match(self):
        assert pull(count(5), find(lambda v: v > 10)).result() is None

    def test_on_end_callback(self):
        ends = []
        pull(count(3), on_end(ends.append))
        assert len(ends) == 1 and ends[0] is DONE

    def test_done_callbacks_fire(self):
        calls = []
        result = pull(count(2), collect(done=lambda end, items: calls.append(items)))
        assert calls == [[1, 2]]
        result.on_done(lambda r: calls.append("late"))
        assert calls[-1] == "late"

    def test_result_raises_before_done(self):
        from repro.pullstream.sinks import SinkResult

        pending = SinkResult()
        with pytest.raises(PandoError):
            pending.result()

    def test_large_synchronous_stream_no_recursion_error(self):
        # 100k synchronous values must not blow the recursion limit
        assert pull(count(100_000), drain()).result() == 100_000
