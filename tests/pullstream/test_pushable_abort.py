"""Regression tests: a downstream abort must answer a parked Pushable read.

A consumer that parked a read (the buffer was empty, the producer had not
pushed yet) and then aborts — a find hit, a dying channel — used to leave
that parked callback unanswered forever: the abort path closed the stream
and answered only its own callback.  Every ask gets exactly one answer, and
the abort *is* that answer.
"""

from __future__ import annotations

import pytest

from repro.pullstream import DONE
from repro.pullstream.pushable import Pushable


class TestPushableAbortAnswersParkedRead:
    def test_parked_read_is_answered_on_done_abort(self):
        p = Pushable()
        answers = []
        p(None, lambda end, value: answers.append(("parked", end, value)))
        assert answers == []  # parked, waiting for the producer
        p(DONE, lambda end, value: answers.append(("abort", end, value)))
        assert answers == [("parked", DONE, None), ("abort", DONE, None)]

    def test_parked_read_is_answered_on_error_abort(self):
        p = Pushable()
        answers = []
        boom = RuntimeError("downstream died")
        p(None, lambda end, value: answers.append(("parked", end, value)))
        p(boom, lambda end, value: answers.append(("abort", end, value)))
        assert answers == [("parked", boom, None), ("abort", boom, None)]

    def test_each_callback_answered_exactly_once(self):
        p = Pushable()
        counts = {"parked": 0, "abort": 0}
        p(None, lambda end, value: counts.__setitem__("parked", counts["parked"] + 1))
        p(DONE, lambda end, value: counts.__setitem__("abort", counts["abort"] + 1))
        # Late producer activity must not re-answer anything.
        p.push("late value")
        p.end()
        assert counts == {"parked": 1, "abort": 1}

    def test_on_close_fires_once(self):
        closes = []
        p = Pushable(on_close=closes.append)
        p(None, lambda end, value: None)
        p(DONE, lambda end, value: None)
        assert closes == [DONE]

    def test_read_after_abort_reports_the_end(self):
        p = Pushable()
        p(None, lambda end, value: None)
        p(DONE, lambda end, value: None)
        answers = []
        p(None, lambda end, value: answers.append((end, value)))
        assert answers == [(DONE, None)]

    def test_abort_without_parked_read_unchanged(self):
        # The pre-existing path: buffered values dropped, abort answered.
        p = Pushable()
        p.push(1)
        p.push(2)
        answers = []
        p(DONE, lambda end, value: answers.append((end, value)))
        assert answers == [(DONE, None)]
        assert p.buffered == 0
        assert p.ended
