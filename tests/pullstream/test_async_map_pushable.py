"""Tests for async_map, pushable, duplex and cat modules."""

from __future__ import annotations


from repro.pullstream import (
    Pushable,
    async_map,
    cat,
    collect,
    count,
    drain,
    duplex_pair,
    error,
    pull,
    pushable,
    take,
    values,
)


class TestAsyncMap:
    def test_synchronous_callback(self):
        doubler = async_map(lambda v, cb: cb(None, v * 2))
        assert pull(count(4), doubler, collect()).result() == [2, 4, 6, 8]

    def test_deferred_callback(self):
        """The callback may fire later (e.g. from a scheduler)."""
        pending = []
        deferred = async_map(lambda v, cb: pending.append((v, cb)))
        result = pull(count(3), deferred, collect())
        assert not result.done
        while pending:
            value, cb = pending.pop(0)
            cb(None, value + 100)
        assert result.result() == [101, 102, 103]

    def test_error_from_function(self):
        def failing(value, cb):
            if value == 2:
                cb(RuntimeError("fail"), None)
            else:
                cb(None, value)

        result = pull(count(4), failing and async_map(failing), collect())
        assert isinstance(result.end, RuntimeError)

    def test_exception_from_function_is_caught(self):
        def raising(value, cb):
            raise ValueError("oops")

        result = pull(count(2), async_map(raising), collect())
        assert isinstance(result.end, ValueError)

    def test_double_callback_is_ignored(self):
        def double_cb(value, cb):
            cb(None, value)
            cb(None, value * 1000)  # must be ignored

        assert pull(count(3), async_map(double_cb), collect()).result() == [1, 2, 3]

    def test_ordering_preserved(self):
        assert pull(values(list(range(50))), async_map(lambda v, cb: cb(None, v)), collect()).result() == list(range(50))


class TestPushable:
    def test_push_then_read(self):
        source = pushable()
        source.push(1)
        source.push(2)
        source.end()
        assert pull(source, collect()).result() == [1, 2]

    def test_read_then_push(self):
        source = pushable()
        result = pull(source, collect())
        assert not result.done
        source.push("a")
        source.push("b")
        source.end()
        assert result.result() == ["a", "b"]

    def test_error_termination(self):
        source = pushable()
        result = pull(source, collect())
        source.push(1)
        source.error(RuntimeError("channel died"))
        assert isinstance(result.end, RuntimeError)
        assert result.value == [1]

    def test_push_after_end_is_dropped(self):
        source = pushable()
        source.end()
        source.push(99)
        assert pull(source, collect()).result() == []

    def test_downstream_abort_clears_buffer(self):
        source = pushable()
        source.push(1)
        source.push(2)
        result = pull(source, take(1), collect())
        assert result.result() == [1]
        assert source.ended

    def test_on_close_callback(self):
        closes = []
        source = pushable(on_close=closes.append)
        source.push(1)
        source.end()
        pull(source, drain())
        assert len(closes) == 1

    def test_buffered_property(self):
        source = Pushable()
        source.push(1)
        source.push(2)
        assert source.buffered == 2


class TestDuplexPair:
    def test_messages_cross_over(self):
        a, b = duplex_pair()
        received_at_b = pull(b.source, collect())
        a.sink(values([1, 2, 3]))
        assert received_at_b.result() == [1, 2, 3]

    def test_both_directions(self):
        a, b = duplex_pair()
        at_b = pull(b.source, collect())
        at_a = pull(a.source, collect())
        a.sink(values(["to-b"]))
        b.sink(values(["to-a"]))
        assert at_b.result() == ["to-b"]
        assert at_a.result() == ["to-a"]

    def test_error_propagates_across(self):
        a, b = duplex_pair()
        at_b = pull(b.source, collect())
        a.sink(error(RuntimeError("upstream broke")))
        assert isinstance(at_b.end, RuntimeError)


class TestCat:
    def test_concatenates_sources(self):
        assert pull(cat([count(2), values(["a"]), count(3)]), collect()).result() == [1, 2, "a", 1, 2, 3]

    def test_empty_list(self):
        assert pull(cat([]), collect()).result() == []

    def test_error_in_middle_aborts_rest(self):
        boom = RuntimeError("boom")
        result = pull(cat([count(2), error(boom), count(3)]), collect())
        assert result.end is boom
        assert result.value == [1, 2]

    def test_downstream_abort(self):
        assert pull(cat([count(10), count(10)]), take(3), collect()).result() == [1, 2, 3]
