"""Tests for the pull-stream protocol primitives and checker."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.pullstream import DONE, check_protocol, count, is_done, is_end, is_error, values
from repro.pullstream.protocol import EndMarker


class TestEndMarker:
    def test_done_is_singleton(self):
        assert EndMarker() is DONE

    def test_done_is_truthy(self):
        assert bool(DONE) is True

    def test_repr(self):
        assert repr(DONE) == "DONE"


class TestPredicates:
    def test_is_done(self):
        assert is_done(DONE)
        assert not is_done(None)
        assert not is_done(ValueError("x"))

    def test_is_error(self):
        assert is_error(ValueError("x"))
        assert not is_error(DONE)
        assert not is_error(None)

    def test_is_end(self):
        assert is_end(DONE)
        assert is_end(ValueError("x"))
        assert not is_end(None)


class TestProtocolChecker:
    def test_passes_through_values(self):
        checked = check_protocol(count(3))
        seen = []

        def step(expected_end, expected_value):
            checked(None, lambda end, value: seen.append((end, value)))

        for _ in range(4):
            step(None, None)
        assert seen[0] == (None, 1)
        assert seen[1] == (None, 2)
        assert seen[2] == (None, 3)
        assert seen[3][0] is DONE

    def test_records_trace(self):
        checked = check_protocol(values([1]))
        checked(None, lambda end, value: None)
        assert ("request", None) in checked.trace
        assert any(event[0] == "answer" for event in checked.trace)

    def test_detects_concurrent_asks(self):
        def never_answers(end, cb):
            pass  # a broken source that never calls back

        checked = check_protocol(never_answers)
        checked(None, lambda end, value: None)
        with pytest.raises(ProtocolError):
            checked(None, lambda end, value: None)

    def test_detects_double_answer(self):
        def answers_twice(end, cb):
            cb(None, 1)
            cb(None, 2)

        checked = check_protocol(answers_twice)
        with pytest.raises(ProtocolError):
            checked(None, lambda end, value: None)

    def test_detects_value_after_termination(self):
        state = {"calls": 0}

        def bad_source(end, cb):
            state["calls"] += 1
            if state["calls"] == 1:
                cb(DONE, None)
            else:
                cb(None, 42)  # violates: value after done

        checked = check_protocol(bad_source)
        checked(None, lambda end, value: None)
        with pytest.raises(ProtocolError):
            checked(None, lambda end, value: None)

    def test_abort_allowed_while_waiting(self):
        """An abort may be issued even while an ask is pending."""
        pending = {}

        def slow_source(end, cb):
            if end is not None:
                cb(DONE, None)
                return
            pending["cb"] = cb  # answer later

        checked = check_protocol(slow_source)
        checked(None, lambda end, value: None)
        # abort does not raise even though the ask is still pending
        checked(DONE, lambda end, value: None)
