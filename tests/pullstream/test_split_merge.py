"""Tests for the round-robin splitter/joiner pair (multi-master support)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.pullstream import (
    DONE,
    collect,
    merge_ordered,
    merge_unordered,
    pull,
    pushable,
    split,
    values,
)


def ask(source):
    """Issue one ask and return the (end, value) answer (must be sync)."""
    box = []
    source(None, lambda end, value: box.append((end, value)))
    assert box, "expected a synchronous answer"
    return box[0]


def abort(source, end=DONE):
    box = []
    source(end, lambda e, v: box.append((e, v)))
    return box[0]


class TestSplit:
    def test_round_robin_assignment(self):
        branches = split(values(list(range(9))), 3)
        assert [ask(branches[0])[1] for _ in range(3)] == [0, 3, 6]
        assert [ask(branches[1])[1] for _ in range(3)] == [1, 4, 7]
        assert [ask(branches[2])[1] for _ in range(3)] == [2, 5, 8]
        for branch in branches:
            end, _ = ask(branch)
            assert end is DONE

    def test_lazy_until_a_branch_asks(self):
        reads = []

        def counting(end, cb):
            reads.append(end)
            values([1, 2, 3, 4])(end, cb)

        branches = split(counting, 2)
        assert reads == []
        assert ask(branches[0])[1] == 1
        assert len(reads) == 1

    def test_values_for_idle_branches_are_buffered(self):
        branches = split(values(list(range(6))), 2)
        # Branch 0 drains its half first; the odd values buffer for branch 1.
        assert [ask(branches[0])[1] for _ in range(3)] == [0, 2, 4]
        assert branches.values_read >= 5
        assert [ask(branches[1])[1] for _ in range(3)] == [1, 3, 5]

    def test_termination_reaches_every_branch(self):
        branches = split(values([0, 1]), 2)
        assert ask(branches[0]) == (None, 0)
        assert ask(branches[1]) == (None, 1)
        end0, _ = ask(branches[0])
        end1, _ = ask(branches[1])
        assert end0 is DONE and end1 is DONE
        assert branches.upstream_ended
        assert branches.values_read == 2

    def test_error_termination_propagates(self):
        boom = RuntimeError("boom")

        def erroring(end, cb):
            cb(boom, None)

        branches = split(erroring, 2)
        assert ask(branches[0])[0] is boom
        assert ask(branches[1])[0] is boom
        assert branches.upstream_end is boom

    def test_parked_ask_is_answered_on_upstream_end(self):
        source = pushable()
        branches = split(source, 2)
        answers = []
        branches[1](None, lambda end, value: answers.append((end, value)))
        assert answers == []  # parked: value 0 belongs to branch 0
        source.push(10)
        source.end()
        assert answers == [(DONE, None)]
        # the skipped value 0 is still buffered for branch 0
        assert ask(branches[0]) == (None, 10)

    def test_on_end_hook_fires_once(self):
        ends = []
        branches = split(values([0]), 2, on_end=ends.append)
        assert ask(branches[0]) == (None, 0)
        assert ask(branches[0])[0] is DONE
        assert ask(branches[1])[0] is DONE
        assert ends == [DONE]

    def test_branch_abort_aborts_upstream_and_siblings(self):
        upstream_aborts = []
        inner = values(list(range(10)))

        def observed(end, cb):
            if end is not None:
                upstream_aborts.append(end)
            inner(end, cb)

        branches = split(observed, 2)
        assert ask(branches[0]) == (None, 0)
        end, _ = abort(branches[0])
        assert end is DONE
        assert upstream_aborts == [DONE]
        assert ask(branches[1])[0] is DONE

    def test_branch_error_abort_reaches_siblings(self):
        boom = RuntimeError("branch failed")
        branches = split(values([1, 2, 3, 4]), 2)
        assert ask(branches[0]) == (None, 1)
        abort(branches[0], boom)
        assert ask(branches[1])[0] is boom

    def test_concurrent_branch_ask_is_a_protocol_error(self):
        source = pushable()
        branches = split(source, 2)
        branches[1](None, lambda end, value: None)  # parks (value 0 is branch 0's)
        end, _ = ask(branches[1])
        assert isinstance(end, ProtocolError)

    def test_requires_at_least_one_branch(self):
        with pytest.raises(ValueError):
            split(values([1]), 0)


class TestSplitMaxBuffer:
    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            split(values([1]), 2, max_buffer=0)

    def test_stalled_branch_backlog_is_bounded(self):
        """Regression for the unbounded-buffering follow-on: while branch 0
        drains the whole input, the stalled branch 1 never buffers more than
        ``max_buffer`` values — the pump parks instead."""
        reads = []
        inner = values(list(range(20)))

        def counting(end, cb):
            if end is None:
                reads.append(len(reads))
            inner(end, cb)

        branches = split(counting, 2, max_buffer=2)
        got = []
        answers = []
        # Branch 0 asks for its full half; once branch 1 is 2 values behind
        # the pump parks, so branch 0's later asks park too (back-pressure).
        for _ in range(10):
            branches[0](None, lambda end, value: (answers.append(end),
                                                  got.append(value)))
        assert branches.buffer_depths[1] <= 2
        assert branches.buffer_depths == [0, 2]
        # Values 0, 2, 4 reached branch 0 before the pump parked on value 5
        # (branch 1's third buffered value); the remaining asks are parked.
        assert got[:3] == [0, 2, 4]
        assert len([e for e in answers if e is None]) == 3
        assert len(reads) == 5  # 0,1,2,3,4 read; 5 would overflow branch 1

    def test_slow_branch_resuming_releases_the_parked_pump(self):
        branches = split(values(list(range(12))), 2, max_buffer=1)
        fast_answers = []
        slow_answers = []

        def fast_cb(end, value):
            fast_answers.append((end, value))

        def slow_cb(end, value):
            slow_answers.append((end, value))

        def delivered(answers):
            return [value for end, value in answers if end is None]

        for _ in range(3):
            branches[0](None, fast_cb)
        # Two values delivered; the third ask parked (reading value 3 would
        # overflow branch 1's one-slot buffer).
        assert delivered(fast_answers) == [0, 2]
        assert branches.buffer_depths == [0, 1]
        # The slow branch drains its buffer: the parked pump resumes and the
        # outstanding fast ask is answered.
        branches[1](None, slow_cb)
        assert delivered(slow_answers) == [1]
        assert delivered(fast_answers) == [0, 2, 4]
        # Alternating drains complete the whole input under the cap.
        for _ in range(8):
            branches[1](None, slow_cb)
            branches[0](None, fast_cb)
            assert max(branches.buffer_depths) <= 1
        assert delivered(fast_answers) == [0, 2, 4, 6, 8, 10]
        assert delivered(slow_answers) == [1, 3, 5, 7, 9, 11]

    def test_waiting_branch_never_counts_against_its_cap(self):
        """A branch that is asking receives its value directly, so the cap
        only parks the pump for values that would actually buffer."""
        branches = split(values(list(range(6))), 2, max_buffer=1)
        merged = merge_ordered(branches)
        assert pull(merged, collect()).result() == list(range(6))

    def test_abort_clears_bounded_buffers(self):
        branches = split(values(list(range(10))), 2, max_buffer=2)
        assert [ask(branches[0])[1] for _ in range(3)] == [0, 2, 4]
        assert branches.buffer_depths == [0, 2]
        abort(branches[0])
        assert branches.buffer_depths == [0, 0]
        assert ask(branches[1])[0] is DONE

    def test_merge_unordered_respects_the_cap(self):
        """Under an unordered merge the fast branch can run ahead, but the
        splitter still bounds the slow branch's backlog at the cap."""
        branches = split(values(list(range(16))), 2, max_buffer=3)
        depths = []
        merged = merge_unordered(branches)

        def observing(end, cb):
            merged(end, cb)
            depths.append(branches.buffer_depths[:])

        assert sorted(pull(observing, collect()).result()) == list(range(16))
        assert max(depth for pair in depths for depth in pair) <= 3


class TestMergeUnordered:
    def test_identity_on_synchronous_branches(self):
        branches = split(values(list(range(10))), 2)
        merged = merge_unordered(branches)
        result = pull(merged, collect()).result()
        assert sorted(result) == list(range(10))

    def test_delivers_in_completion_order(self):
        """The first ready source answers first, regardless of turn order."""
        slow_cbs = []

        def slow(end, cb):
            if end is not None:
                cb(DONE, None)
                return
            slow_cbs.append(cb)

        fast_values = values(["f1", "f2"])
        merged = merge_unordered([slow, fast_values])
        assert ask(merged) == (None, "f1")
        assert ask(merged) == (None, "f2")
        # Now only the slow source remains; its parked answer arrives late.
        got = []
        merged(None, lambda end, value: got.append((end, value)))
        assert got == []
        assert len(slow_cbs) >= 1
        slow_cbs[0](None, "s1")
        assert got == [(None, "s1")]

    def test_done_from_one_source_does_not_end_the_merge(self):
        merged = merge_unordered([values([1]), values([2, 3])])
        seen = [ask(merged)[1] for _ in range(3)]
        assert sorted(seen) == [1, 2, 3]
        assert ask(merged)[0] is DONE

    def test_extra_answers_buffer_for_later_asks(self):
        """The fan-out can leave asks in flight on several sources; a late
        answer with no downstream ask waiting buffers and satisfies the next
        ask without re-asking."""
        parked = []

        def slow(end, cb):
            if end is not None:
                cb(DONE, None)
                return
            parked.append(cb)

        merged = merge_unordered([slow, values(["f"])])
        got = []
        merged(None, lambda end, value: got.append(value))
        # slow parked its ask; the fast source answered the downstream ask.
        assert got == ["f"]
        assert len(parked) == 1
        # The slow source answers late: the value buffers and the next
        # downstream ask is satisfied without another source ask.
        parked[0](None, "s")
        assert ask(merged) == (None, "s")
        assert len(parked) == 1

    def test_error_from_one_source_aborts_the_others(self):
        boom = RuntimeError("shard died")
        aborted = []

        def failing(end, cb):
            if end is not None:
                cb(end, None)
                return
            cb(boom, None)

        def healthy(end, cb):
            if end is not None:
                aborted.append(end)
                cb(DONE, None)
                return
            # parks: never answers a value ask

        merged = merge_unordered([healthy, failing])
        end, _ = ask(merged)
        assert end is boom
        assert aborted == [boom]
        assert ask(merged)[0] is boom  # terminal thereafter

    def test_downstream_abort_reaches_every_source(self):
        aborts = []

        def make(name):
            def source(end, cb):
                if end is not None:
                    aborts.append(name)
                    cb(DONE, None)
                    return
                cb(None, name)

            return source

        merged = merge_unordered([make("a"), make("b")])
        assert ask(merged)[1] in ("a", "b")
        assert abort(merged)[0] is DONE
        assert sorted(aborts) == ["a", "b"]

    def test_total_short_circuits_a_dead_source(self):
        state = {"total": None}
        parked = []
        closed = []

        def dead(end, cb):
            if end is not None:
                closed.append(end)
                cb(DONE, None)
                return
            parked.append(cb)  # never answers, like a shard with no workers

        merged = merge_unordered([values([7]), dead], total=lambda: state["total"])
        assert ask(merged) == (None, 7)
        answers = []
        merged(None, lambda end, value: answers.append((end, value)))
        assert answers == []
        state["total"] = 1
        merged.recheck()
        assert answers == [(DONE, None)]
        assert closed == [DONE]  # the dead straggler is shut down
        assert ask(merged)[0] is DONE

    def test_total_short_circuit_reports_the_upstream_error(self):
        boom = RuntimeError("input failed")
        closed = []

        def dead(end, cb):
            if end is not None:
                closed.append(end)
                cb(end, None)

        merged = merge_unordered(
            [values([0]), dead], total=lambda: 1, total_end=lambda: boom
        )
        assert ask(merged) == (None, 0)
        assert ask(merged)[0] is boom
        assert closed == [boom]

    def test_concurrent_ask_is_a_protocol_error(self):
        def never(end, cb):
            if end is not None:
                cb(DONE, None)

        merged = merge_unordered([never])
        merged(None, lambda end, value: None)
        end, _ = ask(merged)
        assert isinstance(end, ProtocolError)

    def test_requires_at_least_one_source(self):
        with pytest.raises(ValueError):
            merge_unordered([])


class TestMergeOrdered:
    def test_interleaves_round_robin(self):
        branches = split(values(list(range(10))), 2)
        merged = merge_ordered(branches)
        assert pull(merged, collect()).result() == list(range(10))

    def test_three_way_global_order(self):
        branches = split(values(list(range(11))), 3)
        merged = merge_ordered(branches)
        assert pull(merged, collect()).result() == list(range(11))

    def test_done_from_one_source_ends_the_merge(self):
        merged = merge_ordered([values([1]), values([2])])
        assert ask(merged) == (None, 1)
        assert ask(merged) == (None, 2)
        assert ask(merged)[0] is DONE

    def test_error_from_one_source_aborts_the_others(self):
        boom = RuntimeError("shard died")
        aborted = []

        def failing(end, cb):
            cb(boom, None)

        def healthy(end, cb):
            if end is not None:
                aborted.append(end)
                cb(DONE, None)
                return
            cb(None, "unused")

        merged = merge_ordered([failing, healthy])
        end, _ = ask(merged)
        assert end is boom
        assert aborted == [boom]
        assert ask(merged)[0] is boom  # terminal thereafter

    def test_downstream_abort_reaches_every_source(self):
        aborts = []

        def make(name):
            def source(end, cb):
                if end is not None:
                    aborts.append(name)
                    cb(DONE, None)
                    return
                cb(None, name)

            return source

        merged = merge_ordered([make("a"), make("b")])
        assert ask(merged) == (None, "a")
        assert abort(merged)[0] is DONE
        assert sorted(aborts) == ["a", "b"]

    def test_total_short_circuit_reports_the_upstream_error(self):
        """Regression: the short-circuit finished with DONE unconditionally,
        presenting the partial results of an errored input as a clean
        completion."""
        boom = RuntimeError("input failed")
        aborted = []

        def dead(end, cb):
            if end is not None:
                aborted.append(end)
                cb(end, None)

        merged = merge_ordered(
            [values([0]), dead], total=lambda: 1, total_end=lambda: boom
        )
        assert ask(merged) == (None, 0)
        assert ask(merged)[0] is boom
        assert aborted == [boom]  # the idle source is shut down with the error

    def test_total_short_circuits_without_asking(self):
        asks = []

        def never(end, cb):
            asks.append(end)  # would park forever on a real dead shard

        merged = merge_ordered([values([7]), never], total=lambda: 1)
        assert ask(merged) == (None, 7)
        assert ask(merged)[0] is DONE
        assert asks == []

    def test_recheck_abandons_a_parked_ask(self):
        """A joiner parked on a source that will never answer is released
        when the total becomes known (the dead-shard scenario)."""
        state = {"total": None}
        parked = []

        def dead(end, cb):
            if end is not None:
                cb(DONE, None)
                return
            parked.append(cb)  # never answers a value ask

        merged = merge_ordered([values([0]), dead], total=lambda: state["total"])
        assert ask(merged) == (None, 0)
        answers = []
        merged(None, lambda end, value: answers.append((end, value)))
        assert answers == [] and len(parked) == 1
        state["total"] = 1
        merged.recheck()
        assert answers == [(DONE, None)]
        # the abandoned source ask stays unanswered without consequence
        assert ask(merged)[0] is DONE

    def test_concurrent_ask_is_a_protocol_error(self):
        def never(end, cb):
            if end is not None:
                cb(DONE, None)

        merged = merge_ordered([never])
        merged(None, lambda end, value: None)
        end, _ = ask(merged)
        assert isinstance(end, ProtocolError)

    def test_requires_at_least_one_source(self):
        with pytest.raises(ValueError):
            merge_ordered([])
