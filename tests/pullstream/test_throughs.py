"""Tests for pull-stream transformers."""

from __future__ import annotations

import pytest

from repro.pullstream import (
    batch,
    collect,
    count,
    filter_,
    filter_not,
    flatten,
    map_,
    non_unique,
    pull,
    take,
    tap,
    through,
    unbatch,
    unique,
    values,
)
from repro.pullstream.pull import compose


class TestMap:
    def test_map_transforms_values(self):
        assert pull(count(4), map_(lambda v: v * 10), collect()).result() == [10, 20, 30, 40]

    def test_map_error_propagates(self):
        def explode(value):
            if value == 3:
                raise RuntimeError("bad value")
            return value

        result = pull(count(5), map_(explode), collect())
        assert isinstance(result.end, RuntimeError)

    def test_map_composes(self):
        result = pull(
            count(5), map_(lambda v: v + 1), map_(lambda v: v * 2), collect()
        ).result()
        assert result == [4, 6, 8, 10, 12]


class TestFilter:
    def test_filter_keeps_matching(self):
        assert pull(count(10), filter_(lambda v: v % 2 == 0), collect()).result() == [2, 4, 6, 8, 10]

    def test_filter_not(self):
        assert pull(count(6), filter_not(lambda v: v % 2 == 0), collect()).result() == [1, 3, 5]

    def test_filter_everything(self):
        assert pull(count(5), filter_(lambda v: False), collect()).result() == []

    def test_filter_predicate_error(self):
        def bad(value):
            raise KeyError("nope")

        result = pull(count(3), filter_(bad), collect())
        assert isinstance(result.end, KeyError)


class TestTake:
    def test_take_n(self):
        assert pull(count(100), take(3), collect()).result() == [1, 2, 3]

    def test_take_more_than_available(self):
        assert pull(count(2), take(10), collect()).result() == [1, 2]

    def test_take_zero(self):
        assert pull(count(5), take(0), collect()).result() == []

    def test_take_while_predicate(self):
        assert pull(count(10), take(lambda v: v < 4), collect()).result() == [1, 2, 3]

    def test_take_while_last(self):
        assert pull(count(10), take(lambda v: v < 4, last=True), collect()).result() == [1, 2, 3, 4]

    def test_take_aborts_upstream(self):
        """take() must abort the upstream so lazy sources stop producing."""
        produced = []

        def generator():
            index = 0
            while True:
                produced.append(index)
                yield index
                index += 1

        from repro.pullstream import from_iterable

        pull(from_iterable(generator()), take(5), collect())
        assert len(produced) <= 6


class TestUniqueAndFlatten:
    def test_unique(self):
        assert pull(values([1, 2, 2, 3, 1, 4]), unique(), collect()).result() == [1, 2, 3, 4]

    def test_unique_with_key(self):
        items = [{"k": 1}, {"k": 1}, {"k": 2}]
        result = pull(values(items), unique(key=lambda d: d["k"]), collect()).result()
        assert result == [{"k": 1}, {"k": 2}]

    def test_non_unique(self):
        assert pull(values([1, 2, 2, 3, 1]), non_unique(), collect()).result() == [2, 1]

    def test_flatten(self):
        assert pull(values([[1, 2], [3], [], [4, 5]]), flatten(), collect()).result() == [1, 2, 3, 4, 5]

    def test_flatten_non_iterable_passthrough(self):
        assert pull(values([1, [2, 3]]), flatten(), collect()).result() == [1, 2, 3]


class TestBatch:
    def test_batch_groups_values(self):
        assert pull(count(7), batch(3), collect()).result() == [[1, 2, 3], [4, 5, 6], [7]]

    def test_batch_exact_multiple(self):
        assert pull(count(4), batch(2), collect()).result() == [[1, 2], [3, 4]]

    def test_batch_roundtrip_with_unbatch(self):
        assert pull(count(10), batch(4), unbatch(), collect()).result() == list(range(1, 11))

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            batch(0)

    def test_batch_of_one(self):
        assert pull(count(3), batch(1), collect()).result() == [[1], [2], [3]]


class TestThroughAndTap:
    def test_through_observes_without_modifying(self):
        seen, ends = [], []
        result = pull(
            count(3), through(on_value=seen.append, on_end=ends.append), collect()
        ).result()
        assert result == [1, 2, 3]
        assert seen == [1, 2, 3]
        assert len(ends) == 1

    def test_tap(self):
        seen = []
        assert pull(count(2), tap(seen.append), collect()).result() == [1, 2]
        assert seen == [1, 2]


class TestCompose:
    def test_compose_throughs(self):
        double_evens = compose(filter_(lambda v: v % 2 == 0), map_(lambda v: v * 2))
        assert pull(count(6), double_evens, collect()).result() == [4, 8, 12]

    def test_pull_without_source_returns_through(self):
        partial = pull(map_(lambda v: v + 1), filter_(lambda v: v > 2))
        assert pull(count(4), partial, collect()).result() == [3, 4, 5]


class TestBatchingFrames:
    """Wire framing: batching / unbatching / map_batches."""

    def test_full_frames_on_synchronous_source(self):
        from repro.net.serialization import Batch
        from repro.pullstream import batching

        frames = pull(values(list(range(10))), batching(4), collect()).result()
        assert all(isinstance(frame, Batch) for frame in frames)
        assert [list(frame) for frame in frames] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_roundtrip_through_unbatching(self):
        from repro.pullstream import batching, unbatching

        result = pull(
            values(list(range(23))), batching(5), unbatching(), collect()
        ).result()
        assert result == list(range(23))

    def test_list_valued_elements_survive_roundtrip(self):
        """Unlike unbatch(), unbatching() must not flatten list *values*."""
        from repro.pullstream import batching, unbatching

        items = [[1, 2], [3], [], [4, 5, 6]]
        result = pull(values(items), batching(3), unbatching(), collect()).result()
        assert result == items

    def test_partial_frame_flushes_when_upstream_blocks(self):
        """A value must never be trapped in the framer while upstream parks.

        With a push-based upstream every ask goes asynchronous, so each value
        is flushed as a one-element frame the moment the next ask parks —
        framing degrades gracefully instead of deadlocking (the StreamLender
        waitOnOthers scenario).
        """
        from repro.pullstream import batching, pushable

        upstream = pushable()
        sink = pull(upstream, batching(4), collect())
        upstream.push(1)
        upstream.push(2)
        upstream.push(3)
        upstream.end()
        assert [list(frame) for frame in sink.result()] == [[1], [2], [3]]

    def test_invalid_size(self):
        from repro.pullstream import batching

        with pytest.raises(ValueError):
            batching(0)

    def test_error_propagates(self):
        from repro.pullstream import batching, unbatching
        from repro.pullstream import error as error_source

        result = pull(error_source(RuntimeError("boom")), batching(2), collect())
        assert isinstance(result.end, RuntimeError)

    def test_map_batches_applies_per_element(self):
        from repro.net.serialization import Batch
        from repro.pullstream import batching, map_batches, unbatching

        result = pull(
            values(list(range(9))),
            batching(4),
            map_batches(lambda v, cb: cb(None, v * 2)),
            unbatching(),
            collect(),
        ).result()
        assert result == [v * 2 for v in range(9)]

    def test_map_batches_passes_bare_values(self):
        from repro.pullstream import map_batches

        result = pull(
            values([1, 2, 3]), map_batches(lambda v, cb: cb(None, v + 1)), collect()
        ).result()
        assert result == [2, 3, 4]

    def test_map_batches_error_fails_stream(self):
        from repro.pullstream import batching, map_batches

        def failing(value, cb):
            if value == 2:
                cb(RuntimeError("bad"), None)
            else:
                cb(None, value)

        result = pull(values([1, 2, 3]), batching(2), map_batches(failing), collect())
        assert isinstance(result.end, RuntimeError)
