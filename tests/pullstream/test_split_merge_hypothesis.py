"""Property-based tests of the split/merge layer (hypothesis).

Mirror of ``tests/core/test_lender_hypothesis.py`` for the splitter/joiner
pair: randomised executions over random inputs, branch counts, answer
interleavings, buffer caps and abort points, checking on every one of them
that

* ``split`` + ``merge_ordered`` is the **identity** (global input order,
  exactly once);
* ``split`` + ``merge_unordered`` is a **permutation** with exactly-once
  delivery;
* with ``max_buffer=N`` no branch ever buffers more than N values;
* a downstream abort delivers a distinct prefix/subset of the input, aborts
  the upstream exactly once, and leaves every branch buffer empty.

The asynchrony that generates interesting interleavings comes from a *relay*
inserted between each branch and the joiner: the relay forwards asks
immediately but holds every answer until the randomised driver releases it,
modelling workers that answer at arbitrary times relative to one another.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.pullstream import DONE, is_error, merge_ordered, merge_unordered, split, values


class Relay:
    """Asynchronous pass-through: holds each upstream answer until released."""

    def __init__(self, branch):
        self.branch = branch
        self.held = None   # (end, value) answered upstream, not yet released
        self.cb = None     # downstream callback awaiting the release

    def source(self, end, cb):
        if end is not None:
            self.held = None
            self.cb = None
            self.branch(end, cb)
            return
        self.cb = cb
        self.branch(None, self._on_answer)

    def _on_answer(self, end, value):
        self.held = (end, value)

    def release(self):
        if self.held is None or self.cb is None:
            return
        (end, value), self.held = self.held, None
        cb, self.cb = self.cb, None
        cb(end, value)


def run_schedule(n_values, n_branches, ordered, max_buffer, abort_at, seed):
    """Run one randomised split/merge execution and return its observations."""
    rng = random.Random(seed)
    inputs = list(range(n_values))
    upstream_ends = []
    inner = values(inputs)

    def observed(end, cb):
        if end is not None:
            upstream_ends.append(end)
        inner(end, cb)

    branches = split(observed, n_branches, max_buffer=max_buffer)
    relays = [Relay(branch) for branch in branches]
    join = merge_ordered if ordered else merge_unordered
    merged = join([relay.source for relay in relays])

    outputs = []
    state = {"end": None, "asking": False}
    depth_violations = []

    def check_depths():
        if max_buffer is not None:
            if any(depth > max_buffer for depth in branches.buffer_depths):
                depth_violations.append(list(branches.buffer_depths))

    def ask_once():
        if state["asking"] or state["end"] is not None:
            return

        def answer(end, value):
            state["asking"] = False
            if end is not None:
                state["end"] = end
            else:
                outputs.append(value)

        state["asking"] = True
        merged(None, answer)

    def abort_now():
        if state["end"] is not None:
            return
        box = []
        merged(DONE, lambda end, value: box.append(end))
        # the abort answer is synchronous and terminal
        assert box and not is_error(box[0])
        state["end"] = box[0]

    aborted = False
    for _step in range(40 * (n_values + 1) * (n_branches + 1)):
        if state["end"] is not None:
            break
        if abort_at is not None and len(outputs) >= abort_at:
            abort_now()
            aborted = True
            break
        if rng.random() < 0.5:
            ask_once()
        else:
            rng.choice(relays).release()
        check_depths()

    # Mop-up so every run terminates: keep asking and releasing everything.
    for _step in range(20 * (n_values + 1) * (n_branches + 1)):
        if state["end"] is not None:
            break
        ask_once()
        for relay in relays:
            relay.release()
        check_depths()

    return {
        "inputs": inputs,
        "outputs": outputs,
        "end": state["end"],
        "aborted": aborted,
        "upstream_ends": upstream_ends,
        "buffer_depths": branches.buffer_depths,
        "depth_violations": depth_violations,
    }


COMMON = dict(
    n_values=st.integers(min_value=0, max_value=24),
    n_branches=st.integers(min_value=1, max_value=4),
    max_buffer=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=60, deadline=None)
@given(**COMMON)
def test_split_merge_ordered_is_the_identity(n_values, n_branches, max_buffer, seed):
    run = run_schedule(n_values, n_branches, True, max_buffer, None, seed)
    assert run["end"] is DONE, "the composition must terminate cleanly"
    assert run["outputs"] == run["inputs"]
    assert run["depth_violations"] == []
    assert run["upstream_ends"] == []  # natural end, never aborted


@settings(max_examples=60, deadline=None)
@given(**COMMON)
def test_split_merge_unordered_is_a_permutation(n_values, n_branches, max_buffer, seed):
    run = run_schedule(n_values, n_branches, False, max_buffer, None, seed)
    assert run["end"] is DONE
    # Exactly-once: a permutation of the input, no loss, no duplication.
    assert sorted(run["outputs"]) == run["inputs"]
    assert run["depth_violations"] == []
    assert run["upstream_ends"] == []


@settings(max_examples=60, deadline=None)
@given(
    ordered=st.booleans(),
    abort_at=st.integers(min_value=0, max_value=10),
    **COMMON,
)
def test_abort_points_never_duplicate_or_wedge(
    ordered, abort_at, n_values, n_branches, max_buffer, seed
):
    run = run_schedule(n_values, n_branches, ordered, max_buffer, abort_at, seed)
    assert run["end"] is not None, "the run must terminate"
    assert not is_error(run["end"])
    outputs = run["outputs"]
    if run["aborted"]:
        # Every delivered value is distinct and came from the input ...
        assert len(set(outputs)) == len(outputs)
        assert set(outputs) <= set(run["inputs"])
        if ordered:
            # ... and in ordered mode the delivery is an exact prefix.
            assert outputs == run["inputs"][: len(outputs)]
        # The upstream saw at most one abort (none when it had already been
        # fully read and ended), and the abort cleared every branch buffer.
        assert len(run["upstream_ends"]) <= 1
        assert run["buffer_depths"] == [0] * n_branches
    else:
        # The stream drained before reaching the abort point.
        if ordered:
            assert outputs == run["inputs"]
        else:
            assert sorted(outputs) == run["inputs"]
    assert run["depth_violations"] == []
