"""Tests for the application implementations (paper section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    ArxivTaggingApplication,
    CollatzApplication,
    CryptoMiningApplication,
    GridWorld,
    ImageProcessingApplication,
    ImageStore,
    LenderTestApplication,
    MiningMonitor,
    MLAgentApplication,
    QLearningAgent,
    RaytraceApplication,
    SAMPLE_PAPERS,
    SimulatedTagger,
    assemble_animation,
    box_blur,
    collatz_steps,
    hash_attempt,
    meets_difficulty,
    registry,
    render_scene,
    run_random_execution,
    synthesize_tile,
)


def run_process(app, value):
    """Run app.process synchronously and return (err, result)."""
    outcome = {}
    app.process(value, lambda err, result=None: outcome.update(err=err, result=result))
    return outcome["err"], outcome["result"]


class TestRegistry:
    def test_all_paper_applications_registered(self):
        for name in ("collatz", "crypto", "lender_test", "raytrace", "imageproc",
                     "ml_agent", "arxiv"):
            assert name in registry

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError):
            registry.create("quantum-folding")


class TestCollatz:
    def test_known_step_counts(self):
        assert collatz_steps(1) == 0
        assert collatz_steps(2) == 1
        assert collatz_steps(6) == 8
        assert collatz_steps(27) == 111

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            collatz_steps(0)

    def test_process_finds_max_in_batch(self):
        app = CollatzApplication(offset=0, batch=10)
        err, result = run_process(app, {"first": 20, "count": 10})
        assert err is None
        assert result["checked"] == 10
        assert result["steps"] == max(collatz_steps(n) for n in range(20, 30))

    def test_inputs_are_contiguous_batches(self):
        app = CollatzApplication(offset=0, batch=5)
        first, second = list(app.generate_inputs(2))
        assert second["first"] == first["first"] + 5

    def test_cost_equals_batch_size(self):
        app = CollatzApplication()
        assert app.cost({"first": 1, "count": 250}) == 250

    def test_postprocess_picks_max(self):
        app = CollatzApplication()
        best = app.postprocess([{"n": 1, "steps": 5}, {"n": 2, "steps": 50}, {"n": 3, "steps": 10}])
        assert best["n"] == 2

    def test_handles_wrapped_input(self):
        app = CollatzApplication(offset=0)
        wrapped = app.wrap_input({"first": 5, "count": 3})
        err, result = run_process(app, wrapped)
        assert err is None and result["checked"] == 3


class TestCrypto:
    def test_hash_is_deterministic(self):
        assert hash_attempt("block", 42) == hash_attempt("block", 42)
        assert hash_attempt("block", 42) != hash_attempt("block", 43)

    def test_difficulty_check(self):
        assert meets_difficulty(1, 200)
        assert not meets_difficulty(1 << 250, 10)

    def test_process_reports_found_nonce(self):
        app = CryptoMiningApplication(difficulty_bits=4, range_size=200)
        err, result = run_process(
            app, {"block": "b", "start": 0, "count": 5000, "difficulty_bits": 4}
        )
        assert err is None
        assert result["found"]
        assert meets_difficulty(hash_attempt("b", result["nonce"]), 4)

    def test_process_reports_not_found(self):
        app = CryptoMiningApplication(difficulty_bits=200)
        err, result = run_process(
            app, {"block": "b", "start": 0, "count": 10, "difficulty_bits": 200}
        )
        assert err is None and not result["found"]

    def test_monitor_advances_chain(self):
        app = CryptoMiningApplication(difficulty_bits=6, range_size=500)
        monitor = MiningMonitor(app, target_height=2)
        attempts = monitor.attempts()
        mined = 0
        for attempt in attempts:
            err, result = run_process(app, attempt)
            monitor.record_result(result)
            mined += 1
            if monitor.done or mined > 200:
                break
        assert monitor.done
        assert len(monitor.chain) == 2
        assert monitor.chain[0]["height"] == 0

    def test_monitor_ignores_stale_results(self):
        app = CryptoMiningApplication()
        monitor = MiningMonitor(app, target_height=2)
        monitor.record_result({"found": True, "nonce": 5, "height": 0})
        monitor.record_result({"found": True, "nonce": 9, "height": 0})  # stale
        assert monitor.height == 1
        assert len(monitor.chain) == 1


class TestRaytracer:
    def test_render_shape_and_dtype(self):
        image = render_scene(30.0, width=16, height=12)
        assert image.shape == (12, 16, 3)
        assert image.dtype == np.uint8

    def test_render_depends_on_angle(self):
        assert not np.array_equal(render_scene(0.0, 16, 12), render_scene(90.0, 16, 12))

    def test_scene_has_content(self):
        image = render_scene(0.0, 16, 12)
        assert image.max() > 40      # something bright is visible
        assert image.std() > 5       # not a flat image

    def test_process_roundtrip(self):
        app = RaytraceApplication(width=8, height=6)
        err, result = run_process(app, {"angle": 45.0, "frame": 3})
        assert err is None
        from repro.net.serialization import decode_binary

        pixels = decode_binary(result["pixels"])
        assert len(pixels) == 8 * 6 * 3

    def test_assemble_animation_checks_order(self):
        app = RaytraceApplication(width=8, height=6)
        frames = []
        for angle in (0.0, 60.0):
            _err, result = run_process(app, {"angle": angle, "frame": angle})
            frames.append(result)
        summary = assemble_animation(frames)
        assert summary["frames"] == 2
        with pytest.raises(ValueError):
            assemble_animation(list(reversed(frames)))

    def test_generate_inputs_cover_rotation(self):
        app = RaytraceApplication(frames=4)
        angles = [value["angle"] for value in app.generate_inputs(4)]
        assert angles == [0.0, 90.0, 180.0, 270.0]


class TestImageProcessing:
    def test_tile_synthesis_deterministic(self):
        assert np.array_equal(synthesize_tile(7), synthesize_tile(7))
        assert not np.array_equal(synthesize_tile(7), synthesize_tile(8))

    def test_blur_reduces_variance(self):
        tile = synthesize_tile(1)
        blurred = box_blur(tile, radius=3)
        assert blurred.shape == tile.shape
        assert blurred.var() < tile.var()

    def test_blur_radius_zero_is_identity(self):
        tile = synthesize_tile(2)
        assert np.array_equal(box_blur(tile, radius=0), tile)

    def test_process_uploads_result(self):
        store = ImageStore()
        app = ImageProcessingApplication(store=store)
        err, result = run_process(app, {"tile_id": 3})
        assert err is None
        assert store.has_result(3)
        assert result["variance"] < synthesize_tile(3).var()

    def test_input_size_matches_paper(self):
        assert ImageProcessingApplication().input_size_bytes == 168_000


class TestMLAgent:
    def test_gridworld_goal(self):
        world = GridWorld(3, 3)
        state, reward, done = world.step((1, 2), "right")
        assert state == (2, 2) and done and reward > 0

    def test_gridworld_walls(self):
        world = GridWorld(3, 3)
        state, _r, _d = world.step((0, 0), "left")
        assert state == (0, 0)

    def test_agent_learns_with_good_rate(self):
        agent = QLearningAgent(GridWorld(), learning_rate=0.5, seed=1)
        outcome = agent.train(5_000)
        assert outcome["learned"]
        assert outcome["episodes"] > 0

    def test_process_returns_metrics(self):
        app = MLAgentApplication(steps_per_value=500)
        err, result = run_process(app, {"learning_rate": 0.3, "steps": 500, "seed": 1})
        assert err is None
        assert result["steps"] == 500
        assert "total_reward" in result

    def test_postprocess_selects_best(self):
        app = MLAgentApplication()
        best = app.postprocess([
            {"learning_rate": 0.1, "total_reward": 5.0},
            {"learning_rate": 0.5, "total_reward": 50.0},
        ])
        assert best["learning_rate"] == 0.5


class TestArxiv:
    def test_tagger_matches_keywords(self):
        tagger = SimulatedTagger("alice", interests=["volunteer computing"], seed=1)
        result = tagger.tag(SAMPLE_PAPERS[0])
        assert result["interesting"]
        assert result["matched_keywords"]

    def test_tagger_rejects_unrelated(self):
        tagger = SimulatedTagger("bob", interests=["databases"], seed=2)
        results = [tagger.tag(paper) for paper in SAMPLE_PAPERS]
        assert any(not r["interesting"] for r in results)

    def test_app_postprocess_builds_reading_list(self):
        app = ArxivTaggingApplication()
        results = []
        for paper in app.generate_inputs(len(SAMPLE_PAPERS)):
            _err, result = run_process(app, paper)
            results.append(result)
        reading_list = app.postprocess(results)
        assert all(entry["interesting"] for entry in reading_list)


class TestLenderTestApp:
    def test_random_executions_pass(self):
        for seed in range(30):
            outcome = run_random_execution(seed)
            assert outcome["ok"], f"seed {seed} failed: {outcome}"

    def test_process_batches_executions(self):
        app = LenderTestApplication(executions_per_value=5)
        err, result = run_process(app, {"seed": 100, "count": 5})
        assert err is None
        assert result["ok"]
        assert result["executions"] == 5


class TestCommonApplicationContract:
    @pytest.mark.parametrize("name", ["collatz", "crypto", "lender_test", "raytrace",
                                      "imageproc", "ml_agent", "arxiv"])
    def test_inputs_costs_and_simulated_results(self, name):
        app = registry.create(name)
        inputs = list(app.generate_inputs(3))
        assert len(inputs) == 3
        for value in inputs:
            wrapped = app.wrap_input(value)
            assert wrapped["size_bytes"] == app.input_size_bytes
            assert app.cost(wrapped) > 0
            simulated = app.simulate_result(wrapped)
            assert simulated is not None

    @pytest.mark.parametrize("name", ["collatz", "crypto", "lender_test", "ml_agent", "arxiv"])
    def test_real_processing_verifies(self, name):
        app = registry.create(name)
        value = next(iter(app.generate_inputs(1)))
        err, result = run_process(app, value)
        assert err is None
        assert app.verify_result(value, result)
