"""Tests for browser tabs and volunteers (worker side)."""

from __future__ import annotations


from repro.devices import SimDevice, device_by_name
from repro.master.bundler import bundle_function
from repro.net.channel import SimChannel
from repro.pullstream import collect, pull, values
from repro.sim.metrics import MetricsCollector
from repro.worker import BrowserTab, SimVolunteer


def connect(channel):
    done = []
    channel.connect(lambda err, ch: done.append(err))
    channel.scheduler.run(until=lambda: bool(done))
    return channel


class TestBrowserTab:
    def test_processes_values_from_channel(self, scheduler, network, square_fn):
        device = SimDevice(device_by_name("iphone-se"), scheduler)
        tab = BrowserTab(device, 0)
        channel = connect(SimChannel(scheduler, network, "master", "iphone-se"))
        bundle = bundle_function(square_fn)
        tab.attach(channel.remote, bundle)
        results = pull(channel.local.duplex.source, collect())
        channel.local.duplex.sink(values([1, 2, 3]))
        scheduler.run(until=lambda: results.done)
        assert results.value == [1, 4, 9]
        assert tab.items_processed == 3

    def test_metrics_recorded(self, scheduler, network, square_fn):
        device = SimDevice(device_by_name("iphone-se"), scheduler)
        metrics = MetricsCollector()
        metrics.start_window(0.0)
        tab = BrowserTab(device, 0)
        channel = connect(SimChannel(scheduler, network, "master", "iphone-se"))
        tab.attach(channel.remote, bundle_function(square_fn), metrics)
        results = pull(channel.local.duplex.source, collect())
        channel.local.duplex.sink(values([1, 2]))
        scheduler.run(until=lambda: results.done)
        assert metrics.worker(tab.worker_id).items_processed == 2

    def test_application_cost_model_drives_duration(self, scheduler, network):
        from repro.apps import CollatzApplication

        app = CollatzApplication()
        device = SimDevice(device_by_name("iphone-se"), scheduler)
        tab = BrowserTab(device, 0)
        channel = connect(
            SimChannel(scheduler, network, "master", "iphone-se", heartbeats_enabled=False)
        )
        tab.attach(channel.remote, bundle_function(app.process, application=app))
        results = pull(channel.local.duplex.source, collect())
        start = scheduler.now
        channel.local.duplex.sink(values([app.wrap_input(v) for v in app.generate_inputs(3)]))
        scheduler.run(until=lambda: results.done)
        # 3 batches of 100 Collatz numbers at 336.18/s on one core
        expected = 3 * 100 / 336.18
        assert scheduler.now - start >= expected * 0.9

    def test_crashed_tab_never_answers(self, scheduler, network, square_fn):
        device = SimDevice(device_by_name("novena"), scheduler)
        tab = BrowserTab(device, 0)
        channel = connect(
            SimChannel(scheduler, network, "master", "novena",
                       heartbeat_interval=0.5, heartbeat_timeout=1.5)
        )
        tab.attach(channel.remote, bundle_function(square_fn))
        results = pull(channel.local.duplex.source, collect())
        scheduler.call_later(0.01, tab.crash)
        channel.local.duplex.sink(values([1, 2, 3]))
        scheduler.run(until=lambda: results.done)
        # the master side sees a connection error, never a result
        assert results.value == []
        assert results.end is not None


class TestSimVolunteer:
    def test_volunteer_contributes_profile_cores(self, scheduler):
        volunteer = SimVolunteer(device_by_name("mbpro-2016"), scheduler)
        assert volunteer.requested_tabs == 2

    def test_tabs_override(self, scheduler):
        volunteer = SimVolunteer(device_by_name("mbpro-2016"), scheduler, tabs=1)
        assert volunteer.requested_tabs == 1

    def test_crash_propagates_to_tabs(self, scheduler, network, square_fn):
        volunteer = SimVolunteer(device_by_name("novena"), scheduler)
        channel = connect(SimChannel(scheduler, network, "master", "novena"))
        tab = volunteer.attach_tab(0, channel.remote, bundle_function(square_fn))
        volunteer.crash()
        assert volunteer.crashed
        assert tab.closed
        assert channel.remote.crashed

    def test_attach_after_crash_silences_endpoint(self, scheduler, network, square_fn):
        volunteer = SimVolunteer(device_by_name("novena"), scheduler)
        volunteer.crash()
        channel = connect(SimChannel(scheduler, network, "master", "novena"))
        volunteer.attach_tab(0, channel.remote, bundle_function(square_fn))
        assert channel.remote.crashed

    def test_leave_closes_gracefully(self, scheduler, network, square_fn):
        volunteer = SimVolunteer(device_by_name("iphone-se"), scheduler)
        channel = connect(SimChannel(scheduler, network, "master", "iphone-se"))
        volunteer.attach_tab(0, channel.remote, bundle_function(square_fn))
        volunteer.leave()
        scheduler.run_until(scheduler.now + 1.0)
        assert channel.remote.closed
        assert not channel.remote.crashed

    def test_items_processed_aggregates_tabs(self, scheduler, network, square_fn):
        volunteer = SimVolunteer(device_by_name("mbpro-2016"), scheduler)
        channels = [
            connect(SimChannel(scheduler, network, "master", "mbpro-2016"))
            for _ in range(2)
        ]
        sinks = []
        for index, channel in enumerate(channels):
            volunteer.attach_tab(index, channel.remote, bundle_function(square_fn))
            sinks.append(pull(channel.local.duplex.source, collect()))
            channel.local.duplex.sink(values([index, index + 10]))
        scheduler.run(until=lambda: all(sink.done for sink in sinks))
        assert volunteer.items_processed == 4
