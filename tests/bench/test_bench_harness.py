"""Tests for the benchmark harness (Table 2, latency, comparisons, ablations)."""

from __future__ import annotations

import pytest

from repro.bench import (
    MEASURED_APPS,
    device_vs_server,
    format_comparison,
    format_latency_sweep,
    format_table,
    format_table2_cell,
    ideal_throughput,
    paper_device_rate,
    paper_total,
    run_cell,
)
from repro.bench.latency import batch_size_sweep
from repro.bench.ablations import failure_recovery_ablation, ordering_ablation


class TestPaperReferenceValues:
    def test_paper_totals(self):
        assert paper_total("collatz", "lan") == pytest.approx(2209.65, rel=0.01)
        assert paper_total("raytrace", "wan") == pytest.approx(4.75, rel=0.01)
        assert paper_total("imageproc", "wan") is None  # not measured on the WAN

    def test_paper_device_rates(self):
        rates = paper_device_rate("collatz", "lan")
        assert rates["iphone-se"] == pytest.approx(336.18)

    def test_measured_apps_listing(self):
        assert "imageproc" not in MEASURED_APPS["wan"]
        assert len(MEASURED_APPS["lan"]) == 6

    def test_ideal_throughput(self):
        assert ideal_throughput("collatz", "lan") == pytest.approx(2209.65, rel=0.01)


class TestRunCell:
    def test_lan_raytrace_cell_matches_paper_shape(self):
        cell = run_cell("raytrace", "lan", duration=15.0, warmup=5.0)
        assert cell.measured_total == pytest.approx(cell.paper_total_value, rel=0.05)
        assert cell.ratio_to_paper == pytest.approx(1.0, abs=0.05)
        # shares within a few percentage points of the paper's
        paper_share = 100.0 * 8.81 / 18.94
        assert cell.measured_share["mbpro-2016"] == pytest.approx(paper_share, abs=3.0)

    def test_wan_cell_excludes_unsupported_devices(self):
        cell = run_cell("ml_agent", "wan", duration=10.0, warmup=5.0)
        assert cell.measured_total == pytest.approx(714.38, rel=0.08)

    def test_formatting(self):
        cell = run_cell("raytrace", "lan", duration=10.0, warmup=5.0)
        text = format_table2_cell(cell)
        assert "Table 2" in text
        assert "mbpro-2016" in text
        assert "paper" in text


class TestLatencySweep:
    def test_larger_batches_increase_efficiency(self):
        points = batch_size_sweep(
            "raytrace", "wan", batch_sizes=[1, 4], duration=15.0, warmup=5.0
        )
        assert points[0].batch_size == 1
        assert points[-1].efficiency >= points[0].efficiency
        assert points[-1].efficiency > 0.9
        assert "Latency hiding" in format_latency_sweep(points)


class TestComparisons:
    def test_paper_claims_hold(self):
        rows = device_vs_server("collatz")
        iphone_vs_uvb = next(
            row for row in rows
            if row.personal_device == "iphone-se" and row.server == "uvb.sophia"
        )
        assert iphone_vs_uvb.personal_wins_single_core
        # 2-5 cores of a recent personal device match the fastest server core
        mbpro_vs_dahu = next(
            row for row in rows
            if row.personal_device == "mbpro-2016" and row.server == "dahu.grenoble"
        )
        assert 1.0 < mbpro_vs_dahu.cores_to_match <= 5.0
        assert "cores to match" in format_comparison(rows)


class TestAblations:
    def test_failure_recovery_ablation(self):
        outcome = failure_recovery_ablation(inputs=150, crash_time=0.5)
        assert outcome["with_crash"]["crashes"] == 1
        assert outcome["with_crash"]["completed_at"] >= outcome["no_failure"]["completed_at"]
        assert outcome["no_failure"]["values_relent"] == 0

    def test_ordering_ablation_both_complete(self):
        outcome = ordering_ablation(inputs=12)
        assert outcome["ordered"]["outputs"] == 12
        assert outcome["unordered"]["outputs"] == 12


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 22), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # title + header + separator + two data rows
        assert len(lines) == 5


class TestShardingComparison:
    def test_compare_sharding_single_shard_does_not_crash(self):
        """Regression: the sharded arm read ``lender.shard_stats``, which a
        shards=1 map (plain StreamLender) does not have."""
        from repro.bench.comparison import compare_sharding

        comparison = compare_sharding(
            "repro.pool.workloads:echo", [1, 2, 3, 4], shards=1,
            processes_per_pool=1, batch_size=2,
        )
        assert comparison.results_match
        assert comparison.per_shard_delivered == [4]

    def test_compare_sharding_two_shards(self):
        from repro.bench.comparison import compare_sharding

        comparison = compare_sharding(
            "repro.pool.workloads:echo", list(range(8)), shards=2,
            processes_per_pool=1, batch_size=2,
        )
        assert comparison.results_match
        assert sorted(comparison.per_shard_delivered) == [4, 4]
        assert comparison.speedup > 0


class TestEventLoopComparison:
    def test_compare_event_loop_small_run(self):
        from repro.bench.comparison import compare_event_loop

        comparison = compare_event_loop(
            "repro.pool.workloads:echo", list(range(8)), pools=2,
            processes_per_pool=1, batch_size=2,
        )
        assert comparison.results_match
        assert sum(comparison.per_pool_delivered) == 8
        assert comparison.speedup > 0
        assert comparison.pools == 2


class TestPoolTransportComparison:
    def test_compare_pool_transport_small_run(self):
        from repro.bench.comparison import compare_pool_transport

        comparison = compare_pool_transport(
            count=6, payload_bytes=64 * 1024, batch_size=2, repeats=1,
        )
        assert comparison.results_match
        assert comparison.pipe_slots_leaked == 0
        assert comparison.shm_slots_leaked == 0
        assert comparison.shm_fallbacks == 0
        # Payloads crossed through the ring in both directions.
        assert comparison.shm_bytes_through_ring >= 2 * 6 * 64 * 1024
        assert comparison.speedup > 0

    def test_large_payload_inputs_are_distinct_and_sized(self):
        from repro.bench.comparison import large_payload_inputs

        items = large_payload_inputs(5, 4096)
        assert len(set(items)) == 5
        assert all(len(item) == 4096 for item in items)

    def test_repeats_validation(self):
        import pytest

        from repro.bench.comparison import compare_pool_transport

        with pytest.raises(ValueError):
            compare_pool_transport(repeats=0)
