"""The map's stats snapshot folds in the volunteer plane (PR 9 satellite).

``DistributedMap.stats`` stays a drop-in proxy for the lender's counters
while adding a ``volunteers`` aggregation over every served gateway and
every registry attached with ``attach_volunteer_registry`` — the path a
simulated :class:`~repro.master.master.PandoMaster` deployment uses, since
it never opens a websocket gateway.
"""

from __future__ import annotations

from repro.core import DistributedMap
from repro.master.registry import VolunteerRegistry


class TestAttachedRegistry:
    def test_tallies_fold_into_stats(self):
        dmap = DistributedMap()
        registry = VolunteerRegistry()
        dmap.attach_volunteer_registry(registry)
        dmap.attach_volunteer_registry(registry)  # identity-deduped no-op
        first = registry.register(
            host="h1", device_name="laptop", protocol="websocket", joined_at=0.0
        )
        second = registry.register(
            host="h2", device_name="phone", protocol="websocket", joined_at=0.5
        )
        try:
            volunteers = dmap.stats.volunteers
            assert volunteers["joined"] == 2
            assert volunteers["active"] == 2
            registry.mark_left(first.volunteer_id, 1.0)
            registry.mark_left(second.volunteer_id, 2.0, crashed=True)
            volunteers = dmap.stats.volunteers
            assert volunteers["left"] == 1
            assert volunteers["crashed"] == 1
            assert volunteers["active"] == 0
        finally:
            dmap.close()

    def test_registry_counters_are_scrapeable(self):
        dmap = DistributedMap()
        registry = VolunteerRegistry()
        dmap.attach_volunteer_registry(registry)
        registry.register(
            host="h", device_name="laptop", protocol="websocket", joined_at=0.0
        )
        try:
            text = dmap.obs.registry.render_prometheus()
            assert 'pando_volunteers_joins_total{source="registry-1"} 1' in text
            assert 'pando_volunteers_crashes_total{source="registry-1"} 0' in text
        finally:
            dmap.close()

    def test_as_dict_keeps_the_lender_shape(self):
        dmap = DistributedMap()
        try:
            data = dmap.stats.as_dict()
            # Lender counters stay top-level (existing consumers), the
            # volunteer plane is one new sub-dict.
            assert data["values_read"] == 0
            assert data["volunteers"]["joined"] == 0
            assert dmap.stats.results_delivered == 0  # proxy still works
        finally:
            dmap.close()
