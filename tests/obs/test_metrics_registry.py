"""Unit tests for the metrics registry, trace log, and frame tracer."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.errors import PandoError
from repro.obs import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    Observability,
    TraceLog,
)

GOLDEN = pathlib.Path(__file__).parent / "golden_metrics.prom"


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        assert counter.value() == 0
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("transport",))
        counter.inc(transport="pipe")
        counter.inc(5, transport="ws")
        assert counter.value(transport="pipe") == 1
        assert counter.value(transport="ws") == 5
        assert counter.value(transport="shm") == 0

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        with pytest.raises(PandoError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("transport",))
        with pytest.raises(PandoError):
            counter.inc(shard=0)
        with pytest.raises(PandoError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12


class TestHistogram:
    def test_observe_count_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(55.5)

    def test_buckets_are_sorted_and_required(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(10.0, 1.0))
        assert hist.buckets == (1.0, 10.0)
        with pytest.raises(PandoError):
            registry.histogram("h2", "help", buckets=())

    def test_rendered_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="10"} 3' in text
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text

    def test_default_bucket_tables(self):
        assert DEFAULT_SECONDS_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_BYTES_BUCKETS[0] == 256
        assert all(
            a < b for a, b in zip(DEFAULT_SECONDS_BUCKETS, DEFAULT_SECONDS_BUCKETS[1:])
        )


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup", "help")
        with pytest.raises(PandoError):
            registry.gauge("dup", "help")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(PandoError):
            registry.counter("bad name", "help")

    def test_callbacks_share_a_family_per_label_set(self):
        registry = MetricsRegistry()
        registry.register_callback("cb_total", "help", lambda: 1, labels={"shard": 0})
        registry.register_callback("cb_total", "help", lambda: 2, labels={"shard": 1})
        text = registry.render_prometheus()
        assert 'cb_total{shard="0"} 1' in text
        assert 'cb_total{shard="1"} 2' in text

    def test_callback_label_names_must_match(self):
        registry = MetricsRegistry()
        registry.register_callback("cb_total", "help", lambda: 1, labels={"shard": 0})
        with pytest.raises(PandoError):
            registry.register_callback(
                "cb_total", "help", lambda: 2, labels={"worker": "w"}
            )

    def test_callback_cannot_shadow_an_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help")
        with pytest.raises(PandoError):
            registry.register_callback("c_total", "help", lambda: 1)

    def test_callback_kind_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(PandoError):
            registry.register_callback("cb", "help", lambda: 1, kind="histogram")

    def test_dead_callback_renders_zero(self):
        registry = MetricsRegistry()

        def explode():
            raise RuntimeError("object torn down")

        registry.register_callback("dead_total", "help", explode)
        assert "dead_total 0" in registry.render_prometheus()


class TestExposition:
    def _golden_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        frames = registry.counter(
            "pando_frames_total",
            "Traced frames completed, by transport.",
            ("transport",),
        )
        frames.inc(transport="pipe")
        frames.inc(2, transport="ws")
        in_use = registry.gauge(
            "pando_shm_slots_in_use",
            "Ring slots currently held by in-flight frames.",
            ("worker",),
        )
        in_use.set(3, worker="worker-1")
        overhead = registry.histogram(
            "pando_frame_overhead_seconds",
            "Per-frame machinery overhead.",
            ("transport",),
            buckets=(0.001, 0.01, 0.1),
        )
        overhead.observe(0.0005, transport="pipe")
        overhead.observe(0.05, transport="pipe")
        overhead.observe(5.0, transport="pipe")
        registry.register_callback(
            "pando_lender_values_read_total",
            "Values read from the map's input stream.",
            lambda: 42,
            labels={"shard": 0},
        )
        registry.register_callback(
            "pando_lender_values_read_total",
            "Values read from the map's input stream.",
            lambda: 7,
            labels={"shard": 1},
        )
        return registry

    def test_rendering_matches_the_golden_file(self):
        # The registry promises deterministic output (sorted families and
        # samples); the golden file pins the exact exposition format so a
        # rendering change cannot slip through unnoticed.
        assert self._golden_registry().render_prometheus() == GOLDEN.read_text()

    def test_rendering_is_deterministic(self):
        assert (
            self._golden_registry().render_prometheus()
            == self._golden_registry().render_prometheus()
        )

    def test_as_dict_snapshot_is_json_serialisable(self):
        snapshot = self._golden_registry().as_dict()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["pando_frames_total"]["type"] == "counter"
        hist = snapshot["pando_frame_overhead_seconds"]
        assert hist["type"] == "histogram"
        (sample,) = hist["samples"]
        assert sample["count"] == 3
        callback = snapshot["pando_lender_values_read_total"]
        assert {s["value"] for s in callback["samples"]} == {42.0, 7.0}


class TestTraceLog:
    def test_ring_buffer_rotates(self):
        log = TraceLog(capacity=3)
        for index in range(5):
            log.emit("frame", frame_id=index)
        assert len(log) == 3
        assert [event.fields["frame_id"] for event in log.events()] == [2, 3, 4]

    def test_kind_filter(self):
        log = TraceLog()
        log.emit("frame")
        log.emit("pump_stall")
        log.emit("frame")
        assert len(log.events("frame")) == 2
        assert len(log.events("pump_stall")) == 1
        assert len(log.events()) == 3

    def test_registry_counts_survive_rotation(self):
        registry = MetricsRegistry()
        log = TraceLog(capacity=2, registry=registry)
        for _ in range(5):
            log.emit("frame")
        assert len(log) == 2
        text = registry.render_prometheus()
        assert 'pando_trace_events_total{kind="frame"} 5' in text

    def test_event_as_dict(self):
        log = TraceLog()
        event = log.emit("shard_place", shard=1)
        assert event.as_dict()["kind"] == "shard_place"
        assert event.as_dict()["shard"] == 1


class TestObservability:
    def test_disabled_begin_frame_returns_none(self):
        obs = Observability(enabled=False)
        assert obs.begin_frame("pipe") is None

    def test_frame_ids_are_monotonic_and_job_tagged(self):
        obs = Observability(job_id="job-x")
        first = obs.begin_frame("pipe", values=2)
        second = obs.begin_frame("ws")
        assert first["job"] == second["job"] == "job-x"
        assert second["frame_id"] == first["frame_id"] + 1
        assert first["values"] == 2 and second["values"] == 1

    def test_observe_frame_decomposes_overhead(self):
        obs = Observability()
        trace = obs.begin_frame("shm")
        obs.end_serialize(trace)
        trace["exec_s"] = 0.0
        obs.observe_frame(trace)
        assert obs.frames.value(transport="shm") == 1
        assert obs.frame_overhead.count(transport="shm") == 1
        assert obs.frame_compute.count(transport="shm") == 1
        (event,) = obs.trace.events("frame")
        assert event.fields["transport"] == "shm"
        assert event.fields["overhead_s"] >= 0.0

    def test_overhead_clamped_for_pipelined_frames(self):
        # A frame that computed concurrently with others can report more
        # exec time than exclusive elapsed time; overhead clamps at zero.
        obs = Observability()
        trace = obs.begin_frame("pipe")
        trace["exec_s"] = 1e9
        obs.observe_frame(trace)
        (event,) = obs.trace.events("frame")
        assert event.fields["overhead_s"] == 0.0

    def test_auto_job_ids_are_unique(self):
        assert Observability().job_id != Observability().job_id
