"""Scrape-endpoint tests.

The threaded flavour (no scheduler) answers scrapes from a daemon thread at
any time; the async flavour is an :class:`EventSource` on the map's loop, so
it only answers while :meth:`DistributedMap.drive` spins — the acceptance
test therefore scrapes from a background thread *during* a live sharded
multi-transport run.
"""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.bench.comparison import large_payload_inputs
from repro.core import DistributedMap
from repro.pullstream import collect, pull, values
from repro.worker import run_volunteer

ECHO = "repro.pool.workloads:echo"
SLEEP_BLOB = "repro.pool.workloads:sleep_blob"


def start_volunteer_thread(url, **kwargs):
    box = {}

    def target():
        box["report"] = run_volunteer(url, **kwargs)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def scrape(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        assert response.status == 200
        return response.headers.get("Content-Type", ""), response.read().decode()


def sample_lines(body):
    """Parse exposition text into ``(name{labels}, value)`` pairs."""
    samples = []
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples.append((name, float(value)))
    return samples


def nonzero(body, prefix):
    return any(
        value > 0 for name, value in sample_lines(body) if name.startswith(prefix)
    )


def overhead_count(body, transport):
    wanted = f'pando_frame_overhead_seconds_count{{transport="{transport}"}}'
    for name, value in sample_lines(body):
        if name == wanted:
            return value
    return 0.0


class TestThreadedEndpoint:
    def test_scrape_a_thread_driven_map(self):
        items = list(range(10))
        dmap = DistributedMap(batch_size=2)
        sink = pull(values(items), dmap, collect())
        dmap.add_process_pool(ECHO, processes=1)
        try:
            assert sink.result() == items
            endpoint = dmap.serve_metrics()
            assert endpoint.url.startswith("http://127.0.0.1:")
            content_type, body = scrape(endpoint.url)
            assert content_type.startswith("text/plain")
            assert "version=0.0.4" in content_type
            assert nonzero(body, "pando_frames_total")
            assert nonzero(body, "pando_lender_values_read_total")
            assert nonzero(body, "pando_pool_")
            assert overhead_count(body, "pipe") > 0
        finally:
            dmap.close()
        # close() stops the endpoint: the port no longer answers.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(endpoint.url, timeout=1)

    def test_head_and_wrong_path(self):
        dmap = DistributedMap()
        try:
            endpoint = dmap.serve_metrics()
            request = urllib.request.Request(endpoint.url, method="HEAD")
            with urllib.request.urlopen(request, timeout=5) as response:
                assert response.status == 200
                assert response.read() == b""
        finally:
            dmap.close()


class TestLiveScrapeAcceptance:
    def test_live_scrape_during_sharded_multi_transport_run(self):
        # The PR's acceptance scenario: a sharded map computing through a
        # shm pool, a pipe pool, and a websocket volunteer at once, scraped
        # over HTTP *while* drive() runs.  sleep_blob (50 ms/value) keeps
        # the run alive long enough for the scraper to land mid-flight.
        items = large_payload_inputs(100, 8192)
        dmap = DistributedMap(scheduler="asyncio", batch_size=2, shards=2)
        sink = pull(values(items), dmap, collect())
        dmap.add_process_pool(SLEEP_BLOB, processes=1, transport="shm")
        dmap.add_process_pool(SLEEP_BLOB, processes=1, transport="pipe")
        gateway = dmap.serve_volunteers(fn_ref=SLEEP_BLOB)
        endpoint = dmap.serve_metrics()
        volunteer, box = start_volunteer_thread(gateway.url, tabs=2)

        required_prefixes = (
            "pando_lender_values_read_total",
            "pando_pool_",
            "pando_shm_",
            "pando_ws_",
            "pando_sched_rounds_total",
        )
        state = {"body": None, "ok": False}
        stop = threading.Event()

        def scraper():
            deadline = time.monotonic() + 25
            while not stop.is_set() and time.monotonic() < deadline:
                try:
                    _content_type, body = scrape(endpoint.url)
                except Exception:
                    time.sleep(0.05)
                    continue
                state["body"] = body
                if all(nonzero(body, prefix) for prefix in required_prefixes) and all(
                    overhead_count(body, transport) > 0
                    for transport in ("pipe", "shm", "ws")
                ):
                    state["ok"] = True
                    return
                time.sleep(0.03)

        scraper_thread = threading.Thread(target=scraper, daemon=True)
        scraper_thread.start()
        try:
            dmap.drive(sink, timeout=120)
            results = sink.result()
        finally:
            stop.set()
            dmap.close()
            volunteer.join(10)
        scraper_thread.join(10)
        # Shards merge results as they stream in: compare as a multiset.
        assert sorted(results) == sorted(items)
        assert box["report"].graceful
        assert state["ok"], (
            "live scrape never saw all families non-zero; last body:\n"
            + (state["body"] or "<no successful scrape>")
        )
        # The structured snapshot mirrors what the endpoint served.
        snapshot = dmap.obs.registry.as_dict()
        assert snapshot["pando_frames_total"]["samples"]
        assert dmap.stats.volunteers["joined"] == 1
        assert dmap.stats.as_dict()["volunteers"]["bytes_sent"] > 0
