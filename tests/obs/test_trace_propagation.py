"""Frame-trace propagation across the pipe, shm, and websocket transports.

Every transport ships the trace dict in its frame control metadata; the
child side adds ``exec_s``; delivery lands one ``"frame"`` trace event and
one overhead/compute histogram sample.  These tests pin that contract per
transport, including the shm in-band (fallback-to-inline) path, and check
that turning metrics off restores the untraced frame shape.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.comparison import large_payload_inputs
from repro.core import DistributedMap
from repro.pool.workloads import invert_tile
from repro.pullstream import collect, from_iterable, pull, values
from repro.worker import run_volunteer

INVERT = "repro.pool.workloads:invert_tile"


def start_volunteer_thread(url, **kwargs):
    """Run one volunteer session in a thread; returns (thread, result box)."""
    box = {}

    def target():
        box["report"] = run_volunteer(url, **kwargs)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def tiles(count, size=8192):
    return large_payload_inputs(count, size)


def assert_traced_frames(dmap, transport, total_values):
    """The common per-transport contract for completed frame traces."""
    events = dmap.obs.trace.events("frame")
    assert events, f"no frame events recorded for {transport}"
    fields = [event.fields for event in events]
    assert {f["transport"] for f in fields} == {transport}
    # Every frame carries the parent job ID and a distinct monotonic id.
    assert {f["job"] for f in fields} == {dmap.obs.job_id}
    frame_ids = [f["frame_id"] for f in fields]
    assert len(set(frame_ids)) == len(frame_ids)
    assert frame_ids == sorted(frame_ids)
    # Batches account for every input value exactly once.
    assert sum(f["values"] for f in fields) == total_values
    for f in fields:
        assert f["serialize_s"] is not None and f["serialize_s"] >= 0.0
        assert f["compute_s"] >= 0.0
        assert f["overhead_s"] >= 0.0
    # The histograms saw the same frames the trace log did.
    count = len(events)
    assert dmap.obs.frames.value(transport=transport) == count
    assert dmap.obs.frame_overhead.count(transport=transport) == count
    assert dmap.obs.frame_compute.count(transport=transport) == count


class TestPoolTransports:
    @pytest.mark.parametrize(
        "pool_kwargs",
        [
            pytest.param({"transport": "pipe"}, id="pipe"),
            pytest.param({"transport": "shm"}, id="shm"),
            pytest.param(
                # Slots too small for an 8 KiB tile: every payload falls back
                # to the in-band (inline) path, but frames stay traced.
                {"transport": "shm", "slot_size": 1024, "shm_min_bytes": 256},
                id="shm-fallback",
            ),
        ],
    )
    def test_frames_traced_end_to_end(self, pool_kwargs):
        items = tiles(12)
        dmap = DistributedMap(batch_size=3)
        sink = pull(values(items), dmap, collect())
        handle = dmap.add_process_pool(INVERT, processes=2, **pool_kwargs)
        try:
            assert sink.result() == [invert_tile(tile) for tile in items]
        finally:
            dmap.close()
        transport = pool_kwargs["transport"]
        assert_traced_frames(dmap, transport, total_values=len(items))
        if transport == "shm":
            if "slot_size" in pool_kwargs:
                # In-band fallback: nothing crossed the ring, so no payload
                # samples — but the fallback counter proves the path ran.
                assert handle.pool.ring.fallbacks > 0
                assert dmap.obs.frame_payload.count(transport="shm") == 0
            else:
                assert handle.pool.ring.fallbacks == 0
                assert dmap.obs.frame_payload.count(transport="shm") > 0
                assert dmap.obs.frame_payload.sum(transport="shm") > 0

    def test_metrics_off_restores_untraced_frames(self):
        items = tiles(6)
        dmap = DistributedMap(batch_size=3, metrics=False)
        sink = pull(values(items), dmap, collect())
        dmap.add_process_pool(INVERT, processes=1, transport="shm")
        try:
            assert sink.result() == [invert_tile(tile) for tile in items]
        finally:
            dmap.close()
        assert dmap.obs.trace.events("frame") == []
        assert dmap.obs.frames.value(transport="shm") == 0
        assert dmap.obs.frame_overhead.count(transport="shm") == 0


class TestWsTransport:
    def test_frames_traced_over_the_wire(self):
        dmap = DistributedMap(scheduler="asyncio", batch_size=2)
        sink = pull(from_iterable(range(20)), dmap, collect())
        gateway = dmap.serve_volunteers(fn_ref="operator:neg")
        thread, box = start_volunteer_thread(gateway.url, tabs=2)
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-i for i in range(20)]
        finally:
            dmap.close()
            thread.join(10)
        assert box["report"].graceful
        assert_traced_frames(dmap, "ws", total_values=20)
        # The gateway measured the packed wire frames both ways.
        assert dmap.obs.frame_payload.count(transport="ws") > 0
        assert gateway.bytes_sent > 0
        assert gateway.bytes_received > 0

    def test_metrics_off_over_the_wire(self):
        dmap = DistributedMap(scheduler="asyncio", batch_size=2, metrics=False)
        sink = pull(from_iterable(range(8)), dmap, collect())
        gateway = dmap.serve_volunteers(fn_ref="operator:neg")
        thread, box = start_volunteer_thread(gateway.url)
        try:
            dmap.drive(sink, timeout=30)
            assert sink.result() == [-i for i in range(8)]
        finally:
            dmap.close()
            thread.join(10)
        assert box["report"].graceful
        assert dmap.obs.trace.events("frame") == []
        assert dmap.obs.frame_payload.count(transport="ws") == 0
