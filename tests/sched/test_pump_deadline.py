"""Regression test: async_pump's deadline is inclusive (timeout=0 fires).

The deadline check used a strict ``>``; with ``timeout=0`` (deadline "now")
and a coarse monotonic clock the first rounds could pass the check and the
run would only time out after the clock visibly advanced — in the worst
case spinning a full safety-net poll first.  The check is now ``>=``: a
deadline that has been *reached* fires on the round that reaches it.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import PandoError
from repro.pullstream import collect, pull
from repro.pullstream.pushable import Pushable
from repro.sched import EventLoopScheduler


class TestPumpDeadline:
    def make_pending_sink(self, scheduler):
        # A port-fed pipeline whose producer never pushes: the sink can
        # never complete, so only the timeout can end the run.
        port = scheduler.register_pushable()
        return pull(port.pushable, collect())

    def test_timeout_zero_fires_immediately(self):
        with EventLoopScheduler() as scheduler:
            sink = self.make_pending_sink(scheduler)
            started = time.monotonic()
            with pytest.raises(PandoError, match="timed out"):
                scheduler.run(sink, timeout=0)
            # Fires on the first round — well inside one safety-net poll.
            assert time.monotonic() - started < 1.0

    def test_positive_timeout_still_honoured(self):
        with EventLoopScheduler() as scheduler:
            sink = self.make_pending_sink(scheduler)
            started = time.monotonic()
            with pytest.raises(PandoError, match="timed out"):
                scheduler.run(sink, timeout=0.1)
            elapsed = time.monotonic() - started
            assert 0.05 <= elapsed < 2.0

    def test_completed_sink_beats_a_zero_timeout(self):
        # timeout=0 must not fail a run whose sinks are already complete.
        with EventLoopScheduler() as scheduler:
            port = scheduler.register_pushable()
            sink = pull(port.pushable, collect())
            port.pushable.push(1)
            port.pushable.end()
            while port.dispatch():
                pass
            assert sink.done
            scheduler.run(sink, timeout=0)  # returns without raising
            assert sink.result() == [1]
