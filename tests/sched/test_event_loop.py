"""Unit tests for the asyncio event-loop scheduler subsystem."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.distributed_map import DistributedMap
from repro.errors import PandoError
from repro.pullstream import collect, drain, find, pull, values
from repro.sched import EventLoopScheduler
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler

SLEEPER = "repro.pool.workloads:sleep_echo"


class TestRunWithPools:
    def test_two_pools_on_one_master_both_deliver(self):
        with DistributedMap(batch_size=2, scheduler="asyncio") as dmap:
            inputs = [{"sleep": 0.005, "i": i} for i in range(12)]
            sink = pull(values(inputs), dmap, collect())
            dmap.add_process_pool(SLEEPER, processes=1)
            dmap.add_process_pool(SLEEPER, processes=1)
            dmap.drive(sink, timeout=30)
            assert sink.result() == inputs
            delivered = [
                handle.pool.results_returned for handle in dmap.workers.values()
            ]
            assert sum(delivered) == 12
            assert all(count > 0 for count in delivered)
            assert dmap.scheduler.dispatches > 0

    def test_pools_default_non_blocking_under_scheduler(self):
        with DistributedMap(batch_size=1, scheduler="asyncio") as dmap:
            pull(values([1, 2, 3]), dmap, collect())
            handle = dmap.add_process_pool("repro.pool.workloads:echo", processes=1)
            assert handle.pool.blocking is False

    def test_scheduler_is_reusable_across_runs(self):
        sched = EventLoopScheduler()
        try:
            for _round in range(2):
                with DistributedMap(batch_size=1, scheduler=sched) as dmap:
                    sink = pull(values([1, 2, 3]), dmap, collect())
                    dmap.add_process_pool(
                        "repro.pool.workloads:times10", processes=1
                    )
                    dmap.drive(sink, timeout=30)
                    assert sink.result() == [10, 20, 30]
        finally:
            sched.close()

    def test_owned_scheduler_closes_with_the_map(self):
        dmap = DistributedMap(batch_size=1, scheduler="asyncio")
        assert isinstance(dmap.scheduler, EventLoopScheduler)
        dmap.close()
        assert dmap.scheduler.closed

    def test_shared_scheduler_survives_map_close(self):
        sched = EventLoopScheduler()
        dmap = DistributedMap(batch_size=1, scheduler=sched)
        dmap.close()
        assert not sched.closed
        sched.close()

    def test_unknown_scheduler_string_rejected(self):
        with pytest.raises(ValueError):
            DistributedMap(scheduler="uvloop")


class TestCancellationFanOut:
    def test_find_hit_cancels_queued_pool_futures(self):
        """Cancellation during dispatch: the hit aborts mid-run and the
        scheduler immediately cancels the pool's not-yet-running futures
        instead of letting them compute undeliverable results."""
        with DistributedMap(batch_size=1, scheduler="asyncio") as dmap:
            inputs = [{"sleep": 0.05, "i": i} for i in range(30)]
            sink = pull(values(inputs), dmap, find(lambda v: v["i"] == 1))
            dmap.add_process_pool(SLEEPER, processes=2, window=12)
            dmap.drive(sink, timeout=60)
            assert sink.result()["i"] == 1
            assert sink.aborted
            pool = next(iter(dmap.workers.values())).pool
            assert pool.tasks_cancelled > 0
            assert dmap.scheduler.cancellations == pool.tasks_cancelled
            # The cancelled frames never computed: fewer results came back
            # than frames were submitted.
            assert pool.results_returned < pool.tasks_submitted

    def test_cancel_on_abort_false_keeps_old_behaviour(self):
        with DistributedMap(batch_size=1, scheduler="asyncio") as dmap:
            inputs = [{"sleep": 0.02, "i": i} for i in range(10)]
            sink = pull(values(inputs), dmap, find(lambda v: v["i"] == 1))
            dmap.add_process_pool(SLEEPER, processes=2, window=6)
            dmap.drive(sink, timeout=60, cancel_on_abort=False)
            assert sink.aborted
            pool = next(iter(dmap.workers.values())).pool
            assert dmap.scheduler.cancellations == 0
            # Cancellation then only happens at close() time.
            submitted = pool.tasks_submitted
            dmap.close()
            assert pool.tasks_submitted == submitted


class TestGenericAbortFanOut:
    def test_run_without_on_abort_forces_cancellation_across_sources(self):
        """A raw scheduler run (no DistributedMap, no on_abort) must honour
        the module's promise: the abort predicate's first True cancels every
        registered pool's not-yet-running futures."""
        sched = EventLoopScheduler()
        dmap = DistributedMap(batch_size=1, scheduler=sched)
        try:
            inputs = [{"sleep": 0.05, "i": index} for index in range(30)]
            sink = pull(values(inputs), dmap, find(lambda v: v["i"] == 1))
            dmap.add_process_pool(SLEEPER, processes=2, window=12)
            # Drive through the scheduler directly, bypassing drive()'s
            # on_abort plumbing: the generic forced fallback must fire.
            sched.run(sink, timeout=60, aborted=lambda: sink.aborted)
            assert sink.aborted
            pool = next(iter(dmap.workers.values())).pool
            assert pool.tasks_cancelled > 0
            assert sched.cancellations == pool.tasks_cancelled
        finally:
            dmap.close()
            sched.close()

    def test_port_sources_have_nothing_to_cancel(self):
        """The forced fan-out asks every source; a pushable port simply has
        no cancellable work."""
        sched = EventLoopScheduler()
        try:
            port = sched.register_pushable()
            sink = find(lambda value: value == 2)(port.pushable)
            for value in range(6):
                port.push(value)
            port.end()
            sched.run(sink, timeout=30, aborted=lambda: sink.aborted)
            assert sink.result() == 2
            assert sink.aborted
            assert sched.cancellations == 0
        finally:
            sched.close()


class TestFailureModes:
    def test_stall_raises_instead_of_hanging(self):
        """A shard no worker serves can never complete: the scheduler must
        diagnose the stall, not wait forever."""
        with DistributedMap(batch_size=1, shards=2, scheduler="asyncio") as dmap:
            sink = pull(values(list(range(8))), dmap, collect())
            # Only shard 0 gets a pool; shard 1 starves.
            dmap.add_process_pool(
                "repro.pool.workloads:echo", processes=1, worker_id="only"
            )
            with pytest.raises(PandoError, match="stalled"):
                dmap.drive(sink, timeout=30)

    def test_timeout_raises(self):
        sched = EventLoopScheduler(poll_interval=0.01)
        try:
            port = sched.register_pushable()
            sink = drain()(port.pushable)
            started = time.monotonic()
            with pytest.raises(PandoError, match="timed out"):
                sched.run(sink, timeout=0.05)
            assert time.monotonic() - started < 5.0
        finally:
            sched.close()

    def test_run_requires_a_sink(self):
        sched = EventLoopScheduler()
        try:
            with pytest.raises(PandoError, match="at least one sink"):
                sched.run()
        finally:
            sched.close()

    def test_blocking_pool_rejected(self):
        from repro.pool import ProcessPoolWorker

        sched = EventLoopScheduler()
        try:
            with ProcessPoolWorker("repro.pool.workloads:echo", processes=1) as pool:
                with pytest.raises(PandoError, match="non-blocking"):
                    sched.register_pool(pool)
        finally:
            sched.close()

    def test_duplicate_registration_rejected(self):
        sched = EventLoopScheduler()
        try:
            port = sched.register_pushable()
            with pytest.raises(PandoError, match="already registered"):
                sched.register(port)
        finally:
            sched.close()

    def test_register_after_close_rejected(self):
        sched = EventLoopScheduler()
        sched.close()
        with pytest.raises(PandoError, match="closed"):
            sched.register_pushable()

    def test_invalid_poll_interval_rejected(self):
        with pytest.raises(ValueError):
            EventLoopScheduler(poll_interval=0)

    def test_drive_forwards_poll_interval_to_the_run(self):
        """drive(poll_interval=...) must reach the pump on the scheduler
        path (regression: it used to be silently dropped)."""
        with DistributedMap(batch_size=1, scheduler="asyncio") as dmap:
            sink = pull(values([1]), dmap, collect())
            dmap.add_process_pool("repro.pool.workloads:echo", processes=1)
            with pytest.raises(PandoError, match="poll_interval"):
                dmap.drive(sink, poll_interval=0)
            dmap.drive(sink, timeout=30, poll_interval=0.2)
            assert sink.result() == [1]


class TestPushablePort:
    def test_values_pushed_from_another_thread_arrive_on_the_loop(self):
        sched = EventLoopScheduler()
        try:
            port = sched.register_pushable()
            seen_threads = set()
            received = []

            def observe(value):
                seen_threads.add(threading.get_ident())
                received.append(value)

            sink = drain(op=observe)(port.pushable)

            def producer():
                for index in range(20):
                    port.push(index)
                port.end()

            thread = threading.Thread(target=producer)
            thread.start()
            sched.run(sink, timeout=30)
            thread.join()
            assert received == list(range(20))
            assert port.values_ported == 20
            # The producer ran elsewhere; delivery happened on this thread.
            assert seen_threads == {threading.get_ident()}
        finally:
            sched.close()

    def test_error_terminates_the_stream(self):
        sched = EventLoopScheduler()
        try:
            port = sched.register_pushable()
            sink = collect()(port.pushable)
            port.push(1)
            port.error(RuntimeError("producer exploded"))
            sched.run(sink, timeout=30)
            assert sink.done
            with pytest.raises(RuntimeError, match="exploded"):
                sink.result()
        finally:
            sched.close()

    def test_push_after_end_is_ignored(self):
        sched = EventLoopScheduler()
        try:
            port = sched.register_pushable()
            sink = collect()(port.pushable)
            port.push(1)
            port.end()
            port.push(2)  # sealed: dropped
            sched.run(sink, timeout=30)
            assert sink.result() == [1]
            assert not port.live()
        finally:
            sched.close()


class TestSimIntegration:
    def test_sim_events_run_on_the_loop(self):
        sim = Scheduler(VirtualClock())
        fired = []
        sim.call_later(0.5, lambda: fired.append("a"))
        sim.call_later(1.0, lambda: fired.append("b"))
        sched = EventLoopScheduler()
        try:
            source = sched.register_sim(sim)
            port = sched.register_pushable()
            sink = collect()(port.pushable)
            port.push("x")
            port.end()
            sched.run(sink, timeout=30)
            assert fired == ["a", "b"]
            assert source.virtual_elapsed == pytest.approx(1.0)
        finally:
            sched.close()

    def test_time_scale_paces_virtual_time_against_the_wall_clock(self):
        from repro.pullstream import Pushable

        sim = Scheduler(VirtualClock())
        buffer = Pushable()
        # The simulated event fires 1 virtual second in; at a 0.05 scale the
        # loop timer must hold it back for ~50 ms of wall clock.  The sim
        # callback runs on the loop thread (inside a dispatch), so pushing
        # straight into the pushable is safe.
        sim.call_later(1.0, lambda: (buffer.push("late"), buffer.end()))
        sched = EventLoopScheduler(poll_interval=5.0)
        try:
            sched.register_sim(sim, time_scale=0.05)
            sink = collect()(buffer)
            started = time.monotonic()
            sched.run(sink, timeout=30)
            elapsed = time.monotonic() - started
            assert sink.result() == ["late"]
            assert elapsed >= 0.04
            # The 5-second poll interval cannot have been the wake-up: the
            # armed loop timer was.
            assert elapsed < 4.0
        finally:
            sched.close()

    def test_invalid_time_scale_rejected(self):
        sched = EventLoopScheduler()
        try:
            with pytest.raises(ValueError):
                sched.register_sim(Scheduler(VirtualClock()), time_scale=0)
        finally:
            sched.close()


class TestDispatchListener:
    def test_listener_observes_every_dispatch(self):
        sched = EventLoopScheduler()
        try:
            seen = []
            sched.add_dispatch_listener(lambda source: seen.append(source))
            port = sched.register_pushable()
            sink = collect()(port.pushable)
            for index in range(3):
                port.push(index)
            port.end()
            sched.run(sink, timeout=30)
            assert sink.result() == [0, 1, 2]
            assert seen == [port] * 4  # three values + the end marker
        finally:
            sched.close()
