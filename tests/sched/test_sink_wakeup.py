"""Sink-completion wake-ups: the pump must not lean on the safety net.

ROADMAP follow-on of the scheduler PR: ``async_pump`` re-checks
``sink.done`` between dispatch rounds, so a run whose only remaining
progress happens *outside* the rounds — a pipeline fed and finished from a
producer thread — used to terminate only when the poll-interval safety net
expired.  The pump now registers a ``SinkResult.on_done`` callback that
wakes the loop (thread-safely) the instant the sink completes.
"""

from __future__ import annotations

import threading
import time

from repro.pullstream import collect, pull
from repro.pullstream.pushable import Pushable
from repro.sched import EventLoopScheduler

#: A safety net long enough that any accidental reliance on it is obvious
#: in the elapsed wall-clock (the tests assert completion in a fraction).
LONG_POLL = 5.0


def test_sink_completed_off_loop_wakes_the_pump_immediately():
    """The sink finishes from a producer thread while the pump is parked
    on its wake event; on_done must cut the 5-second safety net short."""
    sched = EventLoopScheduler(poll_interval=LONG_POLL)
    # An open port keeps the run live (the pump otherwise declares a stall
    # with no ready/live source); it is never pushed to.
    port = sched.register_pushable()
    source = Pushable()
    sink = pull(source, collect())

    def finish_later():
        time.sleep(0.15)
        # Completing the stream off-loop: the sink's on_done callback (not
        # a dispatch round, not the safety net) must wake the pump.
        source.push("fed-from-outside")
        source.end()

    thread = threading.Thread(target=finish_later)
    started = time.monotonic()
    thread.start()
    try:
        sched.run(sink, timeout=30)
    finally:
        thread.join()
        port.end()
        sched.close()
    elapsed = time.monotonic() - started
    assert sink.done
    assert sink.result() == ["fed-from-outside"]
    # Well under the poll interval: the wake came from on_done.
    assert elapsed < LONG_POLL / 2, elapsed
    assert sched.wakeups >= 1


def test_already_done_sink_returns_without_waiting():
    sched = EventLoopScheduler(poll_interval=LONG_POLL)
    sched.register_pushable()  # keeps the scheduler live, never used
    source = Pushable()
    sink = pull(source, collect())
    source.push(1)
    source.end()
    assert sink.done
    started = time.monotonic()
    try:
        sched.run(sink, timeout=30)
    finally:
        sched.close()
    assert time.monotonic() - started < 1.0
    assert sink.result() == [1]


def test_on_done_registration_does_not_linger_across_runs():
    """A second run of the same scheduler registers fresh callbacks; the
    completed first sink's callback list was cleared on completion, so
    nothing accumulates and the second run still terminates promptly."""
    sched = EventLoopScheduler(poll_interval=LONG_POLL)
    port = sched.register_pushable()

    def run_once(tag):
        source = Pushable()
        sink = pull(source, collect())

        def finish_later():
            time.sleep(0.1)
            source.push(tag)
            source.end()

        thread = threading.Thread(target=finish_later)
        started = time.monotonic()
        thread.start()
        try:
            sched.run(sink, timeout=30)
        finally:
            thread.join()
        assert sink.result() == [tag]
        assert time.monotonic() - started < LONG_POLL / 2
        assert not sink._callbacks  # cleared on completion

    run_once("first")
    run_once("second")
    port.end()
    sched.close()
