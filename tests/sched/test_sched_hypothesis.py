"""Property-based tests of the event-loop dispatch core (hypothesis).

Mirror of ``tests/pullstream/test_split_merge_hypothesis.py`` for the
scheduler's fair round-robin dispatcher: randomised populations of scripted
sources — each with its own queue of asks and its own on/off readiness
schedule — are driven through :meth:`EventLoopScheduler.dispatch_round`
(a plain synchronous method, no asyncio required), checking on every
execution that

* every queued ask is dispatched **exactly once** — never duplicated,
  never dropped — regardless of the readiness interleaving;
* per-source FIFO order is preserved;
* dispatch is **fair**: within one round no source dispatches twice, and a
  source that is ready at every round is never starved by its siblings
  (it makes progress every round until drained).
"""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.sched import EventLoopScheduler
from repro.sched.sources import EventSource


class ScriptedSource(EventSource):
    """An event source with a scripted readiness schedule and a queue of asks.

    ``ready_pattern`` is consulted by round index (cycled); a source is
    ready when its pattern says so *and* it still has queued asks.  Each
    dispatch pops exactly one ask and records it in the shared journal.
    """

    def __init__(self, index, asks, ready_pattern, journal, round_box):
        self.index = index
        self.queue = deque(asks)
        self.ready_pattern = ready_pattern
        self.journal = journal
        self.round_box = round_box

    def _scheduled_ready(self):
        pattern = self.ready_pattern
        return pattern[self.round_box[0] % len(pattern)]

    def ready(self):
        return bool(self.queue) and self._scheduled_ready()

    def dispatch(self):
        assert self.ready(), "dispatch must only follow a positive ready()"
        ask = self.queue.popleft()
        self.journal.append((self.round_box[0], self.index, ask))
        return True

    def live(self):
        return bool(self.queue)


@settings(max_examples=80, deadline=None)
@given(
    queue_sizes=st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=6),
    patterns=st.lists(
        st.lists(st.booleans(), min_size=1, max_size=5).filter(any),
        min_size=1,
        max_size=6,
    ),
)
def test_dispatch_never_duplicates_or_drops_an_ask(queue_sizes, patterns):
    sched = EventLoopScheduler()
    journal = []
    round_box = [0]
    sources = []
    for index, size in enumerate(queue_sizes):
        pattern = patterns[index % len(patterns)]
        asks = [(index, seq) for seq in range(size)]
        sources.append(
            sched.register(
                ScriptedSource(index, asks, pattern, journal, round_box)
            )
        )

    total = sum(queue_sizes)
    # Every pattern contains at least one ready round, so each source drains
    # within len(pattern) rounds per ask; the bound is generous.
    for _round in range(10 * (total + 1) * 6):
        if all(not source.queue for source in sources):
            break
        sched.dispatch_round()
        round_box[0] += 1
    assert all(not source.queue for source in sources), "every ask must drain"

    # Exactly once: the journal is a permutation of every queued ask.
    dispatched = [entry[2] for entry in journal]
    expected = [
        (index, seq)
        for index, size in enumerate(queue_sizes)
        for seq in range(size)
    ]
    assert sorted(dispatched) == sorted(expected)
    assert len(set(dispatched)) == len(dispatched)

    # Per-source FIFO order.
    for index in range(len(queue_sizes)):
        seqs = [ask[1] for ask in dispatched if ask[0] == index]
        assert seqs == sorted(seqs)

    # Fairness: within one round, one dispatch per source at most.
    for round_index in set(entry[0] for entry in journal):
        indices = [entry[1] for entry in journal if entry[0] == round_index]
        assert len(indices) == len(set(indices))


@settings(max_examples=40, deadline=None)
@given(
    queue_sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=2, max_size=5),
)
def test_always_ready_sources_are_never_starved(queue_sizes):
    """With every source permanently ready, each makes progress every round
    until it drains — the strict-rotation guarantee that keeps one hot pool
    from starving a channel."""
    sched = EventLoopScheduler()
    journal = []
    round_box = [0]
    sources = [
        sched.register(
            ScriptedSource(index, [(index, seq) for seq in range(size)], [True],
                           journal, round_box)
        )
        for index, size in enumerate(queue_sizes)
    ]

    for _round in range(max(queue_sizes)):
        sched.dispatch_round()
        round_box[0] += 1
    assert all(not source.queue for source in sources)

    # Every source dispatched exactly once per round while it had asks.
    for index, size in enumerate(queue_sizes):
        rounds = [entry[0] for entry in journal if entry[1] == index]
        assert rounds == list(range(size))
