"""Fault-injection churn with heterogeneous sources on one event loop.

Mirror of ``tests/core/test_sharded_churn.py`` with the asyncio scheduler in
the driver's seat and a **mixed population of 220 workers**: two process
pools (real OS processes, futures completing on executor threads), one
simulated network channel (frames delivered through a virtual-time
scheduler stepped on the loop), and 217 driver-backed workers churning with
crash-stop failures.  The test asserts that exactly-once delivery, the
per-shard accounting invariants, and the participation of every transport
survive the churn — and that every stream callback still runs on the one
driving thread.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.distributed_map import DistributedMap
from repro.net.channel import SimChannel
from repro.pullstream import async_map, collect, pull, values
from repro.sched import EventLoopScheduler
from repro.sched.sources import EventSource
from repro.sim.clock import VirtualClock
from repro.sim.failures import ChurnModel
from repro.sim.network import LAN_PROFILE, NetworkModel
from repro.sim.scheduler import Scheduler

SHARDS = 4
WORKERS = 220
DRIVERS = WORKERS - 3  # two pools and one channel complete the population
INPUTS = 500


class DriverStepSource(EventSource):
    """Step the manual sub-stream drivers from the event loop, fairly.

    One dispatch delivers the pending results of exactly one driver
    (rotating), so the driver population shares rounds with the pools and
    the simulated channel instead of flushing all at once.
    """

    def __init__(self, drivers):
        self.drivers = drivers
        self._cursor = 0

    def _deliverable(self, driver):
        return not driver.crashed and len(driver.pending_results) > 0

    def ready(self):
        return any(self._deliverable(driver) for driver in self.drivers)

    def dispatch(self):
        count = len(self.drivers)
        for offset in range(count):
            driver = self.drivers[(self._cursor + offset) % count]
            if self._deliverable(driver):
                self._cursor = (self._cursor + offset + 1) % count
                driver.deliver_all()
                return True
        return False

    def live(self):
        return self.ready()


def lend(dmap):
    box = []
    dmap.lender.lend_stream(lambda err, sub: box.append(sub))
    return box[0]


def build_mixed_run(dmap, sched, substream_driver, seed=1234):
    """Attach pools, a simulated channel and churning drivers to *dmap*."""
    input_values = list(range(INPUTS))
    output = pull(values(input_values), dmap, collect())

    main_thread = threading.get_ident()
    callback_threads = set()

    # --- two process pools (one OS process each) ---------------------------
    pool_handles = [
        dmap.add_process_pool(
            "repro.pool.workloads:times10",
            processes=1,
            batch_size=1,
            worker_id=f"pool-{index}",
        )
        for index in range(2)
    ]

    # --- one simulated channel, stepped on the loop ------------------------
    sim = Scheduler(VirtualClock())
    network = NetworkModel(default_profile=LAN_PROFILE, seed=seed)
    channel = SimChannel(sim, network, "master", "volunteer",
                         heartbeats_enabled=False)
    channel.connect(lambda _err, _chan: None)
    sim.run_until(sim.now + 1.0)
    assert channel.established

    def remote_fn(value, cb):
        callback_threads.add(threading.get_ident())
        cb(None, value * 10)

    pull(channel.remote.duplex.source, async_map(remote_fn),
         channel.remote.duplex.sink)
    channel_handle = dmap.add_channel(channel.local.duplex, worker_id="channel")
    sched.register_sim(sim)

    # --- 217 churning driver-backed workers --------------------------------
    worker_ids = [f"driver-{index}" for index in range(DRIVERS)]
    churn = ChurnModel(mean_uptime=8.0, seed=seed)
    schedule = churn.schedule_for(worker_ids, horizon=12.0)
    crash_points = {}
    for event in schedule:
        if event.kind == "crash" and event.worker_id not in crash_points:
            crash_points[event.worker_id] = int(event.time)
    survivors = [wid for wid in worker_ids if wid not in crash_points]
    assert survivors, "churn model crashed every worker; adjust parameters"
    assert len(crash_points) >= DRIVERS // 2, "churn should be substantial"

    drivers = []
    surviving_shards = {pool_handles[0].shard, pool_handles[1].shard,
                        channel_handle.shard}
    for worker_id in worker_ids:
        sub = lend(dmap)  # least-loaded placement
        if worker_id in crash_points:
            driver = substream_driver(
                sub, crash_after=crash_points[worker_id], auto_deliver=False
            )
        else:
            driver = substream_driver(sub, auto_deliver=False, max_in_flight=1)
            surviving_shards.add(sub.shard)
        drivers.append(driver.start())
    # Liveness precondition: every shard keeps at least one server that
    # never crashes (a pool, the channel, or a surviving driver).
    assert surviving_shards >= set(range(SHARDS)), surviving_shards

    sched.register(DriverStepSource(drivers))
    return (input_values, output, pool_handles, channel_handle,
            callback_threads, main_thread)


def assert_accounting(dmap, workers_attached):
    total = dmap.stats
    assert total.values_read == INPUTS
    assert total.results_delivered == INPUTS
    assert total.substreams_opened == workers_attached
    assert total.values_lent == INPUTS + total.values_relent
    assert sum(total.lent_per_substream.values()) == total.values_lent
    for lender in dmap.lender.shards:
        assert lender.outstanding == 0
        assert lender.relendable == 0


@pytest.mark.parametrize("ordered", [True, False], ids=["ordered", "unordered"])
def test_mixed_sources_survive_churn(substream_driver, ordered):
    sched = EventLoopScheduler()
    dmap = DistributedMap(ordered=ordered, batch_size=1, shards=SHARDS,
                          scheduler=sched)
    try:
        (inputs, output, pool_handles, channel_handle,
         callback_threads, main_thread) = build_mixed_run(
            dmap, sched, substream_driver
        )
        dmap.drive(output, timeout=120)

        expected = [value * 10 for value in inputs]
        if ordered:
            # Exactly once, in global input order.
            assert output.result() == expected
        else:
            # Exactly once: a permutation, nothing lost or duplicated.
            assert sorted(output.result()) == expected
        assert_accounting(dmap, WORKERS)

        # Every transport participated in the computation.
        for handle in pool_handles:
            assert handle.pool.results_returned > 0
        assert dmap.stats.results_per_substream[
            (channel_handle.shard, channel_handle.substream.id)
        ] > 0
        # The single-threaded pull-stream invariant held throughout.
        assert callback_threads == {main_thread}
    finally:
        dmap.close()
        sched.close()
