"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.network import LAN_PROFILE, NetworkModel
from repro.sim.scheduler import Scheduler


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.slow (the full scenario matrix)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def scheduler() -> Scheduler:
    """A fresh virtual-time scheduler."""
    return Scheduler(VirtualClock())


@pytest.fixture
def network() -> NetworkModel:
    """A LAN network model with a fixed seed (deterministic jitter)."""
    return NetworkModel(default_profile=LAN_PROFILE, seed=123)


class SubStreamDriver:
    """Manually drive a StreamLender sub-stream like a worker channel would.

    The driver borrows values from the sub-stream source, transforms them
    with *fn*, and (optionally) delivers the results back through the
    sub-stream sink.  Its behaviour is controllable so tests can model slow
    workers, crashing workers and workers that hold results back.
    """

    def __init__(self, substream, fn=lambda value: value * 10, auto_deliver=True,
                 crash_after=None, max_in_flight=None):
        from collections import deque

        from repro.pullstream import DONE, values

        self._DONE = DONE
        self._values = values
        self.substream = substream
        self.fn = fn
        self.auto_deliver = auto_deliver
        self.crash_after = crash_after
        #: like the Limiter window: stop borrowing while this many results
        #: are pending delivery (None = unbounded).  Defaults to 1 when
        #: auto_deliver is off so several drivers can share the work.
        if max_in_flight is not None:
            self.max_in_flight = max_in_flight
        elif auto_deliver or crash_after is not None:
            self.max_in_flight = None
        else:
            self.max_in_flight = 1
        self.borrowed = []
        self.pending_results = deque()
        self.finished = False
        self.crashed = False
        self._delivering = False
        self._result_cb = None
        self._paused = False

    def start(self):
        """Begin borrowing values; also wire the result side."""
        self.substream.sink(self._result_source)
        self._ask()
        return self

    # -- borrow side ---------------------------------------------------------
    def _ask(self):
        if self.crashed or self.finished:
            return
        if self.crash_after is not None and len(self.borrowed) >= self.crash_after:
            self.crash()
            return
        self.substream.source(None, self._answer)

    def _answer(self, end, value):
        if end is not None:
            self.finished = True
            self._flush_end()
            return
        self.borrowed.append(value)
        self.pending_results.append(self.fn(value))
        if self.auto_deliver:
            self._flush_results()
        if (
            self.max_in_flight is not None
            and len(self.pending_results) >= self.max_in_flight
        ):
            self._paused = True
            return
        self._ask()

    # -- result side ----------------------------------------------------------
    def _result_source(self, end, cb):
        if end is not None:
            cb(end, None)
            return
        if self.crashed:
            # A crashed worker never answers; simulate by erroring the stream.
            from repro.errors import WorkerCrashed

            cb(WorkerCrashed("driver"), None)
            return
        if self.pending_results:
            cb(None, self.pending_results.popleft())
            return
        if self.finished:
            cb(self._DONE, None)
            return
        self._result_cb = cb

    def _flush_results(self):
        if self._result_cb is not None and self.pending_results:
            cb, self._result_cb = self._result_cb, None
            cb(None, self.pending_results.popleft())

    def _flush_end(self):
        if self._result_cb is not None and not self.pending_results:
            cb, self._result_cb = self._result_cb, None
            cb(self._DONE, None)

    def deliver_all(self):
        """Deliver every pending result (when auto_deliver=False)."""
        while self.pending_results and self._result_cb is not None:
            self._flush_results()
        self._flush_results()
        if self._paused and not self.pending_results and not self.crashed:
            self._paused = False
            self._ask()
        if self.finished:
            self._flush_end()

    def crash(self):
        """Crash-stop the worker: stop borrowing, never deliver again."""
        self.crashed = True
        if self._result_cb is not None:
            from repro.errors import WorkerCrashed

            cb, self._result_cb = self._result_cb, None
            cb(WorkerCrashed("driver"), None)


@pytest.fixture
def substream_driver():
    """Factory fixture returning :class:`SubStreamDriver` instances."""

    def make(substream, **kwargs):
        return SubStreamDriver(substream, **kwargs)

    return make


@pytest.fixture
def echo_fn():
    """A trivial Pando processing function echoing its input."""

    def echo(value, cb):
        cb(None, value)

    return echo


@pytest.fixture
def square_fn():
    """A Pando processing function returning the square of its input."""

    def square(value, cb):
        cb(None, value * value)

    return square
