"""Tests for the sharded multi-master lender and the shards mode of
DistributedMap."""

from __future__ import annotations

import pytest

from repro.core import DistributedMap, ShardedLender
from repro.errors import PandoError
from repro.pullstream import collect, pull, values


def lend(lender, **kwargs):
    box = []
    lender.lend_stream(lambda err, sub: box.append((err, sub)), **kwargs)
    err, sub = box[0]
    assert err is None
    return sub


class TestShardedLender:
    def test_global_order_across_shards(self, substream_driver):
        sharded = ShardedLender(shards=3)
        inputs = list(range(30))
        output = pull(values(inputs), sharded, collect())
        for shard in range(3):
            substream_driver(lend(sharded, shard=shard)).start()
        assert output.result() == [value * 10 for value in inputs]

    def test_each_shard_has_its_own_stats(self, substream_driver):
        sharded = ShardedLender(shards=2)
        inputs = list(range(10))
        output = pull(values(inputs), sharded, collect())
        substream_driver(lend(sharded, shard=0)).start()
        substream_driver(lend(sharded, shard=1)).start()
        assert output.result() == [value * 10 for value in inputs]
        per_shard = sharded.shard_stats
        assert [stats.values_read for stats in per_shard] == [5, 5]
        assert [stats.results_delivered for stats in per_shard] == [5, 5]
        aggregate = sharded.stats
        assert aggregate.values_read == 10
        assert aggregate.results_delivered == 10
        assert sum(aggregate.lent_per_substream.values()) == aggregate.values_lent

    def test_least_loaded_placement_spreads_workers(self):
        sharded = ShardedLender(shards=3)
        pull(values(list(range(9))), sharded, collect())
        subs = [lend(sharded) for _ in range(6)]
        assert [sub.shard for sub in subs] == [0, 1, 2, 0, 1, 2]

    def test_crash_stop_rebalances_placement(self, substream_driver):
        sharded = ShardedLender(shards=2)
        pull(values(list(range(100))), sharded, collect())
        first = lend(sharded)   # shard 0
        second = lend(sharded)  # shard 1
        assert (first.shard, second.shard) == (0, 1)
        # Crash the shard-0 worker: the next two attachments go to shard 0
        # first (it has fewer open sub-streams), then shard 1.
        driver = substream_driver(first, crash_after=2, auto_deliver=False).start()
        driver.crash()
        assert lend(sharded).shard == 0
        assert lend(sharded).shard == 1

    def test_backpressure_tie_break_prefers_deepest_branch_buffer(
        self, substream_driver
    ):
        """With ``max_buffer`` set, an equally-loaded tie goes to the shard
        whose split-branch buffer is deepest: that shard's stall is what is
        parking the shared input pump, so that is where an extra worker
        unblocks the whole pipeline."""
        sharded = ShardedLender(shards=2, max_buffer=2)
        pull(values(list(range(12))), sharded, collect())
        # Shard 0: a hungry worker that drains its slice, forcing shard 1's
        # branch buffer up to the cap (which parks the pump).  Shard 1: an
        # idle worker that never asks.
        substream_driver(lend(sharded, shard=0)).start()
        lend(sharded, shard=1)
        assert sharded._branches.buffer_depths == [0, 2]
        # Open sub-streams tie 1-1; the deeper branch buffer must win.
        assert sharded.least_loaded_shard() == 1
        assert lend(sharded).shard == 1

    def test_tie_break_without_buffer_cap_keeps_index_order(
        self, substream_driver
    ):
        """Unbounded splitter: buffer depths are not consulted (the pump is
        never parked by a backlog), so the equal-load tie falls back to the
        lowest index as before."""
        sharded = ShardedLender(shards=2)
        pull(values(list(range(12))), sharded, collect())
        substream_driver(lend(sharded, shard=0)).start()
        lend(sharded, shard=1)
        assert sharded._branches.buffer_depths[1] > 0
        assert sharded.least_loaded_shard() == 0
        assert lend(sharded).shard == 0

    def test_worker_crash_is_contained_to_its_shard(self, substream_driver):
        sharded = ShardedLender(shards=2)
        inputs = list(range(20))
        output = pull(values(inputs), sharded, collect())
        crasher = substream_driver(
            lend(sharded, shard=0), crash_after=3, auto_deliver=False
        ).start()
        healthy = [
            substream_driver(lend(sharded, shard=shard), auto_deliver=False)
            .start()
            for shard in (0, 1)
        ]
        crasher.crash()
        for _ in range(10 * len(inputs)):
            if output.done:
                break
            for driver in healthy:
                driver.deliver_all()
        assert output.done
        assert output.result() == [value * 10 for value in inputs]
        stats = sharded.shard_stats
        assert stats[0].substreams_failed == 1
        assert stats[1].substreams_failed == 0
        assert stats[0].values_relent >= 1
        assert sharded.outstanding == 0
        assert sharded.relendable == 0

    def test_dead_shard_cannot_wedge_a_completed_stream(self, substream_driver):
        """Once every read value is delivered, the merged output terminates
        even though one shard's only worker crashed and can never answer the
        joiner's final ask (the total() short-circuit)."""
        sharded = ShardedLender(shards=2)
        inputs = [0, 1, 2]
        output = pull(values(inputs), sharded, collect())
        # Shard 1's worker holds its results back until the end, then
        # crashes right after delivering — mirroring a worker that dies
        # between its last answer and the stream end.
        slow = substream_driver(
            lend(sharded, shard=1), auto_deliver=False, max_in_flight=1
        ).start()
        fast = substream_driver(lend(sharded, shard=0)).start()
        assert not output.done
        slow.deliver_all()
        slow.crash()
        assert output.done
        assert output.result() == [0, 10, 20]

    def test_unordered_delivers_in_completion_order(self, substream_driver):
        """A fast shard's results are not held back behind a slow sibling:
        the first deliveries all come from shard 1 while shard 0 stalls."""
        from repro.pullstream import tap

        sharded = ShardedLender(shards=2, ordered=False)
        inputs = list(range(10))
        delivered = []
        output = pull(values(inputs), sharded, tap(delivered.append), collect())
        slow = substream_driver(
            lend(sharded, shard=0), auto_deliver=False, max_in_flight=1
        ).start()
        fast = substream_driver(lend(sharded, shard=1)).start()
        # Shard 1 (odd inputs) has delivered everything it can; shard 0
        # holds its first result back.  In ordered mode nothing would have
        # reached the sink yet (global value 0 belongs to shard 0).
        assert not output.done
        assert delivered == [value * 10 for value in (1, 3, 5, 7, 9)]
        slow.deliver_all()
        while not output.done:
            slow.deliver_all()
        assert sorted(output.result()) == [value * 10 for value in inputs]

    def test_unordered_dead_shard_cannot_wedge_a_completed_stream(
        self, substream_driver
    ):
        """Unordered mode keeps the total() short-circuit: once every read
        value has been delivered, the merge terminates without waiting on a
        shard whose only worker crashed."""
        sharded = ShardedLender(shards=2, ordered=False)
        output = pull(values([0, 1, 2]), sharded, collect())
        slow = substream_driver(
            lend(sharded, shard=1), auto_deliver=False, max_in_flight=1
        ).start()
        substream_driver(lend(sharded, shard=0)).start()
        assert not output.done
        slow.deliver_all()
        slow.crash()
        assert output.done
        assert sorted(output.result()) == [0, 10, 20]

    def test_unordered_worker_crash_relends_within_its_shard(
        self, substream_driver
    ):
        sharded = ShardedLender(shards=2, ordered=False)
        inputs = list(range(20))
        output = pull(values(inputs), sharded, collect())
        crasher = substream_driver(
            lend(sharded, shard=0), crash_after=3, auto_deliver=False
        ).start()
        healthy = [
            substream_driver(lend(sharded, shard=shard), auto_deliver=False)
            .start()
            for shard in (0, 1)
        ]
        crasher.crash()
        for _ in range(10 * len(inputs)):
            if output.done:
                break
            for driver in healthy:
                driver.deliver_all()
        assert output.done
        assert sorted(output.result()) == [value * 10 for value in inputs]
        stats = sharded.shard_stats
        assert stats[0].substreams_failed == 1
        assert stats[1].substreams_failed == 0
        assert stats[0].values_relent >= 1
        assert sharded.outstanding == 0
        assert sharded.relendable == 0

    def test_input_error_propagates_like_a_single_lender(self, substream_driver):
        """Regression: when the input errors after its last value, the merged
        output must report the error (as one StreamLender does), not present
        the values delivered so far as a successful completion."""
        boom = RuntimeError("input failed")
        served = iter(range(4))

        def erroring(end, cb):
            if end is not None:
                cb(end, None)
                return
            try:
                cb(None, next(served))
            except StopIteration:
                cb(boom, None)

        sharded = ShardedLender(shards=2)
        output = pull(erroring, sharded, collect())
        substream_driver(lend(sharded, shard=0)).start()
        substream_driver(lend(sharded, shard=1)).start()
        assert output.done
        assert output.end is boom
        with pytest.raises(RuntimeError):
            output.result()

    def test_unconnected_shard_validation(self):
        with pytest.raises(ValueError):
            ShardedLender(shards=0)
        sharded = ShardedLender(shards=2)
        pull(values([1]), sharded, collect())
        with pytest.raises(ValueError):
            lend(sharded, shard=5)

    def test_double_connect_raises(self):
        sharded = ShardedLender(shards=2)
        sharded(values([1]))
        with pytest.raises(Exception):
            sharded(values([2]))

    def test_downstream_abort_ends_every_shard(self, substream_driver):
        from repro.pullstream import count, take

        sharded = ShardedLender(shards=2)
        output = pull(count(100), sharded, take(4), collect())
        substream_driver(lend(sharded, shard=0), fn=lambda v: v).start()
        substream_driver(lend(sharded, shard=1), fn=lambda v: v).start()
        assert output.done
        assert output.result() == [1, 2, 3, 4]
        assert sharded.ended
        # Lending after the abort reports the termination instead of a sub.
        late = []
        sharded.lend_stream(lambda err, sub: late.append((err, sub)))
        assert late[0][1] is None
        assert late[0][0] is not None


class TestDistributedMapSharded:
    def test_local_workers_spread_and_preserve_order(self):
        dmap = DistributedMap(shards=2, batch_size=2)
        sink = pull(values(list(range(20))), dmap, collect())
        handles = [
            dmap.add_local_worker(lambda v, cb: cb(None, v * v)) for _ in range(2)
        ]
        assert [handle.shard for handle in handles] == [0, 1]
        assert sink.result() == [v * v for v in range(20)]
        assert [s.results_delivered for s in dmap.lender.shard_stats] == [10, 10]

    def test_pools_default_to_non_blocking_and_drive_completes(self):
        dmap = DistributedMap(shards=2, batch_size=2)
        sink = pull(values(list(range(12))), dmap, collect())
        try:
            first = dmap.add_process_pool("repro.pool.workloads:square", processes=1)
            second = dmap.add_process_pool("repro.pool.workloads:square", processes=1)
            assert not first.pool.blocking and not second.pool.blocking
            assert (first.shard, second.shard) == (0, 1)
            dmap.drive(sink, timeout=60)
            assert sink.result() == [v * v for v in range(12)]
        finally:
            dmap.close()

    def test_single_master_pools_stay_blocking(self):
        dmap = DistributedMap(batch_size=2)
        sink = pull(values([1, 2, 3]), dmap, collect())
        try:
            handle = dmap.add_process_pool("repro.pool.workloads:echo", processes=1)
            assert handle.pool.blocking
            assert sink.result() == [1, 2, 3]
            dmap.drive(sink)  # no-op on an already-completed blocking map
        finally:
            dmap.close()

    def test_task_timeout_rejected_on_non_blocking_pools(self):
        """Regression: a sharded map silently dropped ``task_timeout`` (the
        non-blocking source never awaits a future, so the timeout could not
        fire); it is now rejected up front."""
        dmap = DistributedMap(shards=2)
        pull(values([1, 2]), dmap, collect())
        with pytest.raises(PandoError):
            dmap.add_process_pool(
                "repro.pool.workloads:echo", processes=1, task_timeout=0.1
            )
        assert dmap._pools == []
        # Explicitly blocking pools still accept it, even on a sharded map.
        handle = dmap.add_process_pool(
            "repro.pool.workloads:echo",
            processes=1,
            task_timeout=5.0,
            blocking=True,
        )
        assert handle.pool.blocking
        dmap.close()

    def test_drive_timeout_fires_even_while_progressing(self):
        """Regression: the drive deadline was only checked on no-progress
        iterations, so a steadily progressing run could overshoot an
        arbitrary timeout."""
        dmap = DistributedMap(shards=2, batch_size=1)
        sink = pull(
            values([{"sleep": 0.05, "index": i} for i in range(40)]),
            dmap,
            collect(),
        )
        try:
            for _ in range(2):
                dmap.add_process_pool(
                    "repro.pool.workloads:sleep_echo", processes=1, batch_size=1
                )
            with pytest.raises(PandoError, match="timed out"):
                dmap.drive(sink, timeout=0.15)
        finally:
            dmap.close()

    def test_unordered_sharded_map_local_workers(self):
        dmap = DistributedMap(ordered=False, shards=2)
        assert not dmap.lender.ordered
        sink = pull(values(list(range(20))), dmap, collect())
        handles = [
            dmap.add_local_worker(lambda v, cb: cb(None, v * v)) for _ in range(2)
        ]
        assert [handle.shard for handle in handles] == [0, 1]
        assert sorted(sink.result()) == [v * v for v in range(20)]
        assert dmap.stats.results_delivered == 20

    def test_unordered_sharded_pools_drive_completes(self):
        dmap = DistributedMap(ordered=False, shards=2, batch_size=2)
        sink = pull(values(list(range(12))), dmap, collect())
        try:
            for _ in range(2):
                dmap.add_process_pool("repro.pool.workloads:square", processes=1)
            dmap.drive(sink, timeout=60)
            assert sorted(sink.result()) == [v * v for v in range(12)]
        finally:
            dmap.close()

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError):
            DistributedMap(shards=0)

    def test_split_buffer_requires_shards(self):
        with pytest.raises(ValueError):
            DistributedMap(split_buffer=4)
        with pytest.raises(ValueError):
            DistributedMap(shards=2, split_buffer=0)

    def test_split_buffer_threads_through_to_the_splitter(self):
        dmap = DistributedMap(shards=2, split_buffer=3)
        assert dmap.lender.max_buffer == 3
        sink = pull(values(list(range(10))), dmap, collect())
        for _ in range(2):
            dmap.add_local_worker(lambda v, cb: cb(None, v))
        assert sink.result() == list(range(10))
        assert dmap.lender._branches.max_buffer == 3

    def test_drive_stall_is_diagnosed(self):
        """A shard with no worker cannot progress; drive() raises instead of
        spinning forever."""
        dmap = DistributedMap(shards=2)
        sink = pull(values([1, 2, 3, 4]), dmap, collect())
        dmap.add_local_worker(lambda v, cb: cb(None, v))  # serves shard 0 only
        assert not sink.done
        with pytest.raises(PandoError):
            dmap.drive(sink, timeout=1)

    def test_pool_crash_values_relent_within_shard(self):
        """A pool task failure on one shard re-lends the borrowed values to a
        replacement worker on the same shard; the other shard is untouched."""
        dmap = DistributedMap(shards=2, batch_size=2)
        sink = pull(values(list(range(8))), dmap, collect())
        try:
            bad = dmap.add_process_pool(
                "tests.core.test_sharding:always_fail", processes=1
            )
            good = dmap.add_process_pool("repro.pool.workloads:echo", processes=1)
            with pytest.raises(PandoError):
                dmap.drive(sink, timeout=30)  # shard 0 lost its only worker
            assert bad.closed
            assert dmap.lender.shards[bad.shard].relendable >= 1
            # A replacement local worker on the crashed shard completes it.
            dmap.add_local_worker(lambda v, cb: cb(None, v))
            dmap.drive(sink, timeout=30)
            assert sink.result() == list(range(8))
        finally:
            dmap.close()

    def test_sharded_stats_property_aggregates(self):
        dmap = DistributedMap(shards=2)
        sink = pull(values(list(range(6))), dmap, collect())
        for _ in range(2):
            dmap.add_local_worker(lambda v, cb: cb(None, v))
        sink.result()
        assert dmap.stats.results_delivered == 6
        assert dmap.stats.values_read == 6


def always_fail(value):
    raise RuntimeError(f"no can do: {value!r}")
