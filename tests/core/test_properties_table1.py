"""Executable version of the paper's Table 1: programming-model properties.

Each test exercises one row of Table 1 on the public API, so this module also
serves as the reproduction artefact for experiment T1 (see DESIGN.md).
"""

from __future__ import annotations


from repro import DistributedMap
from repro.core import StreamLender
from repro.pullstream import collect, from_iterable, pull, take, values


class TestTable1Properties:
    def test_streaming_map(self, square_fn):
        """Streaming Map: x1, x2, ... -> f(x1), f(x2), ..."""
        dmap = DistributedMap()
        output = pull(values([1, 2, 3, 4, 5]), dmap, collect())
        dmap.add_local_worker(square_fn)
        assert output.result() == [1, 4, 9, 16, 25]

    def test_ordered_outputs(self):
        """Ordered: outputs provided in input order even with several workers
        finishing at different times."""
        lender = StreamLender()
        output = pull(values(list(range(20))), lender, collect())
        subs = []
        for _ in range(3):
            lender.lend_stream(lambda err, sub: subs.append(sub))
        # Manually interleave: each sub-stream takes values one at a time and
        # results are delivered in reverse order of borrowing.
        borrowed = {sub.id: [] for sub in subs}
        for _round in range(10):
            for sub in subs:
                sub.source(None, lambda end, value, s=sub: (
                    borrowed[s.id].append(value) if end is None else None
                ))
        for sub in reversed(subs):
            sub.sink(values([value * 2 for value in borrowed[sub.id]]))
        assert output.result() == [value * 2 for value in range(20)]

    def test_dynamic_workers_join_any_time(self, square_fn):
        """Dynamic: new devices may join at any time during execution."""
        dmap = DistributedMap()
        output = pull(values(list(range(10))), dmap, collect())
        assert not output.done
        dmap.add_local_worker(square_fn)      # joins after the stream started
        assert output.done
        dmap.add_local_worker(square_fn)      # joining after completion is harmless
        assert output.result() == [value ** 2 for value in range(10)]

    def test_unbounded_number_of_participants(self, square_fn):
        """Unbounded: no a-priori limit on the number of participants."""
        dmap = DistributedMap()
        output = pull(values(list(range(64))), dmap, collect())
        for _ in range(50):
            dmap.add_local_worker(square_fn)
        assert len(dmap.workers) == 50
        assert output.result() == [value ** 2 for value in range(64)]

    def test_lazy_inputs_read_when_resources_available(self):
        """Lazy: inputs are read only when computing resources are available."""
        materialised = []

        def generator():
            index = 0
            while True:
                materialised.append(index)
                yield index
                index += 1

        dmap = DistributedMap()
        output = pull(from_iterable(generator()), dmap, take(5), collect())
        assert materialised == []            # nothing read before a worker joins
        dmap.add_local_worker(lambda v, cb: cb(None, v))
        assert output.result() == [0, 1, 2, 3, 4]
        assert len(materialised) < 10        # far fewer than an eager read

    def test_fault_tolerant_crash_stop(self, substream_driver):
        """Fault-tolerant: crash-stop failures are tolerated transparently."""
        lender = StreamLender()
        output = pull(values(list(range(9))), lender, collect())
        crashing = []
        lender.lend_stream(lambda err, sub: crashing.append(sub))
        substream_driver(crashing[0], crash_after=3, auto_deliver=False).start()
        healthy = []
        lender.lend_stream(lambda err, sub: healthy.append(sub))
        substream_driver(healthy[0]).start()
        assert output.result() == [value * 10 for value in range(9)]

    def test_conservative_single_copy_at_a_time(self, substream_driver):
        """Conservative: a value is submitted to at most one device at a time,
        so the total work equals the input size plus re-lent values only."""
        lender = StreamLender()
        output = pull(values(list(range(10))), lender, collect())
        subs = []
        for _ in range(3):
            lender.lend_stream(lambda err, sub: subs.append(sub))
        drivers = [substream_driver(sub) for sub in subs]
        for driver in drivers:
            driver.start()
        output.result()
        total_borrowed = sum(len(driver.borrowed) for driver in drivers)
        assert total_borrowed == 10          # no value was processed twice
        assert lender.stats.values_relent == 0

    def test_adaptive_faster_devices_receive_more_inputs(self, substream_driver):
        """Adaptive: devices that ask more often receive more values."""
        lender = StreamLender()
        output = pull(values(list(range(30))), lender, collect())
        subs = []
        for _ in range(2):
            lender.lend_stream(lambda err, sub: subs.append(sub))
        fast = substream_driver(subs[0], auto_deliver=False, max_in_flight=4)
        slow = substream_driver(subs[1], auto_deliver=False, max_in_flight=1)
        fast.start()
        slow.start()
        # The fast worker is serviced four times as often.
        for _ in range(60):
            if output.done:
                break
            fast.deliver_all()
            if _ % 4 == 0:
                slow.deliver_all()
        for _ in range(10):
            if output.done:
                break
            fast.deliver_all()
            slow.deliver_all()
        assert output.done
        assert len(fast.borrowed) > len(slow.borrowed)
