"""Tests for the stubborn retry module (failure-prone external transfers)."""

from __future__ import annotations


from repro.core import stubborn
from repro.core.stubborn import StubbornStats
from repro.errors import ExternalTransferError
from repro.pullstream import collect, pull, values


class TestStubbornProcessing:
    def test_passes_through_on_success(self):
        module = stubborn(lambda v, cb: cb(None, v * 2))
        assert pull(values([1, 2, 3]), module, collect()).result() == [2, 4, 6]

    def test_retries_processing_failures(self):
        attempts = {"n": 0}

        def flaky(value, cb):
            attempts["n"] += 1
            if attempts["n"] % 2 == 1:
                cb(RuntimeError("transient"), None)
            else:
                cb(None, value)

        stats = StubbornStats()
        module = stubborn(flaky, stats=stats)
        assert pull(values([10, 20]), module, collect()).result() == [10, 20]
        assert stats.retries == 2
        assert stats.processing_failures == 2

    def test_retries_verification_failures(self):
        verified = {"n": 0}

        def verify(value, result, cb):
            verified["n"] += 1
            if verified["n"] == 1:
                cb(None, False)      # download not complete yet
            else:
                cb(None, True)

        stats = StubbornStats()
        module = stubborn(lambda v, cb: cb(None, v), verify=verify, stats=stats)
        assert pull(values([5]), module, collect()).result() == [5]
        assert stats.verification_failures == 1
        assert stats.retries == 1

    def test_gives_up_after_max_retries(self):
        module = stubborn(lambda v, cb: cb(RuntimeError("always"), None), max_retries=3)
        result = pull(values([1]), module, collect())
        assert isinstance(result.end, ExternalTransferError)

    def test_unlimited_retries_eventually_succeed(self):
        countdown = {"left": 25}

        def eventually(value, cb):
            if countdown["left"] > 0:
                countdown["left"] -= 1
                cb(RuntimeError("not yet"), None)
            else:
                cb(None, "done")

        assert pull(values([0]), stubborn(eventually), collect()).result() == ["done"]

    def test_exception_in_process_is_treated_as_failure(self):
        calls = {"n": 0}

        def raising(value, cb):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("bug in processing function")
            cb(None, value)

        assert pull(values([7]), stubborn(raising), collect()).result() == [7]

    def test_exception_in_verify_is_treated_as_failure(self):
        calls = {"n": 0}

        def verify(value, result, cb):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("verifier bug")
            cb(None, True)

        module = stubborn(lambda v, cb: cb(None, v), verify=verify)
        assert pull(values([3]), module, collect()).result() == [3]

    def test_stats_exposed_on_module(self):
        module = stubborn(lambda v, cb: cb(None, v))
        pull(values([1, 2]), module, collect())
        assert module.stats.attempts == 2
        assert module.stats.as_dict()["retries"] == 0

    def test_with_flaky_p2p_store(self):
        """End-to-end with the image-processing flaky store (paper 4.3)."""
        from repro.apps.imageproc import FlakyP2PStore, ImageProcessingApplication

        store = FlakyP2PStore(failure_rate=0.5, seed=3)
        app = ImageProcessingApplication(store=store)
        module = stubborn(
            app.process,
            verify=lambda value, result, cb: store.verify(value["tile_id"], result, cb),
        )
        inputs = list(app.generate_inputs(10))
        results = pull(values(inputs), module, collect()).result()
        assert len(results) == 10
        assert all(store.has_result(value["tile_id"]) for value in inputs)
        assert store.lost_uploads > 0  # failures actually happened and were retried
