"""Cancellation fan-out after a ``find`` hit (thread driver, no event loop).

Regression suite for the satellite of the scheduler PR: when an unordered
search aborts on its first hit, ``drive()`` must call ``Future.cancel()`` on
every pending not-yet-running future of each attached pool instead of
letting the cores grind through nonce ranges whose results nobody can
receive.  The tests measure the quantity the roadmap item named —
submitted-but-uncomputed tasks after the hit — with the fast path on and
off ("versus today").
"""

from __future__ import annotations

import time

import pytest

from repro.core.distributed_map import DistributedMap
from repro.pool import ProcessPoolWorker
from repro.pullstream import collect, find, pull, values

SLEEPER = "repro.pool.workloads:sleep_echo"


def run_search(cancel_on_abort):
    """One non-blocking pool, thread driver, find hit on the second value."""
    dmap = DistributedMap(batch_size=1)
    inputs = [{"sleep": 0.05, "i": index} for index in range(30)]
    sink = pull(values(inputs), dmap, find(lambda v: v["i"] == 1))
    try:
        dmap.add_process_pool(
            SLEEPER, processes=2, window=12, blocking=False
        )
        dmap.drive(sink, timeout=60, cancel_on_abort=cancel_on_abort)
        pool = next(iter(dmap.workers.values())).pool
        return sink, pool, pool.tasks_submitted, pool.tasks_cancelled
    finally:
        dmap.close()


class TestDriveCancellationFastPath:
    def test_fast_path_leaves_submitted_tasks_uncomputed(self):
        sink, pool, submitted, cancelled = run_search(cancel_on_abort=True)
        assert sink.aborted and sink.result()["i"] == 1
        # The window kept the pool loaded ahead of the hit...
        assert submitted > 2
        # ... and the fan-out cancelled the queued frames the moment the
        # hit aborted the stream: submitted > computed.
        assert cancelled > 0
        assert pool.results_returned < submitted

    def test_versus_today_nothing_is_cancelled_without_the_fast_path(self):
        sink, pool, submitted, cancelled_before_close = run_search(
            cancel_on_abort=False
        )
        assert sink.aborted
        # Today's behaviour: every submitted task stays queued/running until
        # close() reaps it — drive() itself cancels nothing.
        assert cancelled_before_close == 0
        # close() (in run_search's finally) then does the reaping, so the
        # measured drop of the fast path is exactly `cancelled > 0` above.
        assert pool.tasks_cancelled >= 0

    def test_fast_path_drops_more_uncomputed_work_than_today(self):
        """The headline measurement: with the fast path, strictly fewer
        submitted frames ever compute than without it."""
        _sink, _pool, submitted_fast, cancelled_fast = run_search(True)
        _sink2, pool_slow, _submitted_slow, _c = run_search(False)
        computed_ceiling_fast = submitted_fast - cancelled_fast
        assert cancelled_fast > 0
        assert computed_ceiling_fast < submitted_fast
        # Without the fast path every submitted frame was still eligible to
        # compute when drive() returned (cancellation count was zero then).
        assert pool_slow.results_returned <= _submitted_slow


class TestCancelPendingGuards:
    def test_cancel_pending_refuses_while_results_are_still_owed(self):
        """Cancelling mid-stream would desynchronise the frame/borrow
        pairing; without force the call must refuse."""
        with ProcessPoolWorker(SLEEPER, processes=1, blocking=False) as pool:
            sink_feed = values([{"sleep": 0.2, "i": 0}, {"sleep": 0.2, "i": 1}])
            pool.sink(sink_feed)
            assert pool.pending == 2
            assert pool.cancel_pending() == 0
            assert pool.pending == 2

    def test_forced_cancel_shuts_down_an_emptied_pool(self):
        with ProcessPoolWorker(SLEEPER, processes=1, blocking=False) as pool:
            pool.sink(values([{"sleep": 30.0, "i": 0}, {"sleep": 30.0, "i": 1}]))
            started = time.monotonic()
            # Give the executor a beat to start the head task so the tail
            # frame is deterministically cancellable.
            while pool._pending[0][0].running() and time.monotonic() - started < 5:
                break
            cancelled = pool.cancel_pending(force=True)
            assert cancelled >= 1
            assert pool.tasks_cancelled == cancelled

    def test_close_cancels_queued_frames_before_shutdown(self):
        pool = ProcessPoolWorker(SLEEPER, processes=1)
        pool.sink(values([{"sleep": 5.0, "i": index} for index in range(6)]))
        assert pool.pending == 6
        pool.close()
        # The head frame may already be running; everything queued behind it
        # must have been cancelled rather than computed.
        assert pool.tasks_cancelled >= 4
        assert pool.closed


class TestShmSlotReleaseOnAbort:
    """Cancellation fan-out on the shared-memory transport: aborting a
    find-style run must hand back every ring slot held by frames that were
    submitted but never ran (extends the fan-out coverage above to the
    transport's slot-ownership protocol)."""

    def run_shm_search(self):
        """One non-blocking shm pool, thread driver, hit on the second tile."""
        dmap = DistributedMap(batch_size=1)
        inputs = [index.to_bytes(4, "big") + bytes(8192) for index in range(30)]
        hit = (1).to_bytes(4, "big")
        sink = pull(values(inputs), dmap, find(lambda v: v[:4] == hit))
        try:
            handle = dmap.add_process_pool(
                "repro.pool.workloads:sleep_blob",
                processes=2,
                window=12,
                blocking=False,
                transport="shm",
            )
            dmap.drive(sink, timeout=60)
            return sink, handle.pool
        finally:
            dmap.close()

    def test_abort_releases_every_cancelled_frames_slots(self):
        sink, pool = self.run_shm_search()
        assert sink.aborted and sink.result()[:4] == (1).to_bytes(4, "big")
        # The window kept the ring loaded ahead of the hit, and the fan-out
        # cancelled the queued frames...
        assert pool.tasks_cancelled > 0
        ring = pool.ring
        # ... whose slots all came back: with one payload slot per
        # batch_size=1 frame, the release count covers every delivered AND
        # every cancelled frame — nothing waits for close().
        assert ring.slots_released >= pool.results_returned + pool.tasks_cancelled
        # close() (in run_shm_search's finally) reaped the remainder.
        assert ring.slots_acquired == ring.slots_released
        assert ring.in_use == 0

    def test_clean_shm_drain_releases_slots_without_cancelling(self):
        dmap = DistributedMap(batch_size=1)
        inputs = [index.to_bytes(4, "big") + bytes(8192) for index in range(6)]
        sink = pull(values(inputs), dmap, collect())
        try:
            handle = dmap.add_process_pool(
                "repro.pool.workloads:sleep_blob",
                processes=2,
                blocking=False,
                transport="shm",
            )
            dmap.drive(sink, timeout=60)
            assert sink.result() == inputs
            pool = handle.pool
            assert pool.tasks_cancelled == 0
            # Every slot was already back before close(): release-on-read.
            assert pool.ring.in_use == 0
            assert pool.ring.slots_acquired == pool.ring.slots_released
        finally:
            dmap.close()


@pytest.mark.parametrize("shards", [1, 2])
def test_unaborted_runs_cancel_nothing(shards):
    """The fast path must never fire on a clean drain."""
    dmap = DistributedMap(batch_size=1, shards=shards)
    inputs = [{"sleep": 0.001, "i": index} for index in range(8)]
    sink = pull(values(inputs), dmap, collect())
    try:
        for _ in range(shards):
            dmap.add_process_pool(SLEEPER, processes=1, blocking=False)
        dmap.drive(sink, timeout=60)
        assert sink.result() == inputs
        assert not sink.aborted
        for handle in dmap.workers.values():
            assert handle.pool.tasks_cancelled == 0
    finally:
        dmap.close()
