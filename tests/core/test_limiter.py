"""Tests for the Limiter module (in-flight window / batching)."""

from __future__ import annotations

import pytest

from repro.core import Limiter, limit
from repro.pullstream import (
    async_map,
    collect,
    drain,
    duplex_pair,
    pull,
    pushable,
    values,
)
from repro.pullstream.duplex import Duplex


def make_manual_channel():
    """A duplex whose sink eagerly buffers values and whose source releases
    results only when told to — models a network channel with the worker on
    the other side under the test's control."""
    received = []
    results = pushable()

    def sink(read):
        def ask():
            read(None, answer)

        def answer(end, value):
            if end is not None:
                return
            received.append(value)
            ask()

        ask()

    sink.pull_role = "sink"
    return Duplex(source=results, sink=sink), received, results


class TestLimiterWindow:
    def test_initial_window_is_respected(self):
        channel, received, _results = make_manual_channel()
        limiter = Limiter(channel, limit=2)
        pull(values(list(range(10))), limiter, drain())
        # Only `limit` values were forwarded even though the channel is eager.
        assert received == [0, 1]
        assert limiter.in_flight == 2

    def test_window_of_one(self):
        channel, received, _results = make_manual_channel()
        limiter = Limiter(channel, limit=1)
        pull(values([1, 2, 3]), limiter, drain())
        assert received == [1]

    def test_result_admits_next_value(self):
        channel, received, results = make_manual_channel()
        limiter = Limiter(channel, limit=2)
        output = pull(values(list(range(6))), limiter, collect())
        assert received == [0, 1]
        results.push("r0")
        assert received == [0, 1, 2]
        results.push("r1")
        results.push("r2")
        assert received == [0, 1, 2, 3, 4]
        for index in range(3, 6):
            results.push(f"r{index}")
        results.end()
        assert output.result() == [f"r{i}" for i in range(6)]

    def test_max_in_flight_statistic(self):
        channel, _received, results = make_manual_channel()
        limiter = Limiter(channel, limit=3)
        pull(values(list(range(10))), limiter, drain())
        assert limiter.max_in_flight == 3

    def test_invalid_window(self):
        channel, _received, _results = make_manual_channel()
        with pytest.raises(ValueError):
            Limiter(channel, limit=0)

    def test_limit_function_constructor(self):
        channel, _received, _results = make_manual_channel()
        assert isinstance(limit(channel, 4), Limiter)
        assert limit(channel := make_manual_channel()[0], 4).limit == 4


class TestLimiterEndToEnd:
    def test_through_a_loopback_worker(self):
        """Full composition of Figure 9: sub-stream -> limiter -> channel."""
        a, b = duplex_pair()
        # The "worker" on the far side of the channel applies f.
        pull(b.source, async_map(lambda v, cb: cb(None, v + 1)), b.sink)
        limiter = Limiter(a, limit=2)
        output = pull(values(list(range(20))), limiter, collect())
        assert output.result() == [value + 1 for value in range(20)]

    def test_in_flight_returns_to_zero(self):
        a, b = duplex_pair()
        pull(b.source, async_map(lambda v, cb: cb(None, v)), b.sink)
        limiter = Limiter(a, limit=4)
        pull(values(list(range(9))), limiter, drain())
        assert limiter.in_flight == 0

    def test_with_distributed_map_batching(self):
        """Larger Limiter windows do not change results, only overlap."""
        from repro.core import DistributedMap

        for batch_size in (1, 2, 8):
            dmap = DistributedMap(batch_size=batch_size)
            output = pull(values(list(range(12))), dmap, collect())
            dmap.add_local_worker(lambda v, cb: cb(None, v * 3))
            assert output.result() == [value * 3 for value in range(12)]


class TestGatedAskRelease:
    """Regression: a gated ask parked while the window was full must be
    answered when the channel's result stream terminates — otherwise the
    channel sink waits forever and the callback leaks."""

    def test_gated_ask_failed_on_source_error(self):
        channel, received, results = make_manual_channel()
        limiter = Limiter(channel, limit=2)
        output = pull(values(list(range(10))), limiter, collect())
        assert received == [0, 1]
        assert limiter._gated_ask is not None  # window full, sink ask parked
        results.error(RuntimeError("worker died"))
        assert output.done
        assert isinstance(output.end, RuntimeError)
        assert limiter._gated_ask is None

    def test_gated_ask_released_on_source_done(self):
        channel, received, results = make_manual_channel()
        limiter = Limiter(channel, limit=1)
        output = pull(values([1, 2, 3]), limiter, collect())
        assert received == [1]
        assert limiter._gated_ask is not None
        results.push("r1")
        results.end()  # the worker stops answering after one result
        assert output.done
        assert limiter._gated_ask is None

    def test_gated_ask_released_when_sim_channel_crashes(self, scheduler, network):
        """Full stack: the volunteer endpoint crash-stops, the heartbeat
        timeout errors the master-side source, and the Limiter must fail its
        parked gated ask instead of leaking it."""
        from repro.errors import ConnectionClosed
        from repro.net.channel import SimChannel

        channel = SimChannel(
            scheduler, network, "master", "volunteer",
            heartbeat_interval=0.5, heartbeat_timeout=1.5,
        )
        connected = []
        channel.connect(lambda err, ch: connected.append(err))
        scheduler.run(until=lambda: bool(connected))
        # No worker on the far side: the first value is sent, the window
        # fills, and the next sink ask parks behind the gate.
        limiter = Limiter(channel.local.duplex, limit=1)
        output = pull(values(list(range(5))), limiter, collect())
        assert limiter.in_flight == 1
        assert limiter._gated_ask is not None
        channel.remote.crash()
        scheduler.run(until=lambda: output.done)
        assert isinstance(output.end, ConnectionClosed)
        assert limiter._gated_ask is None
