"""Fault-injection churn across lender shards.

Mirror of ``tests/core/test_lender_churn.py`` for the multi-master
composition: workers churn with random crash-stop failures while attached to
a :class:`~repro.core.sharding.ShardedLender`, and the test asserts that
exactly-once delivery, **global** output order, and the per-shard
:class:`~repro.core.lender.LenderStats` balance all survive.  Placement goes
through the least-loaded policy, so the crash schedule also exercises the
rebalancing of later attachments towards depleted shards.

The same schedule runs against the ``ordered=False`` composition
(:class:`~repro.core.lender.UnorderedStreamLender` shards joined in
completion order), where the order assertion relaxes to exactly-once
permutation delivery — and additionally covers the shard whose workers all
die after its slice completed (the dead-shard short-circuit must terminate
the merged stream instead of wedging on a shard that can never answer).
"""

from __future__ import annotations

from repro.core import ShardedLender
from repro.pullstream import collect, pull, values
from repro.sim.failures import ChurnModel

SHARDS = 4
WORKERS = 220
INPUTS = 500


def lend(lender):
    box = []
    lender.lend_stream(lambda err, sub: box.append(sub))
    return box[0]


def build_churn_run(sharded, substream_driver, workers=WORKERS, inputs=INPUTS,
                    seed=1234):
    """Attach *workers* churning drivers to *sharded*; returns the pieces.

    The churn schedule is deterministic for a given *seed*: roughly half the
    workers crash after a known number of borrows, the rest survive, and
    every shard keeps at least one survivor (asserted, or the run would
    legitimately stall waiting for volunteers on a depleted shard).
    """
    input_values = list(range(inputs))
    output = pull(values(input_values), sharded, collect())

    worker_ids = [f"worker-{index}" for index in range(workers)]
    churn = ChurnModel(mean_uptime=8.0, seed=seed)
    schedule = churn.schedule_for(worker_ids, horizon=12.0)
    crash_points = {}
    for event in schedule:
        if event.kind == "crash" and event.worker_id not in crash_points:
            crash_points[event.worker_id] = int(event.time)

    survivors = [wid for wid in worker_ids if wid not in crash_points]
    assert survivors, "churn model crashed every worker; adjust parameters"
    assert len(crash_points) >= workers // 2, "churn should be substantial"

    drivers = []
    placements = []
    for worker_id in worker_ids:
        sub = lend(sharded)  # least-loaded placement
        placements.append(sub.shard)
        if worker_id in crash_points:
            driver = substream_driver(
                sub, crash_after=crash_points[worker_id], auto_deliver=False
            )
        else:
            driver = substream_driver(sub, auto_deliver=False, max_in_flight=1)
        drivers.append(driver.start())

    survivors_per_shard = [0] * sharded.shard_count
    for worker_id, shard in zip(worker_ids, placements):
        if worker_id not in crash_points:
            survivors_per_shard[shard] += 1
    assert all(survivors_per_shard), survivors_per_shard

    return input_values, output, drivers, placements


def drive_to_completion(output, drivers, rounds):
    for _round in range(rounds):
        if output.done:
            break
        for driver in drivers:
            if not driver.crashed:
                driver.deliver_all()
    assert output.done


def assert_shard_accounting(sharded, inputs, workers):
    """Per-shard slice accounting and the conservativeness invariant."""
    shards = sharded.shard_count
    for shard, lender in enumerate(sharded.shards):
        stats = lender.stats
        expected = len(range(shard, inputs, shards))
        assert stats.values_read == expected
        assert stats.results_delivered == expected
        assert lender.outstanding == 0
        assert lender.relendable == 0
        assert stats.values_lent == (
            stats.results_delivered
            + lender.outstanding
            + lender.relendable
            + stats.values_relent
        )
        assert sum(stats.lent_per_substream.values()) == stats.values_lent
        assert (
            sum(stats.results_per_substream.values()) == stats.results_delivered
        )
        assert (
            stats.substreams_failed + stats.substreams_closed
            == stats.substreams_opened
        )

    total = sharded.stats
    assert total.values_read == inputs
    assert total.results_delivered == inputs
    assert total.substreams_opened == workers
    assert total.values_lent == inputs + total.values_relent
    assert sum(total.lent_per_substream.values()) == total.values_lent


class TestShardedChurn:
    def test_exactly_once_global_order_under_churn(self, substream_driver):
        sharded = ShardedLender(shards=SHARDS)
        inputs, output, drivers, placements = build_churn_run(
            sharded, substream_driver
        )

        # Least-loaded placement spreads the attachments across every shard.
        # The split is not perfectly even: workers that crash at start free
        # their slot immediately, pulling later attachments onto their shard
        # (the rebalancing behaviour under churn).
        for shard in range(SHARDS):
            assert placements.count(shard) >= WORKERS // (2 * SHARDS)

        drive_to_completion(output, drivers, rounds=10 * INPUTS)

        # Exactly once, in global input order.
        assert output.result() == [value * 10 for value in inputs]

        # Per-shard accounting: each shard read exactly its round-robin
        # slice and delivered all of it, and its conservativeness invariant
        # balances independently of the other shards.
        assert_shard_accounting(sharded, INPUTS, WORKERS)


class TestUnorderedShardedChurn:
    def test_exactly_once_permutation_under_churn(self, substream_driver):
        """The ordered churn schedule, replayed against ``ordered=False``:
        every input is answered exactly once (a permutation, nothing lost or
        duplicated across ~220 joining/crashing workers) and the per-shard
        accounting still balances."""
        sharded = ShardedLender(shards=SHARDS, ordered=False)
        assert not sharded.ordered
        inputs, output, drivers, placements = build_churn_run(
            sharded, substream_driver
        )
        for shard in range(SHARDS):
            assert placements.count(shard) >= WORKERS // (2 * SHARDS)

        drive_to_completion(output, drivers, rounds=10 * INPUTS)

        # Exactly once: a permutation of the expected results.
        assert sorted(output.result()) == [value * 10 for value in inputs]
        assert_shard_accounting(sharded, INPUTS, WORKERS)

    def test_bounded_split_buffer_survives_churn(self, substream_driver):
        """The churn run with ``max_buffer=2``: back-pressure must not cost
        liveness (every shard keeps a survivor, so every parked pump is
        eventually released) and delivery stays exactly-once."""
        sharded = ShardedLender(shards=SHARDS, ordered=False, max_buffer=2)
        inputs, output, drivers, _placements = build_churn_run(
            sharded, substream_driver
        )
        drive_to_completion(output, drivers, rounds=10 * INPUTS)
        assert sorted(output.result()) == [value * 10 for value in inputs]
        assert sharded._branches.buffer_depths == [0] * SHARDS
        assert_shard_accounting(sharded, INPUTS, WORKERS)

    def test_no_wedge_when_a_shards_workers_all_die(self, substream_driver):
        """A shard whose workers all crash after its slice completed cannot
        wedge the merged stream: the dead-shard short-circuit terminates it
        once every read value has been delivered."""
        sharded = ShardedLender(shards=2, ordered=False)
        inputs = list(range(40))
        output = pull(values(inputs), sharded, collect())

        # Shard 1: two workers that hold results back, deliver everything,
        # then crash.  Shard 0: a healthy auto-delivering worker.
        doomed = [
            substream_driver(
                lend_on(sharded, 1), auto_deliver=False, max_in_flight=1
            ).start()
            for _ in range(2)
        ]
        substream_driver(lend_on(sharded, 0)).start()
        for _round in range(10 * len(inputs)):
            if all(not d.pending_results and d.finished for d in doomed):
                break
            for driver in doomed:
                driver.deliver_all()
        for driver in doomed:
            driver.crash()
        assert output.done
        assert sorted(output.result()) == [value * 10 for value in inputs]


def lend_on(sharded, shard):
    box = []
    sharded.lend_stream(lambda err, sub: box.append(sub), shard=shard)
    return box[0]
