"""Fault-injection churn across lender shards.

Mirror of ``tests/core/test_lender_churn.py`` for the multi-master
composition: workers churn with random crash-stop failures while attached to
a :class:`~repro.core.sharding.ShardedLender`, and the test asserts that
exactly-once delivery, **global** output order, and the per-shard
:class:`~repro.core.lender.LenderStats` balance all survive.  Placement goes
through the least-loaded policy, so the crash schedule also exercises the
rebalancing of later attachments towards depleted shards.
"""

from __future__ import annotations

from repro.core import ShardedLender
from repro.pullstream import collect, pull, values
from repro.sim.failures import ChurnModel

SHARDS = 4
WORKERS = 220
INPUTS = 500


def lend(lender):
    box = []
    lender.lend_stream(lambda err, sub: box.append(sub))
    return box[0]


class TestShardedChurn:
    def test_exactly_once_global_order_under_churn(self, substream_driver):
        sharded = ShardedLender(shards=SHARDS)
        inputs = list(range(INPUTS))
        output = pull(values(inputs), sharded, collect())

        worker_ids = [f"worker-{index}" for index in range(WORKERS)]
        churn = ChurnModel(mean_uptime=8.0, seed=1234)
        schedule = churn.schedule_for(worker_ids, horizon=12.0)
        crash_points = {}
        for event in schedule:
            if event.kind == "crash" and event.worker_id not in crash_points:
                crash_points[event.worker_id] = int(event.time)

        survivors = [wid for wid in worker_ids if wid not in crash_points]
        assert survivors, "churn model crashed every worker; adjust parameters"
        assert len(crash_points) >= WORKERS // 2, "churn should be substantial"

        drivers = []
        placements = []
        for worker_id in worker_ids:
            sub = lend(sharded)  # least-loaded placement
            placements.append(sub.shard)
            if worker_id in crash_points:
                driver = substream_driver(
                    sub, crash_after=crash_points[worker_id], auto_deliver=False
                )
            else:
                driver = substream_driver(sub, auto_deliver=False, max_in_flight=1)
            drivers.append(driver.start())

        # Least-loaded placement spreads the attachments across every shard.
        # The split is not perfectly even: workers that crash at start free
        # their slot immediately, pulling later attachments onto their shard
        # (the rebalancing behaviour under churn).
        for shard in range(SHARDS):
            assert placements.count(shard) >= WORKERS // (2 * SHARDS)

        # Every shard must keep at least one survivor, or the test would
        # (correctly) stall on a shard whose slice cannot complete.
        survivors_per_shard = [0] * SHARDS
        for worker_id, shard in zip(worker_ids, placements):
            if worker_id not in crash_points:
                survivors_per_shard[shard] += 1
        assert all(survivors_per_shard), survivors_per_shard

        for _round in range(10 * INPUTS):
            if output.done:
                break
            for driver in drivers:
                if not driver.crashed:
                    driver.deliver_all()
        assert output.done

        # Exactly once, in global input order.
        assert output.result() == [value * 10 for value in inputs]

        # Per-shard accounting: each shard read exactly its round-robin
        # slice and delivered all of it, and its conservativeness invariant
        # balances independently of the other shards.
        for shard, lender in enumerate(sharded.shards):
            stats = lender.stats
            expected = len(range(shard, INPUTS, SHARDS))
            assert stats.values_read == expected
            assert stats.results_delivered == expected
            assert lender.outstanding == 0
            assert lender.relendable == 0
            assert stats.values_lent == (
                stats.results_delivered
                + lender.outstanding
                + lender.relendable
                + stats.values_relent
            )
            assert sum(stats.lent_per_substream.values()) == stats.values_lent
            assert (
                sum(stats.results_per_substream.values()) == stats.results_delivered
            )
            assert (
                stats.substreams_failed + stats.substreams_closed
                == stats.substreams_opened
            )

        # Aggregate view adds up across shards.
        total = sharded.stats
        assert total.values_read == INPUTS
        assert total.results_delivered == INPUTS
        assert total.substreams_opened == WORKERS
        assert total.values_lent == INPUTS + total.values_relent
        assert sum(total.lent_per_substream.values()) == total.values_lent
