"""Tests for DistributedMap (the master-side composition)."""

from __future__ import annotations

import pytest

from repro.core import DistributedMap
from repro.errors import PandoError
from repro.pullstream import async_map, collect, count, duplex_pair, pull, take, values


class TestLocalWorkers:
    def test_single_worker(self, square_fn):
        dmap = DistributedMap()
        output = pull(values([1, 2, 3]), dmap, collect())
        handle = dmap.add_local_worker(square_fn)
        assert output.result() == [1, 4, 9]
        assert handle.worker_id == "worker-1"

    def test_worker_ids_are_unique(self, square_fn):
        dmap = DistributedMap()
        pull(values([]), dmap, collect())
        first = dmap.add_local_worker(square_fn)
        second = dmap.add_local_worker(square_fn)
        assert first.worker_id != second.worker_id

    def test_explicit_worker_id(self, square_fn):
        dmap = DistributedMap()
        pull(values([1]), dmap, collect())
        handle = dmap.add_local_worker(square_fn, worker_id="my-laptop")
        assert "my-laptop" in dmap.workers

    def test_duplicate_worker_id_raises(self, square_fn):
        """Regression: an explicit duplicate id silently overwrote the
        existing WorkerHandle in ``workers``, orphaning its sub-stream from
        inspection and ``in_flight`` accounting.  Every attach path must
        reject it before any wiring happens."""
        dmap = DistributedMap()
        pull(values([1, 2]), dmap, collect())
        dmap.add_local_worker(square_fn, worker_id="dup")
        with pytest.raises(PandoError):
            dmap.add_local_worker(square_fn, worker_id="dup")
        with pytest.raises(PandoError):
            dmap.add_channel(duplex_pair()[0], worker_id="dup")
        with pytest.raises(PandoError):
            dmap.add_process_pool(
                "repro.pool.workloads:echo", processes=1, worker_id="dup"
            )
        assert list(dmap.workers) == ["dup"]
        assert dmap._pools == []  # the rejected pool was never spawned
        assert dmap.stats.substreams_opened == 1  # no phantom sub-streams

    def test_generated_id_skips_explicitly_taken_ids(self, square_fn):
        """The generated-id path must not collide with an id an explicit
        attach already took (the same silent-overwrite defect)."""
        dmap = DistributedMap()
        pull(values([]), dmap, collect())
        explicit = dmap.add_local_worker(square_fn, worker_id="worker-1")
        generated = dmap.add_local_worker(square_fn)
        assert generated.worker_id != "worker-1"
        assert dmap.workers["worker-1"] is explicit
        assert len(dmap.workers) == 2

    def test_failing_function_is_treated_as_a_worker_failure(self):
        """A worker whose function reports an error is closed like a crashed
        worker: its value is re-lent and the stream waits for another worker
        (the same containment Pando applies to crashing browser tabs)."""
        dmap = DistributedMap()
        output = pull(values([1, 2]), dmap, collect())
        failing = dmap.add_local_worker(lambda v, cb: cb(RuntimeError("bad"), None))
        assert failing.closed
        assert not output.done
        assert dmap.lender.relendable >= 1
        # a healthy worker finishes the job
        dmap.add_local_worker(lambda v, cb: cb(None, v))
        assert output.result() == [1, 2]
        assert dmap.stats.values_relent >= 1

    def test_unordered_mode(self, square_fn):
        dmap = DistributedMap(ordered=False)
        output = pull(values([3, 1, 2]), dmap, collect())
        dmap.add_local_worker(square_fn)
        assert sorted(output.result()) == [1, 4, 9]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DistributedMap(batch_size=0)


class TestChannelWorkers:
    def test_add_channel_with_loopback_worker(self):
        dmap = DistributedMap(batch_size=2)
        output = pull(values(list(range(10))), dmap, collect())
        local_end, remote_end = duplex_pair()
        # the remote side applies the function
        pull(remote_end.source, async_map(lambda v, cb: cb(None, v + 100)), remote_end.sink)
        handle = dmap.add_channel(local_end, worker_id="remote-1")
        assert output.result() == [value + 100 for value in range(10)]
        assert handle.limiter is not None
        assert handle.limiter.max_in_flight <= 2

    def test_mixed_channel_and_local_workers(self, square_fn):
        dmap = DistributedMap(batch_size=1)
        output = pull(values(list(range(8))), dmap, collect())
        local_end, remote_end = duplex_pair()
        pull(remote_end.source, async_map(lambda v, cb: cb(None, v * v)), remote_end.sink)
        dmap.add_channel(local_end)
        dmap.add_local_worker(square_fn)
        assert output.result() == [value * value for value in range(8)]

    def test_per_channel_batch_override(self):
        dmap = DistributedMap(batch_size=1)
        pull(count(4), dmap, collect())
        local_end, remote_end = duplex_pair()
        pull(remote_end.source, async_map(lambda v, cb: cb(None, v)), remote_end.sink)
        handle = dmap.add_channel(local_end, batch_size=5)
        assert handle.limiter.limit == 5


class TestLateAttachment:
    """Attaching workers after the map's output finished must fail cleanly
    (regression: PandoError used to be raised from *inside* the lend_stream
    callback, after a Limiter had already been wired)."""

    def test_attach_after_output_drained_returns_closed_handle(self, square_fn):
        dmap = DistributedMap()
        output = pull(values([1, 2, 3]), dmap, collect())
        dmap.add_local_worker(square_fn)
        assert output.result() == [1, 4, 9]
        assert not dmap.closed  # drained normally, not aborted
        late = dmap.add_local_worker(square_fn, worker_id="latecomer")
        assert late.closed
        assert "latecomer" in dmap.workers
        assert output.result() == [1, 4, 9]  # output unchanged

    def test_attach_after_abort_raises_before_wiring(self, square_fn):
        from repro.errors import PandoError

        dmap = DistributedMap()
        output = pull(count(100), dmap, take(2), collect())
        dmap.add_local_worker(square_fn)
        assert output.done
        assert dmap.closed
        with pytest.raises(PandoError):
            dmap.add_local_worker(square_fn, worker_id="too-late")
        assert "too-late" not in dmap.workers

    def test_attach_channel_after_abort_raises(self):
        from repro.errors import PandoError

        dmap = DistributedMap()
        output = pull(count(100), dmap, take(1), collect())
        dmap.add_local_worker(lambda v, cb: cb(None, v))
        assert output.done
        local_end, _remote_end = duplex_pair()
        with pytest.raises(PandoError):
            dmap.add_channel(local_end, worker_id="too-late")
        assert "too-late" not in dmap.workers


class TestInspection:
    def test_active_workers_and_stats(self, square_fn):
        dmap = DistributedMap()
        output = pull(values(list(range(5))), dmap, collect())
        dmap.add_local_worker(square_fn)
        output.result()
        assert dmap.stats.values_read == 5
        # after completion the sub-streams are closed gracefully
        assert dmap.workers
        assert all(handle.closed for handle in dmap.workers.values())
        assert dmap.active_workers == []

    def test_handle_in_flight(self, square_fn):
        dmap = DistributedMap()
        pull(values([1, 2, 3]), dmap, collect())
        handle = dmap.add_local_worker(square_fn)
        assert handle.in_flight == 0

    def test_lazy_with_take(self, square_fn):
        dmap = DistributedMap()
        output = pull(count(1000), dmap, take(3), collect())
        dmap.add_local_worker(square_fn)
        assert output.result() == [1, 4, 9]
        assert dmap.stats.values_read < 10
