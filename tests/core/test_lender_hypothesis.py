"""Property-based tests of StreamLender invariants (hypothesis).

These reproduce, inside the test suite, the paper's "StreamLender test"
application: randomised executions with random numbers of sub-streams,
interleavings and crash points, checking the Table-1 properties hold on every
one of them.
"""

from __future__ import annotations

import random
from collections import deque

from hypothesis import given, settings, strategies as st

from repro.core import ReorderBuffer, StreamLender, UnorderedStreamLender
from repro.pullstream import DONE, collect, pull, values


def run_schedule(n_values, workers, ordered, seed):
    """Run a randomised interleaving described by the worker specs.

    ``workers`` is a list of ``(max_steps_before_crash or None)``; the
    schedule interleaves borrow/deliver steps of all workers in a
    deterministic pseudo-random order derived from *seed*.  Returns the
    collected output (or None when the run legitimately cannot finish because
    every worker crashed).
    """
    rng = random.Random(seed)
    inputs = list(range(n_values))
    lender = StreamLender() if ordered else UnorderedStreamLender()
    output = pull(values(inputs), lender, collect())

    subs = []
    for _ in workers:
        lender.lend_stream(lambda err, sub: subs.append(sub))

    class W:
        def __init__(self, sub, crash_at):
            self.sub = sub
            self.crash_at = crash_at
            self.queue = deque()
            self.result_cb = None
            self.processed = 0
            self.crashed = False
            self.done = False
            #: a borrow ask is parked inside the lender awaiting an answer
            self.waiting = False
            sub.sink(self.result_source)

        def result_source(self, end, cb):
            if end is not None:
                cb(end, None)
                return
            if self.crashed:
                cb(RuntimeError("crash"), None)
                return
            if self.queue:
                cb(None, self.queue.popleft())
                return
            if self.done:
                cb(DONE, None)
                return
            self.result_cb = cb

        def borrow(self):
            if self.crashed or self.done or self.waiting:
                return
            if self.crash_at is not None and self.processed >= self.crash_at:
                self.crash()
                return
            self.waiting = True

            def answer(end, value):
                self.waiting = False
                if end is not None:
                    self.done = True
                    self.flush_end()
                    return
                if self.crashed:
                    return
                self.processed += 1
                self.queue.append(value * 2)

            self.sub.source(None, answer)

        def deliver(self):
            if self.crashed:
                return
            if self.result_cb is not None and self.queue:
                cb, self.result_cb = self.result_cb, None
                cb(None, self.queue.popleft())
            elif self.result_cb is not None and self.done:
                cb, self.result_cb = self.result_cb, None
                cb(DONE, None)

        def flush_end(self):
            if self.result_cb is not None and not self.queue:
                cb, self.result_cb = self.result_cb, None
                cb(DONE, None)

        def crash(self):
            self.crashed = True
            if self.result_cb is not None:
                cb, self.result_cb = self.result_cb, None
                cb(RuntimeError("crash"), None)
            else:
                # Abort the borrow stream so the lender learns about it.
                self.sub.source(RuntimeError("crash"), lambda _e, _v: None)

    worker_objs = [W(sub, crash_at) for sub, crash_at in zip(subs, workers)]

    for _ in range(20 * (n_values + 1) * (len(workers) + 1)):
        if output.done:
            break
        alive = [w for w in worker_objs if not w.crashed]
        if not alive:
            break
        worker = rng.choice(alive)
        if rng.random() < 0.5:
            worker.borrow()
        else:
            worker.deliver()
        if rng.random() < 0.2:
            for w in alive:
                w.deliver()

    # Final mop-up by every surviving worker so the run can terminate.
    for _ in range(5 * (n_values + 1)):
        if output.done:
            break
        for w in worker_objs:
            if not w.crashed:
                w.borrow()
                w.deliver()
    survivors = [w for w in worker_objs if not w.crashed]
    return output, inputs, survivors


@settings(max_examples=60, deadline=None)
@given(
    n_values=st.integers(min_value=0, max_value=25),
    crash_points=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_ordered_lender_delivers_everything_exactly_once(n_values, crash_points, seed):
    # Ensure at least one worker survives so liveness is achievable.
    workers = list(crash_points) + [None]
    output, inputs, survivors = run_schedule(n_values, workers, ordered=True, seed=seed)
    assert survivors, "at least one worker must survive by construction"
    assert output.done, "the stream must terminate when a worker survives"
    assert output.result() == [value * 2 for value in inputs]


@settings(max_examples=40, deadline=None)
@given(
    n_values=st.integers(min_value=0, max_value=25),
    crash_points=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_unordered_lender_delivers_same_multiset(n_values, crash_points, seed):
    workers = list(crash_points) + [None]
    output, inputs, survivors = run_schedule(n_values, workers, ordered=False, seed=seed)
    assert output.done
    assert sorted(output.result()) == sorted(value * 2 for value in inputs)


@settings(max_examples=100, deadline=None)
@given(st.permutations(list(range(12))))
def test_reorder_buffer_releases_any_permutation_in_order(permutation):
    buffer = ReorderBuffer()
    released = []
    for index in permutation:
        buffer.put(index, f"v{index}")
        released.extend(buffer.drain_ready())
    assert released == [f"v{i}" for i in range(12)]
