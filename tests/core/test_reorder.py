"""Tests for the reordering buffer."""

from __future__ import annotations

import pytest

from repro.core import ReorderBuffer


class TestReorderBuffer:
    def test_in_order_insertion(self):
        buffer = ReorderBuffer()
        buffer.put(0, "a")
        buffer.put(1, "b")
        assert list(buffer.drain_ready()) == ["a", "b"]

    def test_out_of_order_insertion(self):
        buffer = ReorderBuffer()
        buffer.put(2, "c")
        buffer.put(0, "a")
        assert buffer.has_ready()
        assert buffer.pop_ready() == "a"
        assert not buffer.has_ready()  # waiting for index 1
        buffer.put(1, "b")
        assert list(buffer.drain_ready()) == ["b", "c"]

    def test_duplicate_index_rejected(self):
        buffer = ReorderBuffer()
        buffer.put(0, "a")
        with pytest.raises(ValueError):
            buffer.put(0, "again")

    def test_already_delivered_index_rejected(self):
        buffer = ReorderBuffer()
        buffer.put(0, "a")
        buffer.pop_ready()
        with pytest.raises(ValueError):
            buffer.put(0, "late duplicate")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer().put(-1, "x")

    def test_pop_unready_raises(self):
        buffer = ReorderBuffer()
        buffer.put(5, "later")
        with pytest.raises(KeyError):
            buffer.pop_ready()

    def test_counters(self):
        buffer = ReorderBuffer()
        buffer.put(1, "b")
        buffer.put(0, "a")
        assert buffer.buffered == 2
        assert buffer.delivered == 0
        list(buffer.drain_ready())
        assert buffer.delivered == 2
        assert buffer.buffered == 0
        assert buffer.next_index == 2

    def test_len(self):
        buffer = ReorderBuffer()
        assert len(buffer) == 0
        buffer.put(3, "x")
        assert len(buffer) == 1
