"""Tests for StreamLender: basic behaviour, dynamics and ordering."""

from __future__ import annotations

import pytest

from repro.core import StreamLender, UnorderedStreamLender
from repro.errors import ProtocolError, StreamAborted
from repro.pullstream import DONE, collect, count, pull, take, values


def lend(lender):
    """Create a sub-stream, asserting success."""
    box = []
    lender.lend_stream(lambda err, sub: box.append((err, sub)))
    err, sub = box[0]
    assert err is None
    return sub


class TestBasicLending:
    def test_single_substream_processes_everything(self, substream_driver):
        lender = StreamLender()
        output = pull(values([1, 2, 3, 4]), lender, collect())
        driver = substream_driver(lend(lender)).start()
        assert output.result() == [10, 20, 30, 40]
        assert driver.borrowed == [1, 2, 3, 4]

    def test_empty_input(self, substream_driver):
        lender = StreamLender()
        output = pull(values([]), lender, collect())
        substream_driver(lend(lender)).start()
        assert output.result() == []

    def test_no_substream_means_no_progress(self):
        lender = StreamLender()
        output = pull(values([1, 2, 3]), lender, collect())
        assert not output.done  # nobody to lend to: the stream waits

    def test_two_substreams_share_the_work(self, substream_driver):
        lender = StreamLender()
        output = pull(values(list(range(10))), lender, collect())
        # The first driver delivers results only when asked explicitly so the
        # second sub-stream gets a share of the work.
        first = substream_driver(lend(lender), auto_deliver=False)
        second = substream_driver(lend(lender), auto_deliver=False)
        first.start()
        second.start()
        first.deliver_all()
        second.deliver_all()
        # keep flushing until the stream completes (values borrowed after a
        # delivery need further flushes)
        for _ in range(20):
            if output.done:
                break
            first.deliver_all()
            second.deliver_all()
        assert output.result() == [value * 10 for value in range(10)]
        assert len(first.borrowed) + len(second.borrowed) == 10
        assert len(first.borrowed) > 0 and len(second.borrowed) > 0

    def test_substream_joining_late_still_helps(self, substream_driver):
        lender = StreamLender()
        output = pull(values(list(range(6))), lender, collect())
        first = substream_driver(lend(lender), auto_deliver=False).start()
        # later, a second sub-stream joins dynamically
        second = substream_driver(lend(lender), auto_deliver=False).start()
        for _ in range(20):
            if output.done:
                break
            first.deliver_all()
            second.deliver_all()
        assert output.result() == [value * 10 for value in range(6)]

    def test_stats_track_lending(self, substream_driver):
        lender = StreamLender()
        output = pull(values([1, 2, 3]), lender, collect())
        substream_driver(lend(lender)).start()
        output.result()
        assert lender.stats.values_read == 3
        assert lender.stats.values_lent == 3
        assert lender.stats.results_delivered == 3
        assert lender.stats.substreams_opened == 1


class TestOrdering:
    def test_results_in_input_order_despite_delivery_order(self, substream_driver):
        lender = StreamLender()
        output = pull(values(["a", "b", "c", "d"]), lender, collect())
        fast = substream_driver(lend(lender), fn=lambda v: v + "!", auto_deliver=False)
        slow = substream_driver(lend(lender), fn=lambda v: v + "?", auto_deliver=False)
        fast.start()
        slow.start()
        # Deliver the *second* sub-stream's results first: the output must
        # still come out in input order.
        slow.deliver_all()
        fast.deliver_all()
        for _ in range(10):
            if output.done:
                break
            fast.deliver_all()
            slow.deliver_all()
        results = output.result()
        assert [r[0] for r in results] == ["a", "b", "c", "d"]

    def test_unordered_variant_releases_results_as_they_complete(self, substream_driver):
        lender = UnorderedStreamLender()
        collected = []
        output = pull(
            values([1, 2, 3, 4]),
            lender,
            collect(done=lambda end, items: collected.extend(items)),
        )
        first = substream_driver(lend(lender), auto_deliver=False)
        second = substream_driver(lend(lender), auto_deliver=False)
        first.start()
        second.start()
        second.deliver_all()
        first.deliver_all()
        for _ in range(10):
            if output.done:
                break
            first.deliver_all()
            second.deliver_all()
        assert sorted(output.result()) == [10, 20, 30, 40]


class TestLaziness:
    def test_values_read_only_when_borrowed(self, substream_driver):
        pulled = []

        def generator():
            for index in range(1000):
                pulled.append(index)
                yield index

        from repro.pullstream import from_iterable

        lender = StreamLender()
        output = pull(from_iterable(generator()), lender, take(3), collect())
        substream_driver(lend(lender)).start()
        assert output.result() == [0, 10, 20]
        # far fewer than 1000 inputs were materialised
        assert len(pulled) < 20

    def test_no_read_before_substream_asks(self):
        reads = []

        def spy_source(end, cb):
            reads.append(end)
            cb(DONE, None)

        lender = StreamLender()
        pull(spy_source, lender, collect())
        assert reads == []  # nothing read until a sub-stream asks


class TestDownstreamAbort:
    def test_take_aborts_lender_and_upstream(self, substream_driver):
        lender = StreamLender()
        output = pull(count(100), lender, take(5), collect())
        substream_driver(lend(lender)).start()
        assert output.result() == [10, 20, 30, 40, 50]
        # after the abort, new sub-streams are refused
        refused = []
        lender.lend_stream(lambda err, sub: refused.append(err))
        assert isinstance(refused[0], (StreamAborted, Exception))

    def test_lend_after_abort_reports_error(self):
        lender = StreamLender()
        output = pull(values([1]), lender, take(0), collect())
        assert output.result() == []
        errors = []
        lender.lend_stream(lambda err, sub: errors.append(err))
        assert errors and errors[0] is not None


class TestErrors:
    def test_upstream_error_reaches_output(self, substream_driver):
        from repro.pullstream import error

        lender = StreamLender()
        boom = RuntimeError("upstream exploded")
        output = pull(error(boom), lender, collect())
        substream_driver(lend(lender)).start()
        assert output.done
        assert output.end is boom

    def test_upstream_error_after_values(self, substream_driver):
        from repro.pullstream import cat, error, values as values_

        lender = StreamLender()
        boom = RuntimeError("late failure")
        output = pull(cat([values_([1, 2]), error(boom)]), lender, collect())
        substream_driver(lend(lender)).start()
        assert output.done
        assert output.end is boom
        assert output.value == [10, 20]

    def test_double_upstream_connection_rejected(self):
        lender = StreamLender()
        lender(values([1]))
        with pytest.raises(ProtocolError):
            lender(values([2]))

    def test_output_double_ask_reports_protocol_error(self):
        lender = StreamLender()
        output_source = lender(values([1, 2]))
        results = []
        output_source(None, lambda end, value: results.append((end, value)))
        output_source(None, lambda end, value: results.append((end, value)))
        # the second concurrent ask is answered with a ProtocolError
        assert any(isinstance(end, ProtocolError) for end, _ in results)
