"""Fault-tolerance tests for StreamLender (crash-stop sub-streams)."""

from __future__ import annotations

import pytest

from repro.core import StreamLender
from repro.errors import WorkerCrashed
from repro.pullstream import DONE, collect, pull, values


def lend(lender):
    box = []
    lender.lend_stream(lambda err, sub: box.append(sub))
    return box[0]


class TestCrashRecovery:
    def test_values_relent_after_crash(self, substream_driver):
        lender = StreamLender()
        output = pull(values(list(range(8))), lender, collect())
        # The first worker borrows two values then crashes without answering.
        crasher = substream_driver(lend(lender), crash_after=2, auto_deliver=False)
        crasher.start()
        assert crasher.crashed
        # A healthy worker joins afterwards and completes everything,
        # including the two values the crashed worker held.
        healthy = substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(8)]
        assert lender.stats.values_relent == 2
        assert lender.stats.substreams_failed == 1
        assert set(healthy.borrowed) == set(range(8))

    def test_crash_before_borrowing_anything(self, substream_driver):
        lender = StreamLender()
        output = pull(values([1, 2, 3]), lender, collect())
        substream_driver(lend(lender), crash_after=0).start()
        substream_driver(lend(lender)).start()
        assert output.result() == [10, 20, 30]
        assert lender.stats.values_relent == 0

    def test_crash_of_all_substreams_then_new_one(self, substream_driver):
        lender = StreamLender()
        output = pull(values(list(range(5))), lender, collect())
        substream_driver(lend(lender), crash_after=1, auto_deliver=False).start()
        substream_driver(lend(lender), crash_after=2, auto_deliver=False).start()
        assert not output.done
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(5)]

    def test_liveness_once_an_active_substream_exists(self, substream_driver):
        """Paper section 2.3: once a value has been read, if there are active
        participating devices, its result is eventually provided."""
        lender = StreamLender()
        output = pull(values(list(range(20))), lender, collect())
        for _ in range(4):
            substream_driver(lend(lender), crash_after=2, auto_deliver=False).start()
        survivor = substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(20)]
        assert survivor.borrowed  # the survivor did the re-lent work

    def test_conservative_no_duplicate_results(self, substream_driver):
        """A single copy of each value is outstanding at any time, so the
        number of results delivered equals the number of inputs even with
        crashes and re-lending."""
        lender = StreamLender()
        output = pull(values(list(range(12))), lender, collect())
        substream_driver(lend(lender), crash_after=3, auto_deliver=False).start()
        substream_driver(lend(lender), crash_after=4, auto_deliver=False).start()
        substream_driver(lend(lender)).start()
        results = output.result()
        assert len(results) == 12
        assert results == [value * 10 for value in range(12)]
        assert lender.stats.results_delivered == 12

    def test_ordering_preserved_across_crashes(self, substream_driver):
        lender = StreamLender()
        inputs = list(range(15))
        output = pull(values(inputs), lender, collect())
        substream_driver(lend(lender), crash_after=5, auto_deliver=False).start()
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in inputs]

    def test_graceful_close_also_relends(self, substream_driver):
        """A sub-stream whose channel closes normally (volunteer leaves)
        behaves like a crash for the values it still held."""
        lender = StreamLender()
        output = pull(values(list(range(6))), lender, collect())
        sub = lend(lender)
        leaver = substream_driver(sub, auto_deliver=False).start()
        # The volunteer leaves: the borrow stream is aborted by the channel.
        sub.source(DONE, lambda _end, _value: None)
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(6)]

    def test_failed_substream_counters(self, substream_driver):
        lender = StreamLender()
        pull(values(list(range(4))), lender, collect())
        substream_driver(lend(lender), crash_after=1, auto_deliver=False).start()
        assert lender.stats.substreams_failed == 1
        assert lender.relendable == 1
        assert lender.outstanding == 0

    def test_result_without_borrow_is_a_protocol_failure(self):
        """A worker that produces more results than it borrowed is closed."""
        lender = StreamLender()
        pull(values([1, 2, 3]), lender, collect())
        sub = lend(lender)
        # Deliver a result without ever borrowing a value.
        sub.sink(values(["spurious"]))
        assert sub.closed
        assert lender.stats.substreams_failed == 1


class TestCrashTiming:
    @pytest.mark.parametrize("crash_after", [0, 1, 2, 3, 5, 7])
    def test_crash_at_every_point_still_completes(self, substream_driver, crash_after):
        lender = StreamLender()
        inputs = list(range(8))
        output = pull(values(inputs), lender, collect())
        substream_driver(lend(lender), crash_after=crash_after, auto_deliver=False).start()
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in inputs]
