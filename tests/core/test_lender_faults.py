"""Fault-tolerance tests for StreamLender (crash-stop sub-streams)."""

from __future__ import annotations

import pytest

from repro.core import StreamLender
from repro.pullstream import DONE, collect, pull, values


def lend(lender):
    box = []
    lender.lend_stream(lambda err, sub: box.append(sub))
    return box[0]


class TestCrashRecovery:
    def test_values_relent_after_crash(self, substream_driver):
        lender = StreamLender()
        output = pull(values(list(range(8))), lender, collect())
        # The first worker borrows two values then crashes without answering.
        crasher = substream_driver(lend(lender), crash_after=2, auto_deliver=False)
        crasher.start()
        assert crasher.crashed
        # A healthy worker joins afterwards and completes everything,
        # including the two values the crashed worker held.
        healthy = substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(8)]
        assert lender.stats.values_relent == 2
        assert lender.stats.substreams_failed == 1
        assert set(healthy.borrowed) == set(range(8))

    def test_crash_before_borrowing_anything(self, substream_driver):
        lender = StreamLender()
        output = pull(values([1, 2, 3]), lender, collect())
        substream_driver(lend(lender), crash_after=0).start()
        substream_driver(lend(lender)).start()
        assert output.result() == [10, 20, 30]
        assert lender.stats.values_relent == 0

    def test_crash_of_all_substreams_then_new_one(self, substream_driver):
        lender = StreamLender()
        output = pull(values(list(range(5))), lender, collect())
        substream_driver(lend(lender), crash_after=1, auto_deliver=False).start()
        substream_driver(lend(lender), crash_after=2, auto_deliver=False).start()
        assert not output.done
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(5)]

    def test_liveness_once_an_active_substream_exists(self, substream_driver):
        """Paper section 2.3: once a value has been read, if there are active
        participating devices, its result is eventually provided."""
        lender = StreamLender()
        output = pull(values(list(range(20))), lender, collect())
        for _ in range(4):
            substream_driver(lend(lender), crash_after=2, auto_deliver=False).start()
        survivor = substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(20)]
        assert survivor.borrowed  # the survivor did the re-lent work

    def test_conservative_no_duplicate_results(self, substream_driver):
        """A single copy of each value is outstanding at any time, so the
        number of results delivered equals the number of inputs even with
        crashes and re-lending."""
        lender = StreamLender()
        output = pull(values(list(range(12))), lender, collect())
        substream_driver(lend(lender), crash_after=3, auto_deliver=False).start()
        substream_driver(lend(lender), crash_after=4, auto_deliver=False).start()
        substream_driver(lend(lender)).start()
        results = output.result()
        assert len(results) == 12
        assert results == [value * 10 for value in range(12)]
        assert lender.stats.results_delivered == 12

    def test_ordering_preserved_across_crashes(self, substream_driver):
        lender = StreamLender()
        inputs = list(range(15))
        output = pull(values(inputs), lender, collect())
        substream_driver(lend(lender), crash_after=5, auto_deliver=False).start()
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in inputs]

    def test_graceful_close_also_relends(self, substream_driver):
        """A sub-stream whose channel closes normally (volunteer leaves)
        behaves like a crash for the values it still held."""
        lender = StreamLender()
        output = pull(values(list(range(6))), lender, collect())
        sub = lend(lender)
        leaver = substream_driver(sub, auto_deliver=False).start()
        # The volunteer leaves: the borrow stream is aborted by the channel.
        sub.source(DONE, lambda _end, _value: None)
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in range(6)]

    def test_failed_substream_counters(self, substream_driver):
        lender = StreamLender()
        pull(values(list(range(4))), lender, collect())
        substream_driver(lend(lender), crash_after=1, auto_deliver=False).start()
        assert lender.stats.substreams_failed == 1
        assert lender.relendable == 1
        assert lender.outstanding == 0

    def test_result_without_borrow_is_a_protocol_failure(self):
        """A worker that produces more results than it borrowed is closed."""
        lender = StreamLender()
        pull(values([1, 2, 3]), lender, collect())
        sub = lend(lender)
        # Deliver a result without ever borrowing a value.
        sub.sink(values(["spurious"]))
        assert sub.closed
        assert lender.stats.substreams_failed == 1


class TestAbortCleanup:
    """Regression: a downstream abort must close sub-streams through the
    regular cleanup path so the conservativeness invariant
    ``values_lent == results_delivered + relendable + outstanding``
    holds afterwards and the failure counters stay truthful."""

    def _assert_balanced(self, lender):
        stats = lender.stats
        assert stats.values_lent == (
            stats.results_delivered + lender.relendable + lender.outstanding
        )

    def test_abort_recycles_borrowed_values(self, substream_driver):
        lender = StreamLender()
        source = lender(values(list(range(10))))
        sub_box = []
        lender.lend_stream(lambda err, sub: sub_box.append(sub))
        holder = substream_driver(
            sub_box[0], auto_deliver=False, max_in_flight=4
        ).start()
        assert lender.outstanding == 4
        source(DONE, lambda _end, _value: None)  # downstream abort
        assert lender.outstanding == 0
        assert lender.relendable == 4
        assert sub_box[0].closed
        self._assert_balanced(lender)

    def test_abort_counts_graceful_closes(self, substream_driver):
        lender = StreamLender()
        source = lender(values(list(range(6))))
        subs = [lend(lender) for _ in range(3)]
        for sub in subs:
            substream_driver(sub, auto_deliver=False).start()
        source(DONE, lambda _end, _value: None)
        assert lender.stats.substreams_closed == 3
        assert lender.stats.substreams_failed == 0
        self._assert_balanced(lender)

    def test_error_abort_counts_failures(self, substream_driver):
        """An erroring abort crash-stops the open sub-streams: they must be
        counted as failed, not as gracefully closed."""
        lender = StreamLender()
        source = lender(values(list(range(6))))
        substream_driver(lend(lender), auto_deliver=False, max_in_flight=2).start()
        source(RuntimeError("downstream exploded"), lambda _end, _value: None)
        assert lender.stats.substreams_failed == 1
        assert lender.stats.substreams_closed == 0
        assert lender.outstanding == 0
        self._assert_balanced(lender)

    def test_abort_after_partial_delivery(self, substream_driver):
        lender = StreamLender()
        output_box = []
        source = lender(values(list(range(8))))
        driver_sub = lend(lender)
        driver = substream_driver(driver_sub, auto_deliver=False, max_in_flight=3)
        driver.start()
        # Pull two results downstream, then abort with work outstanding.
        driver.deliver_all()
        source(None, lambda end, value: output_box.append((end, value)))
        assert output_box and output_box[0][0] is None
        source(DONE, lambda _end, _value: None)
        assert lender.outstanding == 0
        self._assert_balanced(lender)


class TestCrashTiming:
    @pytest.mark.parametrize("crash_after", [0, 1, 2, 3, 5, 7])
    def test_crash_at_every_point_still_completes(self, substream_driver, crash_after):
        lender = StreamLender()
        inputs = list(range(8))
        output = pull(values(inputs), lender, collect())
        substream_driver(lend(lender), crash_after=crash_after, auto_deliver=False).start()
        substream_driver(lend(lender)).start()
        assert output.result() == [value * 10 for value in inputs]
