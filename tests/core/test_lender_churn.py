"""Fault-injection churn: hundreds of workers with random crash-stop failures.

The paper's conservativeness/fault-tolerance claim (section 2.3, Table 1) is
that every input is processed exactly once no matter how workers churn.  This
test drives a :class:`StreamLender` with 220 sub-streams whose crash points
come from the :class:`repro.sim.failures.ChurnModel` generator, and asserts
exactly-once delivery, input ordering, and that :class:`LenderStats` balances
(``values_lent == results_delivered + outstanding + relendable +
values_relent``).
"""

from __future__ import annotations

from repro.core import StreamLender
from repro.pullstream import collect, pull, values
from repro.sim.failures import ChurnModel

WORKERS = 220
INPUTS = 500


def lend(lender):
    box = []
    lender.lend_stream(lambda err, sub: box.append(sub))
    return box[0]


class TestChurn:
    def test_exactly_once_under_random_crash_stop_churn(self, substream_driver):
        lender = StreamLender()
        inputs = list(range(INPUTS))
        output = pull(values(inputs), lender, collect())

        # Crash points drawn from the churn model: a worker whose first
        # crash event falls inside the horizon crashes after that many
        # borrows; survivors keep working.  The fixed seed makes the run
        # deterministic.
        worker_ids = [f"worker-{index}" for index in range(WORKERS)]
        churn = ChurnModel(mean_uptime=8.0, seed=1234)
        schedule = churn.schedule_for(worker_ids, horizon=12.0)
        crash_points = {}
        for event in schedule:
            if event.kind == "crash" and event.worker_id not in crash_points:
                crash_points[event.worker_id] = int(event.time)

        # Sanity: the schedule must leave survivors, or liveness is moot.
        survivors = [wid for wid in worker_ids if wid not in crash_points]
        assert survivors, "churn model crashed every worker; adjust parameters"
        assert len(crash_points) >= WORKERS // 2, "churn should be substantial"

        drivers = []
        for worker_id in worker_ids:
            sub = lend(lender)
            if worker_id in crash_points:
                driver = substream_driver(
                    sub, crash_after=crash_points[worker_id], auto_deliver=False
                )
            else:
                # Healthy workers hold one value at a time so the work is
                # spread instead of being swallowed by the first joiner.
                driver = substream_driver(sub, auto_deliver=False, max_in_flight=1)
            drivers.append(driver.start())

        # Round-robin delivery until the stream drains (bounded, so a
        # liveness regression fails the test instead of hanging it).
        for _round in range(10 * INPUTS):
            if output.done:
                break
            for driver in drivers:
                if not driver.crashed:
                    driver.deliver_all()
        assert output.done

        # Exactly once, in input order.
        assert output.result() == [value * 10 for value in inputs]

        stats = lender.stats
        assert stats.values_read == INPUTS
        assert stats.results_delivered == INPUTS
        assert lender.outstanding == 0
        assert lender.relendable == 0
        # Conservativeness invariant: every lending event is accounted for —
        # it produced a result, is still outstanding, awaits re-lending, or
        # was a re-lend of a recycled value.
        assert stats.values_lent == (
            stats.results_delivered
            + lender.outstanding
            + lender.relendable
            + stats.values_relent
        )
        assert stats.values_lent == INPUTS + stats.values_relent
        # Per-substream accounting adds up.
        assert sum(stats.lent_per_substream.values()) == stats.values_lent
        assert sum(stats.results_per_substream.values()) == stats.results_delivered
        # Every sub-stream was opened, and crashed ones are counted as failed.
        assert stats.substreams_opened == WORKERS
        assert stats.substreams_failed >= len(
            [wid for wid, point in crash_points.items() if point < INPUTS]
        ) // 2
        assert (
            stats.substreams_failed + stats.substreams_closed == stats.substreams_opened
        )
