"""Integration tests for the Figure-4 deployment example, the end-to-end
application pipelines (Figure 10) and the crypto feedback loop (Figure 11)."""

from __future__ import annotations


from repro import DistributedMap, bundle_function, collect, drain, from_iterable, pull, values
from repro.apps import (
    CollatzApplication,
    CryptoMiningApplication,
    ImageProcessingApplication,
    ImageStore,
    MLAgentApplication,
    MiningMonitor,
    RaytraceApplication,
    assemble_animation,
)
from repro.devices import LAN_DEVICES
from repro.sim.failures import FailureSchedule
from repro.sim.scenario import DeploymentScenario, ScenarioConfig


class TestFigure4Scenario:
    """The deployment example of paper Figure 4: a tablet joins, renders,
    a faster phone joins, the tablet crashes, the phone takes over."""

    def _run(self):
        app = RaytraceApplication()
        tablet, phone = "novena", "iphone-se"
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=[d for d in LAN_DEVICES if d.name in (tablet, phone)],
            tabs={tablet: 1, phone: 1},
            join_times={tablet: 0.0, phone: 2.0},
            failure_schedule=FailureSchedule().crash(4.0, tablet),
            heartbeat_interval=0.5,
            heartbeat_timeout=1.5,
        )
        scenario = DeploymentScenario(config)
        outcome = scenario.run_to_completion(app.generate_inputs(6))
        return scenario, outcome

    def test_all_frames_rendered_despite_crash(self):
        _scenario, outcome = self._run()
        assert len(outcome.outputs) == 6
        angles = [result["angle"] for result in outcome.outputs]
        assert angles == sorted(angles)

    def test_crash_detected_and_logged(self):
        scenario, outcome = self._run()
        assert outcome.registry["crashes"] == 1
        assert any("lost" in line for line in outcome.log)

    def test_phone_takes_over_tablet_work(self):
        scenario, outcome = self._run()
        items = {
            worker: metrics.items_processed
            for worker, metrics in scenario.metrics.workers.items()
        }
        phone_items = sum(v for k, v in items.items() if k.startswith("iphone"))
        assert phone_items >= 4  # the phone did most of the work after the crash


class TestPipelineApplications:
    """Figure 10: each application runs end-to-end through the public API."""

    def test_collatz_pipeline_with_max_postprocessing(self):
        app = CollatzApplication(offset=0, batch=20)
        dmap = DistributedMap(batch_size=2, debug=True)
        output = pull(values(list(app.generate_inputs(5))), dmap, collect())
        for _ in range(2):
            dmap.add_local_worker(bundle_function(app.process).apply)
        best = app.postprocess(output.result())
        assert best["steps"] > 0
        # debug mode installed one ProtocolChecker per worker and every
        # sub-stream obeyed the pull-stream protocol (no raise) while
        # actually carrying traffic
        assert len(dmap.protocol_checkers) == 2
        assert all(checker.trace for checker in dmap.protocol_checkers)

    def test_raytrace_pipeline_produces_ordered_animation(self):
        app = RaytraceApplication(frames=6, width=8, height=6)
        dmap = DistributedMap(batch_size=2, debug=True)
        output = pull(values(list(app.generate_inputs(6))), dmap, collect())
        for _ in range(3):
            dmap.add_local_worker(app.process)
        animation = assemble_animation(output.result())
        assert animation["frames"] == 6

    def test_image_processing_pipeline_uploads_results(self):
        store = ImageStore()
        app = ImageProcessingApplication(store=store)
        dmap = DistributedMap(debug=True)
        output = pull(values(list(app.generate_inputs(8))), dmap, collect())
        dmap.add_local_worker(app.process)
        assert len(output.result()) == 8
        assert store.uploads == 8

    def test_ml_agent_pipeline_selects_learning_rate(self):
        app = MLAgentApplication(steps_per_value=300)
        dmap = DistributedMap(debug=True)
        output = pull(values(list(app.generate_inputs(4))), dmap, collect())
        dmap.add_local_worker(app.process)
        best = app.postprocess(output.result())
        assert "learning_rate" in best


class TestSynchronousParallelSearch:
    """Figure 11: the mining monitor's feedback loop over Pando."""

    def test_chain_is_mined_through_the_feedback_loop(self):
        app = CryptoMiningApplication(difficulty_bits=8, range_size=300)
        monitor = MiningMonitor(app, target_height=2)
        dmap = DistributedMap(ordered=False, batch_size=1, debug=True)
        output = pull(
            from_iterable(monitor.attempts()),
            dmap,
            drain(op=monitor.record_result),
        )
        for _ in range(3):
            dmap.add_local_worker(app.process)
        assert output.done
        assert monitor.done
        assert len(monitor.chain) == 2
        # each block builds on the previous nonce
        assert monitor.chain[0]["height"] == 0
        assert monitor.chain[1]["height"] == 1

    def test_lazy_generation_stops_after_target(self):
        app = CryptoMiningApplication(difficulty_bits=6, range_size=300)
        monitor = MiningMonitor(app, target_height=1)
        dmap = DistributedMap(ordered=False, debug=True)
        pull(from_iterable(monitor.attempts()), dmap, drain(op=monitor.record_result))
        dmap.add_local_worker(app.process)
        assert monitor.done
        # only a bounded number of attempts was generated (laziness)
        assert dmap.stats.values_read < 100
