"""Integration tests: full simulated deployments (master + volunteers + net)."""

from __future__ import annotations

import pytest

from repro.apps import CollatzApplication, RaytraceApplication
from repro.devices import LAN_DEVICES, VPN_DEVICES, WAN_DEVICES
from repro.errors import DeploymentError
from repro.sim.failures import FailureSchedule
from repro.sim.scenario import (
    DeploymentScenario,
    ScenarioConfig,
    default_batch_size,
)


def lan_subset(*names):
    return [device for device in LAN_DEVICES if device.name in names]


class TestRunToCompletion:
    def test_lan_deployment_processes_everything_in_order(self):
        app = CollatzApplication()
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("iphone-se", "mbair-2011"),
        )
        scenario = DeploymentScenario(config)
        inputs = list(app.generate_inputs(30))
        outcome = scenario.run_to_completion(inputs)
        assert len(outcome.outputs) == 30
        assert outcome.registry["joins"] == 2
        # all simulated results in input order (each echoes its input id)
        firsts = [result["n"] for result in outcome.outputs]
        assert firsts == [value["first"] for value in inputs]

    def test_vpn_deployment_uses_websockets(self):
        app = RaytraceApplication()
        config = ScenarioConfig(
            application=app, setting="vpn", devices=VPN_DEVICES[:3]
        )
        scenario = DeploymentScenario(config)
        assert scenario.master.config.transport == "websocket"
        outcome = scenario.run_to_completion(app.generate_inputs(12))
        assert len(outcome.outputs) == 12

    def test_wan_deployment_uses_webrtc_and_public_server(self):
        app = RaytraceApplication()
        config = ScenarioConfig(
            application=app, setting="wan", devices=WAN_DEVICES[:3]
        )
        scenario = DeploymentScenario(config)
        assert scenario.master.config.transport == "webrtc"
        assert scenario.public_server is not None
        outcome = scenario.run_to_completion(app.generate_inputs(9))
        assert len(outcome.outputs) == 9
        assert scenario.public_server.signalling_messages > 0

    def test_paper_batch_size_defaults(self):
        assert default_batch_size("lan") == 2
        assert default_batch_size("vpn") == 2
        assert default_batch_size("wan") == 4

    def test_join_times_stagger_participation(self):
        app = CollatzApplication()
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("iphone-se", "mbpro-2016"),
            join_times={"mbpro-2016": 5.0},
        )
        scenario = DeploymentScenario(config)
        outcome = scenario.run_to_completion(app.generate_inputs(10))
        assert len(outcome.outputs) == 10

    def test_stalls_without_any_volunteer(self):
        app = CollatzApplication()
        config = ScenarioConfig(application=app, setting="lan", devices=[])
        scenario = DeploymentScenario(config)
        with pytest.raises(DeploymentError):
            scenario.run_to_completion(app.generate_inputs(3))

    def test_unknown_device_in_failure_schedule_rejected(self):
        app = CollatzApplication()
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("iphone-se"),
            failure_schedule=FailureSchedule().crash(1.0, "not-a-device"),
        )
        scenario = DeploymentScenario(config)
        with pytest.raises(DeploymentError):
            scenario.run_to_completion(app.generate_inputs(2))


class TestMeasurement:
    def test_lan_collatz_matches_paper_within_tolerance(self):
        app = CollatzApplication()
        config = ScenarioConfig(application=app, setting="lan", duration=20.0, warmup=5.0)
        outcome = DeploymentScenario(config).run_measurement()
        measured = outcome.report.total_throughput * app.ops_per_value
        assert measured == pytest.approx(2209.65, rel=0.05)

    def test_output_matches_sum_of_workers(self):
        """Paper 5.1: the total of all devices corresponds to the throughput
        observed at the output of Pando (within the in-flight window)."""
        app = CollatzApplication()
        config = ScenarioConfig(application=app, setting="lan", duration=20.0, warmup=5.0)
        outcome = DeploymentScenario(config).run_measurement()
        report = outcome.report
        assert report.output_items == pytest.approx(report.total_items, abs=40)

    def test_per_device_shares_match_paper(self):
        app = RaytraceApplication()
        config = ScenarioConfig(application=app, setting="lan", duration=20.0, warmup=5.0)
        outcome = DeploymentScenario(config).run_measurement()
        report = outcome.report
        shares = {}
        for worker_id, throughput in report.per_worker_throughput.items():
            device = worker_id.split("#")[0]
            shares[device] = shares.get(device, 0.0) + throughput
        total = sum(shares.values())
        mbpro_share = 100.0 * shares["mbpro-2016"] / total
        assert mbpro_share == pytest.approx(46.6, abs=3.0)

    def test_adaptive_share_scales_with_device_speed(self):
        app = CollatzApplication()
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("novena", "mbpro-2016"),
            duration=15.0,
            warmup=5.0,
        )
        outcome = DeploymentScenario(config).run_measurement()
        items = outcome.report.per_worker_items
        novena = sum(v for k, v in items.items() if k.startswith("novena"))
        mbpro = sum(v for k, v in items.items() if k.startswith("mbpro"))
        assert mbpro > 4 * novena


class TestFaultTolerance:
    def test_crash_mid_run_is_transparent(self):
        app = CollatzApplication()
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("novena", "iphone-se"),
            failure_schedule=FailureSchedule().crash(2.0, "novena"),
        )
        scenario = DeploymentScenario(config)
        outcome = scenario.run_to_completion(app.generate_inputs(40))
        assert len(outcome.outputs) == 40
        assert outcome.registry["crashes"] >= 1

    def test_graceful_leave_is_not_a_crash(self):
        app = CollatzApplication()
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("novena", "iphone-se"),
            failure_schedule=FailureSchedule().leave(2.0, "novena"),
        )
        scenario = DeploymentScenario(config)
        outcome = scenario.run_to_completion(app.generate_inputs(30))
        assert len(outcome.outputs) == 30
        assert outcome.registry["crashes"] == 0

    def test_all_but_one_device_crash(self):
        app = CollatzApplication()
        schedule = FailureSchedule().crash(1.0, "novena").crash(1.5, "mbair-2011")
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("novena", "mbair-2011", "iphone-se"),
            failure_schedule=schedule,
        )
        outcome = DeploymentScenario(config).run_to_completion(app.generate_inputs(30))
        assert len(outcome.outputs) == 30
        assert outcome.registry["crashes"] == 2

    def test_ordering_preserved_across_crashes(self):
        app = RaytraceApplication()
        config = ScenarioConfig(
            application=app,
            setting="lan",
            devices=lan_subset("novena", "mbpro-2016"),
            failure_schedule=FailureSchedule().crash(1.5, "novena"),
        )
        outcome = DeploymentScenario(config).run_to_completion(app.generate_inputs(16))
        angles = [result["angle"] for result in outcome.outputs]
        assert angles == sorted(angles)
