"""Smoke tests for the example scripts and the full CLI pipeline.

The examples are part of the public deliverable; these tests execute them as
scripts (with small parameters) so they cannot silently rot.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=300):
    """Run an example script in a subprocess and return its stdout."""
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        stdout = run_example("quickstart.py")
        assert "outputs:" in stdout

    def test_render_animation_small(self):
        stdout = run_example("render_animation.py", "--frames", "4", "--size", "8x6")
        assert "rendered 4 frames" in stdout

    def test_crypto_mining_small(self):
        stdout = run_example(
            "crypto_mining.py", "--blocks", "1", "--difficulty", "8", "--range-size", "500"
        )
        assert "mined 1 blocks" in stdout

    def test_hyperparameter_search_small(self):
        stdout = run_example("hyperparameter_search.py", "--steps", "300")
        assert "best learning rate" in stdout

    def test_stubborn_image_processing_small(self):
        stdout = run_example(
            "stubborn_image_processing.py", "--tiles", "6", "--failure-rate", "0.3"
        )
        assert "blurred 6 tiles" in stdout

    def test_parallel_raytrace_small(self):
        stdout = run_example(
            "parallel_raytrace.py", "--frames", "4", "--size", "8x6",
            "--processes", "2",
        )
        assert "rendered 4 frames" in stdout
        assert "2 processes" in stdout

    def test_unordered_search_small(self):
        stdout = run_example(
            "unordered_search.py", "--slow-count", "20000", "--shards", "2"
        )
        assert "found nonce" in stdout
        assert "cancelled" in stdout

    def test_event_loop_master_small(self):
        stdout = run_example(
            "event_loop_master.py", "--values", "8", "--sleep", "0.005",
            "--with-channel",
        )
        assert "on one event loop" in stdout
        assert "channel" in stdout

    def test_shm_transport_small(self):
        stdout = run_example(
            "shm_transport.py", "--tiles", "8", "--tile-kb", "64",
            "--processes", "2",
        )
        assert "inverted 8 tiles" in stdout
        assert "0 leaked" in stdout


class TestUnixPipeline:
    """The full Figure-3 pipeline via the console-script entry points."""

    def test_generate_render_encode(self):
        env = dict(os.environ)
        angles = subprocess.run(
            [sys.executable, "-c",
             "from repro.cli.tools import generate_angles_main; "
             "raise SystemExit(generate_angles_main(['--frames', '3', '--json']))"],
            capture_output=True, text=True, env=env,
        )
        assert angles.returncode == 0
        rendered = subprocess.run(
            [sys.executable, "-c",
             "from repro.cli.pando_cli import main; "
             "raise SystemExit(main(['--app', 'raytrace', '--stdin', '--json', '--workers', '2']))"],
            input=angles.stdout, capture_output=True, text=True, env=env,
        )
        assert rendered.returncode == 0, rendered.stderr
        assert "Serving volunteer code" in rendered.stderr
        encoded = subprocess.run(
            [sys.executable, "-c",
             "from repro.cli.tools import gif_encoder_main; "
             "raise SystemExit(gif_encoder_main([]))"],
            input=rendered.stdout, capture_output=True, text=True, env=env,
        )
        assert encoded.returncode == 0, encoded.stderr
        summary = json.loads(encoded.stdout.strip().splitlines()[-1])
        assert summary["frames"] == 3
        assert summary["angles"] == sorted(summary["angles"])

    def test_pool_backend_matches_local_backend(self):
        """`pando --backend pool` produces the same outputs as the default."""
        env = dict(os.environ)
        outputs = {}
        for backend in ("local", "pool"):
            completed = subprocess.run(
                [sys.executable, "-c",
                 "from repro.cli.pando_cli import main; "
                 f"raise SystemExit(main(['--app', 'collatz', '--count', '6', "
                 f"'--backend', '{backend}', '--workers', '2']))"],
                capture_output=True, text=True, env=env,
            )
            assert completed.returncode == 0, completed.stderr
            outputs[backend] = completed.stdout
        assert outputs["pool"] == outputs["local"]
