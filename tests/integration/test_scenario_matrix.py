"""Planet-scale scenario matrix with bounded-tail cancellation.

Every test runs declarative :class:`~repro.sim.matrix.MatrixCell` cells
through the event loop in virtual time and asserts the matrix invariants
(exactly-once delivery, stats/trace/registry balance, proportional
placement) via :func:`~repro.sim.matrix.verify_cell`.  The smoke subset
runs in tier-1; the full 8-cell grid is ``@pytest.mark.slow`` (CI's
``matrix`` job passes ``--run-slow``).  Seeds are printed on failure so
any cell can be replayed with ``pando simulate --matrix --cell <name>``.
"""

from __future__ import annotations

import pytest

from repro.sim.matrix import (
    MatrixSearchApplication,
    abort_cell,
    bounded_tail_violations,
    full_matrix,
    golden_cell,
    make_inputs,
    matrix_result,
    matrix_task,
    run_cell,
    scale_cell,
    smoke_matrix,
    synthesize_fleet,
    verify_cell,
)


def run_verified(cell):
    """Run one cell and fail with its name and seed on any violation."""
    cell_result = run_cell(cell)
    violations = verify_cell(cell_result)
    assert not violations, (
        f"cell {cell.name!r} (seed={cell.seed}) violated: {violations}"
    )
    return cell_result


# ------------------------------------------------------------ the matrix
@pytest.mark.parametrize("cell", smoke_matrix(), ids=lambda cell: cell.name)
def test_smoke_cells_satisfy_every_invariant(cell):
    """Tier-1 subset: opposite corners of the grid, churned, with pools."""
    cell_result = run_verified(cell)
    assert len(cell_result.outputs) == cell.inputs
    # Churn was injected: the schedule leaves and rejoins volunteers.  How
    # much of it is *observed* is a race on pool cells — the pool runs on
    # wall clock while the fleet joins in virtual time, so the stream can
    # complete before any given (re)join lands — which is why the registry
    # reconciliation lives in verify_cell with race-aware bounds instead of
    # being asserted exactly here.
    assert cell_result.schedule_info.scheduled_rejoins > 0


@pytest.mark.slow
@pytest.mark.parametrize("cell", full_matrix(), ids=lambda cell: cell.name)
def test_full_matrix_grid(cell):
    """All 8 {ordered} x {shards} x {transport} cells, churned."""
    run_verified(cell)


def test_grid_covers_every_axis_combination():
    cells = full_matrix()
    axes = {(cell.ordered, cell.shards > 1, cell.pool) for cell in cells}
    assert len(cells) == len(axes) == 8


# ----------------------------------------------------------- golden cell
GOLDEN_PLACEMENT = {
    "sim-0000-lan#0": 6,
    "sim-0001-vpn#0": 12,
    "sim-0002-wan#0": 4,
    "sim-0003-lan#0": 10,
}


def test_golden_cell_pins_placement_and_stats():
    """Fixed-seed cell: placement, stats and virtual times never drift."""
    cell = golden_cell()
    cell_result = run_verified(cell)
    assert cell_result.result.report.per_worker_items == GOLDEN_PLACEMENT
    stats = cell_result.result.lender_stats
    assert stats["values_read"] == 32
    assert stats["results_delivered"] == 32
    assert stats["values_relent"] == 0
    assert stats["substreams_opened"] == 4
    assert cell_result.result.completed_at == pytest.approx(
        3.7551507108908893, rel=1e-9
    )
    assert cell_result.events_processed == 108


def test_golden_cell_is_deterministic_across_runs():
    first = run_cell(golden_cell())
    second = run_cell(golden_cell())
    assert first.result.report.per_worker_items == second.result.report.per_worker_items
    assert first.result.completed_at == second.result.completed_at
    assert first.events_processed == second.events_processed


# ------------------------------------------------------------ scale cell
def test_thousand_volunteer_cell_within_wall_budget():
    """>= 1000 volunteers complete in virtual time on a wall-clock budget."""
    cell = scale_cell()
    assert cell.volunteers >= 1000
    cell_result = run_verified(cell)
    assert len(cell_result.outputs) == cell.inputs
    # Virtual time stays small (the deployment itself is fast) while the
    # wall-clock cost is bounded: the whole point of unpaced simulation.
    assert cell_result.result.completed_at < 60.0
    assert cell_result.wall_seconds < 30.0, (
        f"scale cell took {cell_result.wall_seconds:.1f}s wall "
        f"(seed={cell.seed}, events={cell_result.events_processed})"
    )


# ------------------------------------------- bounded-tail cancellation
def test_abort_cell_tail_is_bounded_by_one_chunk():
    """After the find() hit, no device completes more than one chunk late."""
    cell = abort_cell()
    cell_result = run_verified(cell)  # verify_cell includes the tail bound
    assert cell_result.aborted
    assert cell_result.outputs[0]["hit"] is True
    # The stop flag actually cut work short on the devices.
    assert sum(tail.tasks_stopped for tail in cell_result.tails) > 0


def test_abort_tail_unbounded_without_chunking():
    """The same cell without task chunking overruns the chunk bound.

    This is the control experiment: if it ever passes cleanly, the bounded
    -tail assertion above has stopped measuring anything.
    """
    cell = abort_cell()
    unchunked = run_cell(cell.with_overrides(name="abort-unchunked", task_chunk=None))
    assert unchunked.aborted
    overruns = bounded_tail_violations(unchunked, task_chunk=cell.task_chunk)
    assert overruns, (
        f"skewed tasks finished within one chunk of the abort (seed={cell.seed}); "
        "the bounded-tail cell no longer exercises cancellation"
    )


# --------------------------------------------------- application pieces
def test_matrix_task_matches_simulated_result():
    """Pool workers and simulated tabs must produce identical results."""
    app = MatrixSearchApplication()
    value = {"id": 3, "cost": 2.0, "hit": True}
    wrapped = app.wrap_input(value)
    assert matrix_task(wrapped) == app.simulate_result(wrapped)
    assert matrix_result(value) == {"id": 3, "hit": True}
    assert app.cost(wrapped) == 2.0


def test_make_inputs_is_seeded_and_skewed():
    first = make_inputs(20, seed=5, skew_ids=(1,), skew_factor=10.0, hit_ids=(7,))
    second = make_inputs(20, seed=5, skew_ids=(1,), skew_factor=10.0, hit_ids=(7,))
    assert first == second
    assert [value["id"] for value in first] == list(range(20))
    assert first[1]["cost"] > 9 * first[0]["cost"]
    assert first[7]["hit"] and not first[6]["hit"]


def test_synthesize_fleet_cycles_settings_deterministically():
    fleet = synthesize_fleet(7, seed=3)
    assert [profile.setting for profile in fleet] == [
        "lan", "vpn", "wan", "lan", "vpn", "wan", "lan",
    ]
    assert fleet == synthesize_fleet(7, seed=3)
    assert fleet != synthesize_fleet(7, seed=4)
    assert all(profile.cores == 1 for profile in fleet)
