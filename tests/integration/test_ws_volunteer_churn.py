"""Process-level volunteer churn over real websockets.

External volunteer processes (``spawn_volunteer_process``) join a live
:class:`~repro.net.ws_transport.WsVolunteerGateway` over loopback and are
killed mid-frame — SIGKILL (socket dies, crash-stop detected on the wire)
and SIGSTOP (socket stays open, only the heartbeat monitor can tell).  In
every case the stream must complete exactly once: values borrowed by the
dead volunteer are re-lent to the survivors, and on a sharded map a
replacement volunteer is placed onto the depleted shard.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core.distributed_map import DistributedMap
from repro.pullstream import collect, from_iterable, pull
from repro.worker import spawn_volunteer_process

SLEEP_ECHO = "repro.pool.workloads:sleep_echo"


def payloads(count, sleep=0.02):
    return [{"sleep": sleep, "n": i} for i in range(count)]


def kill_when_busy(dmap, worker_id, pid, sig=signal.SIGKILL, timeout=30.0):
    """Start a thread that signals *pid* once *worker_id* has work in flight.

    Returns an event that is set once the signal was delivered mid-frame.
    """
    fired = threading.Event()

    def watch():
        deadline = time.time() + timeout
        while time.time() < deadline:
            handle = dmap.workers.get(worker_id)
            if handle is not None and handle.in_flight > 0:
                os.kill(pid, sig)
                fired.set()
                return
            time.sleep(0.01)

    threading.Thread(target=watch, daemon=True).start()
    return fired


class TestSigkillChurn:
    def test_ordered_stream_survives_a_sigkill_mid_frame(self):
        inputs = payloads(40)
        dmap = DistributedMap(scheduler="asyncio", batch_size=2)
        sink = pull(from_iterable(inputs), dmap, collect())
        gateway = dmap.serve_volunteers(fn_ref=SLEEP_ECHO)
        victim = spawn_volunteer_process(gateway.url, name="victim")
        others = [
            spawn_volunteer_process(gateway.url, name=f"vol-{i}") for i in range(2)
        ]
        killed = kill_when_busy(dmap, "victim", victim.pid)
        try:
            dmap.drive(sink, timeout=90)
            result = sink.result()
        finally:
            dmap.close()
            victim.join(10)
            for proc in others:
                proc.join(10)
        assert killed.is_set(), "victim was never caught with work in flight"
        # Exactly once, in order — re-lent values keep their slots.
        assert [value["n"] for value in result] == list(range(40))
        assert gateway.volunteers_joined == 3
        assert gateway.volunteers_crashed == 1
        assert gateway.volunteers_left == 2
        assert gateway.suspicions == 0  # the wire died; no heartbeat verdict
        assert gateway.registry.crashes == 1

    def test_sharded_unordered_with_replacement_volunteer(self):
        # Two shards, one volunteer each.  Kill one mid-frame, then send a
        # fresh volunteer: placement rebalancing must put it on the depleted
        # shard so both shards finish, exactly once.
        inputs = payloads(40)
        dmap = DistributedMap(
            scheduler="asyncio", batch_size=2, shards=2, ordered=False
        )
        sink = pull(from_iterable(inputs), dmap, collect())
        gateway = dmap.serve_volunteers(fn_ref=SLEEP_ECHO)
        victim = spawn_volunteer_process(gateway.url, name="victim")
        survivor = spawn_volunteer_process(gateway.url, name="survivor")
        killed = kill_when_busy(dmap, "victim", victim.pid)
        replacement_box = {}

        def send_replacement():
            if killed.wait(30):
                replacement_box["proc"] = spawn_volunteer_process(
                    gateway.url, name="replacement"
                )

        threading.Thread(target=send_replacement, daemon=True).start()
        try:
            dmap.drive(sink, timeout=90)
            result = sink.result()
        finally:
            dmap.close()
            victim.join(10)
            survivor.join(10)
            replacement = replacement_box.get("proc")
            if replacement is not None:
                replacement.join(10)
        assert killed.is_set(), "victim was never caught with work in flight"
        assert sorted(value["n"] for value in result) == list(range(40))
        assert gateway.volunteers_joined == 3
        assert gateway.volunteers_crashed == 1
        shards = {handle.shard for handle in dmap.workers.values()}
        assert shards == {0, 1}  # the replacement landed on the empty shard
        victim_shard = dmap.workers["victim"].shard
        assert dmap.workers["replacement"].shard == victim_shard


class TestSigstopSuspicion:
    def test_heartbeat_suspects_a_stalled_volunteer(self):
        # SIGSTOP leaves the socket open: only the heartbeat can notice.
        inputs = payloads(30)
        dmap = DistributedMap(scheduler="asyncio", batch_size=2)
        sink = pull(from_iterable(inputs), dmap, collect())
        gateway = dmap.serve_volunteers(
            fn_ref=SLEEP_ECHO, heartbeat_interval=0.2, heartbeat_timeout=1.0
        )
        victim = spawn_volunteer_process(gateway.url, name="victim")
        survivor = spawn_volunteer_process(gateway.url, name="survivor")
        stopped = kill_when_busy(dmap, "victim", victim.pid, sig=signal.SIGSTOP)
        try:
            dmap.drive(sink, timeout=90)
            result = sink.result()
        finally:
            dmap.close()
            if stopped.is_set():
                os.kill(victim.pid, signal.SIGKILL)
            victim.join(10)
            survivor.join(10)
        assert stopped.is_set(), "victim was never caught with work in flight"
        assert [value["n"] for value in result] == list(range(30))
        assert gateway.suspicions == 1
        assert gateway.volunteers_crashed == 1
        assert gateway.volunteers_joined == 2
