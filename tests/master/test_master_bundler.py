"""Tests for the bundler, volunteer registry and the PandoMaster."""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import BundlingError, DeploymentError
from repro.master import (
    MasterConfig,
    PandoMaster,
    VolunteerRegistry,
    bundle_function,
    bundle_module,
)
from repro.pullstream import collect, pull, values


class TestBundler:
    def test_bundle_function(self, square_fn):
        bundle = bundle_function(square_fn, name="square", dependencies=["numpy"])
        assert bundle.name == "square"
        assert bundle.size_bytes > 100_000
        assert bundle.dependencies == ["numpy"]
        results = []
        bundle.apply(3, lambda err, value: results.append(value))
        assert results == [9]

    def test_bundle_catches_exceptions(self):
        def broken(value, cb):
            raise RuntimeError("boom")

        bundle = bundle_function(broken)
        outcome = []
        bundle.apply(1, lambda err, value: outcome.append(err))
        assert isinstance(outcome[0], RuntimeError)

    def test_bundle_rejects_non_callable(self):
        with pytest.raises(BundlingError):
            bundle_function("not a function")

    def test_bundle_module_with_exports(self, tmp_path):
        module = tmp_path / "render.py"
        module.write_text(textwrap.dedent("""
            def _process(value, cb):
                cb(None, int(value) + 1)

            exports = {'/pando/1.0.0': _process}
            dependencies = ['raytracer']
        """))
        bundle = bundle_module(str(module))
        assert bundle.dependencies == ["raytracer"]
        out = []
        bundle.apply("41", lambda err, value: out.append(value))
        assert out == [42]

    def test_bundle_module_with_pando_function(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("def pando(value, cb):\n    cb(None, value * 2)\n")
        bundle = bundle_module(str(module))
        out = []
        bundle.apply(5, lambda err, value: out.append(value))
        assert out == [10]

    def test_bundle_module_missing_function(self, tmp_path):
        module = tmp_path / "empty.py"
        module.write_text("x = 1\n")
        with pytest.raises(BundlingError):
            bundle_module(str(module))

    def test_bundle_module_missing_file(self):
        with pytest.raises(BundlingError):
            bundle_module("/nonexistent/path.py")

    def test_bundle_module_with_syntax_error(self, tmp_path):
        module = tmp_path / "broken.py"
        module.write_text("def broken(:\n")
        with pytest.raises(BundlingError):
            bundle_module(str(module))


class TestVolunteerRegistry:
    def test_register_and_lookup(self):
        registry = VolunteerRegistry()
        record = registry.register("host-a", "iphone-se", "websocket", joined_at=1.0, tabs=2)
        assert registry.get(record.volunteer_id) is record
        assert registry.joins == 1
        assert record.active

    def test_mark_left_gracefully(self):
        registry = VolunteerRegistry()
        record = registry.register("h", "d", "websocket", 0.0)
        registry.mark_left(record.volunteer_id, 5.0)
        assert not record.active
        assert registry.leaves == 1
        assert registry.crashes == 0

    def test_mark_crashed(self):
        registry = VolunteerRegistry()
        record = registry.register("h", "d", "webrtc", 0.0)
        registry.mark_left(record.volunteer_id, 5.0, crashed=True)
        assert registry.crashes == 1

    def test_double_mark_is_idempotent(self):
        registry = VolunteerRegistry()
        record = registry.register("h", "d", "webrtc", 0.0)
        registry.mark_left(record.volunteer_id, 5.0, crashed=True)
        registry.mark_left(record.volunteer_id, 6.0)
        assert registry.crashes == 1 and registry.leaves == 0

    def test_active_listing(self):
        registry = VolunteerRegistry()
        first = registry.register("h1", "d1", "websocket", 0.0)
        registry.register("h2", "d2", "websocket", 0.0)
        registry.mark_left(first.volunteer_id, 1.0)
        assert len(registry.active) == 1
        assert len(registry) == 2


class TestMasterConfig:
    def test_defaults(self):
        config = MasterConfig()
        assert config.batch_size == 2
        assert config.transport == "websocket"

    def test_invalid_transport(self):
        with pytest.raises(DeploymentError):
            MasterConfig(transport="carrier-pigeon")

    def test_invalid_batch_size(self):
        with pytest.raises(DeploymentError):
            MasterConfig(batch_size=0)


class TestPandoMasterLocal:
    def test_local_workers_process_stream(self, square_fn):
        master = PandoMaster(square_fn)
        output = pull(values([1, 2, 3, 4]), master, collect())
        master.add_local_worker()
        assert output.result() == [1, 4, 9, 16]

    def test_serve_announces_local_url(self, square_fn):
        master = PandoMaster(square_fn, config=MasterConfig(port=5000))
        url = master.serve()
        assert url.startswith("http://")
        assert any("Serving volunteer code" in line for line in master.log)

    def test_output_counted_in_metrics(self, square_fn):
        master = PandoMaster(square_fn)
        master.metrics.start_window(0.0)
        output = pull(values([1, 2, 3]), master, collect())
        master.add_local_worker()
        output.result()
        assert master.metrics.output_items == 3

    def test_accept_volunteer_requires_simulation_context(self, square_fn):
        master = PandoMaster(square_fn)

        class FakeVolunteer:
            host = "x"
            device = None

        with pytest.raises(DeploymentError):
            master.accept_volunteer(FakeVolunteer())

    def test_stats_and_workers_exposed(self, square_fn):
        master = PandoMaster(square_fn)
        output = pull(values([1]), master, collect())
        master.add_local_worker()
        output.result()
        assert master.stats.values_read == 1
        assert master.workers
