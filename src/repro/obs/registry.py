"""Thread-safe metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` is instantiated per
:class:`~repro.core.distributed_map.DistributedMap` and aggregates every
counter the stack keeps.  Two registration styles coexist:

* **Instruments** — :meth:`~MetricsRegistry.counter`,
  :meth:`~MetricsRegistry.gauge` and :meth:`~MetricsRegistry.histogram`
  return objects with ``inc``/``set``/``observe`` methods guarded by the
  registry lock, safe from any thread (the frame tracer observes from the
  dispatch thread while the scrape endpoint renders from the loop).
* **Callbacks** — :meth:`~MetricsRegistry.register_callback` exports a live
  attribute of an existing object (``LenderStats.values_read``,
  ``ShmRing.fallbacks``, ...) without refactoring its owner: the callable
  is invoked at scrape/snapshot time only, so the hot paths that bump those
  attributes stay lock-free and unchanged.

Exposition is the Prometheus text format (version 0.0.4):
:meth:`~MetricsRegistry.render_prometheus` for the scrape endpoint,
:meth:`~MetricsRegistry.as_dict` for the structured end-of-run snapshot
(``pando --stats-json``).  Families and samples render in sorted order so
the output is deterministic (the golden-file test depends on it).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..analysis.annotations import any_thread
from ..errors import PandoError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
]

#: Fixed buckets for latency-shaped histograms: 100 microseconds to 30s.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Fixed buckets for payload-size histograms: 256 B to 256 MiB, powers of 4.
DEFAULT_BYTES_BUCKETS = tuple(256 * (4 ** n) for n in range(11))

LabelValues = Tuple[str, ...]


def _validate_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
        raise PandoError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Tuple[str, ...], values: LabelValues) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Base for registry-owned metrics: one family, many label sets."""

    kind = "untyped"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help_text: str,
        labelnames: Tuple[str, ...],
    ) -> None:
        self._registry = registry
        self._lock = registry._lock
        self.name = name
        self.help_text = help_text
        self.labelnames = labelnames

    def _key(self, labels: Dict[str, Any]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise PandoError(
                f"metric {self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Instrument):
    """Monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, registry, name, help_text, labelnames) -> None:
        super().__init__(registry, name, help_text, labelnames)
        self._values: Dict[LabelValues, float] = {}

    @any_thread
    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise PandoError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    @any_thread
    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def _samples(self) -> List[Tuple[LabelValues, float]]:
        return sorted(self._values.items())


class Gauge(_Instrument):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def __init__(self, registry, name, help_text, labelnames) -> None:
        super().__init__(registry, name, help_text, labelnames)
        self._values: Dict[LabelValues, float] = {}

    @any_thread
    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[self._key(labels)] = value

    @any_thread
    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    @any_thread
    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    @any_thread
    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def _samples(self) -> List[Tuple[LabelValues, float]]:
        return sorted(self._values.items())


class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative buckets, Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, registry, name, help_text, labelnames, buckets) -> None:
        super().__init__(registry, name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise PandoError(f"histogram {self.name} needs at least one bucket")
        self.buckets = bounds
        # per label set: [per-bucket counts..., +Inf count], sum
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}

    @any_thread
    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += value

    @any_thread
    def count(self, **labels: Any) -> int:
        with self._lock:
            counts = self._counts.get(self._key(labels))
            return sum(counts) if counts else 0

    @any_thread
    def sum(self, **labels: Any) -> float:
        with self._lock:
            return self._sums.get(self._key(labels), 0.0)

    def _series(self) -> List[Tuple[LabelValues, List[int], float]]:
        return [
            (key, list(self._counts[key]), self._sums[key])
            for key in sorted(self._counts)
        ]


class _Callback:
    """One scrape-time callable exporting a live attribute."""

    def __init__(self, fn: Callable[[], float], labels: LabelValues) -> None:
        self.fn = fn
        self.labels = labels


class _CallbackFamily:
    kind = "callback"

    def __init__(self, name: str, help_text: str, labelnames: Tuple[str, ...],
                 sample_kind: str) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = labelnames
        self.sample_kind = sample_kind
        self.callbacks: List[_Callback] = []


class MetricsRegistry:
    """All metric families of one master, renderable as Prometheus text."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, Any] = {}

    # ------------------------------------------------------------ creation
    def _register(self, family: Any) -> Any:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                raise PandoError(f"metric {family.name} is already registered")
            self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str,
                labelnames: Iterable[str] = ()) -> Counter:
        return self._register(
            Counter(self, _validate_name(name), help_text, tuple(labelnames))
        )

    def gauge(self, name: str, help_text: str,
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(
            Gauge(self, _validate_name(name), help_text, tuple(labelnames))
        )

    def histogram(self, name: str, help_text: str,
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS) -> Histogram:
        return self._register(
            Histogram(self, _validate_name(name), help_text, tuple(labelnames), buckets)
        )

    def register_callback(
        self,
        name: str,
        help_text: str,
        fn: Callable[[], float],
        labels: Optional[Dict[str, Any]] = None,
        kind: str = "counter",
    ) -> None:
        """Export ``fn()`` as one sample of family *name* at scrape time.

        Multiple callbacks may share a family (one per label set) — the
        registration pattern for per-shard lender stats and per-pool
        counters.  *kind* sets the exposition TYPE (``counter``/``gauge``).
        """
        if kind not in ("counter", "gauge"):
            raise PandoError(f"callback kind must be counter or gauge, not {kind!r}")
        labels = dict(labels or {})
        with self._lock:
            family = self._families.get(_validate_name(name))
            if family is None:
                family = _CallbackFamily(
                    name, help_text, tuple(sorted(labels)), kind
                )
                self._families[name] = family
            elif not isinstance(family, _CallbackFamily):
                raise PandoError(f"metric {name} is already a {family.kind}")
            elif tuple(sorted(labels)) != family.labelnames:
                raise PandoError(
                    f"metric {name} callbacks must share label names "
                    f"{family.labelnames}"
                )
            values = tuple(str(labels[k]) for k in family.labelnames)
            family.callbacks.append(_Callback(fn, values))

    # ---------------------------------------------------------- exposition
    @staticmethod
    def _call(fn: Callable[[], float]) -> float:
        try:
            return float(fn())
        except Exception:
            # A dead object behind a callback must not break the scrape.
            return 0.0

    @any_thread
    def render_prometheus(self) -> str:
        """The Prometheus text exposition (version 0.0.4) of every family."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if isinstance(family, _CallbackFamily):
                lines.append(f"# HELP {name} {family.help_text}")
                lines.append(f"# TYPE {name} {family.sample_kind}")
                samples = sorted(
                    (cb.labels, self._call(cb.fn)) for cb in family.callbacks
                )
                for labels, value in samples:
                    rendered = _render_labels(family.labelnames, labels)
                    lines.append(f"{name}{rendered} {_format_value(value)}")
                continue
            lines.append(f"# HELP {name} {family.help_text}")
            lines.append(f"# TYPE {name} {family.kind}")
            if isinstance(family, Histogram):
                with self._lock:
                    series = family._series()
                for labels, counts, total in series:
                    cumulative = 0
                    for bound, count in zip(family.buckets, counts):
                        cumulative += count
                        rendered = _render_labels(
                            family.labelnames + ("le",),
                            labels + (_format_value(bound),),
                        )
                        lines.append(f"{name}_bucket{rendered} {cumulative}")
                    cumulative += counts[-1]
                    rendered = _render_labels(
                        family.labelnames + ("le",), labels + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{rendered} {cumulative}")
                    plain = _render_labels(family.labelnames, labels)
                    lines.append(f"{name}_sum{plain} {_format_value(total)}")
                    lines.append(f"{name}_count{plain} {cumulative}")
            else:
                with self._lock:
                    samples = family._samples()
                for labels, value in samples:
                    rendered = _render_labels(family.labelnames, labels)
                    lines.append(f"{name}{rendered} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    @any_thread
    def as_dict(self) -> Dict[str, Any]:
        """Structured snapshot of every family (the ``--stats-json`` shape)."""
        out: Dict[str, Any] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if isinstance(family, _CallbackFamily):
                out[name] = {
                    "type": family.sample_kind,
                    "samples": [
                        {
                            "labels": dict(zip(family.labelnames, cb.labels)),
                            "value": self._call(cb.fn),
                        }
                        for cb in family.callbacks
                    ],
                }
            elif isinstance(family, Histogram):
                with self._lock:
                    series = family._series()
                out[name] = {
                    "type": "histogram",
                    "buckets": list(family.buckets),
                    "samples": [
                        {
                            "labels": dict(zip(family.labelnames, labels)),
                            "counts": counts,
                            "sum": total,
                            "count": sum(counts),
                        }
                        for labels, counts, total in series
                    ],
                }
            else:
                with self._lock:
                    samples = family._samples()
                out[name] = {
                    "type": family.kind,
                    "samples": [
                        {
                            "labels": dict(zip(family.labelnames, labels)),
                            "value": value,
                        }
                        for labels, value in samples
                    ],
                }
        return out

    @property
    def families(self) -> List[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._families)
