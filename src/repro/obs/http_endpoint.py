"""Tiny stdlib HTTP scrape endpoint for the metrics registry.

Two flavours behind one interface (``url``/``port``/``stop()``):

* :class:`AsyncMetricsEndpoint` — an ``asyncio.start_server`` bound on an
  :class:`~repro.sched.event_loop.EventLoopScheduler`'s private loop and
  registered as an :class:`~repro.sched.sources.EventSource`, exactly like
  the websocket volunteer gateway.  Requests are answered by handler tasks
  whenever the loop spins — i.e. while ``DistributedMap.drive`` runs, which
  is when there is something worth scraping.  The source never reports
  ready or live (a scrape is not stream progress), so it cannot mask a
  genuine stall.
* :class:`ThreadedMetricsEndpoint` — an ``http.server`` in a daemon thread,
  for thread-driven maps (the CLI default) where no loop exists.  The
  registry's rendering is ``@any_thread``-safe, so serving from a separate
  thread is sound.

Both serve the Prometheus text format on every GET (``/metrics`` by
convention, but any path answers — one less thing to misconfigure).
"""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from ..analysis.annotations import any_thread
from ..errors import PandoError
from ..sched.sources import EventSource
from .registry import MetricsRegistry

__all__ = ["AsyncMetricsEndpoint", "ThreadedMetricsEndpoint", "serve_registry"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _http_response(body: bytes, status: str = "200 OK") -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {CONTENT_TYPE}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


class AsyncMetricsEndpoint(EventSource):
    """Scrape endpoint on the scheduler's event loop (gateway-style)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        scheduler: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.url: Optional[str] = None
        self._server: Optional[asyncio.base_events.Server] = None

    def start(self) -> str:
        """Bind the HTTP server and return its ``http://`` URL."""
        if self._server is not None:
            raise PandoError("metrics endpoint is already started")
        self._server = self.scheduler.run_coroutine(
            asyncio.start_server(self._handle, self.host, self.port)
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{self.port}/metrics"
        self.scheduler.register(self)
        return self.url

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 10.0)
            head = request.split(b"\r\n", 1)[0].decode("latin-1", "replace")
            if head.split(" ", 1)[0] not in ("GET", "HEAD"):
                writer.write(_http_response(b"", "405 Method Not Allowed"))
            else:
                body = self.registry.render_prometheus().encode("utf-8")
                writer.write(
                    _http_response(b"" if head.startswith("HEAD") else body)
                )
            await writer.drain()
        except Exception:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def stop(self) -> None:
        """Close the server (idempotent)."""
        server, self._server = self._server, None
        self.scheduler.unregister(self)
        if server is None or self.scheduler.closed:
            if server is not None:
                server.close()
            return

        async def _shutdown() -> None:
            server.close()
            await server.wait_closed()

        self.scheduler.run_coroutine(_shutdown())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "open" if self._server is not None else "stopped"
        return f"<AsyncMetricsEndpoint {state} url={self.url}>"


class ThreadedMetricsEndpoint:
    """Scrape endpoint on a daemon thread (thread-driven maps, no loop)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.url: Optional[str] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> str:
        if self._server is not None:
            raise PandoError("metrics endpoint is already started")
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            @any_thread
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                body = registry.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            @any_thread
            def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
                body = registry.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()

            def log_message(self, *_args: Any) -> None:  # pragma: no cover
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self.url = f"http://{self.host}:{self.port}/metrics"
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="pando-metrics",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "open" if self._server is not None else "stopped"
        return f"<ThreadedMetricsEndpoint {state} url={self.url}>"


def serve_registry(
    registry: MetricsRegistry,
    scheduler: Any = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Any:
    """Start the endpoint flavour matching the map's driver and return it."""
    if scheduler is not None:
        endpoint: Any = AsyncMetricsEndpoint(registry, scheduler, host=host, port=port)
    else:
        endpoint = ThreadedMetricsEndpoint(registry, host=host, port=port)
    endpoint.start()
    return endpoint
