"""End-to-end observability plane: metrics, frame tracing, scrape endpoint.

See :mod:`repro.obs.registry` (thread-safe counters/gauges/histograms with
Prometheus text exposition), :mod:`repro.obs.trace` (the :class:`TraceLog`
ring buffer and the per-frame tracer) and :mod:`repro.obs.http_endpoint`
(the stdlib HTTP scrape server behind ``DistributedMap.serve_metrics``).
"""

from .http_endpoint import (
    AsyncMetricsEndpoint,
    ThreadedMetricsEndpoint,
    serve_registry,
)
from .registry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import Observability, TraceEvent, TraceLog

__all__ = [
    "AsyncMetricsEndpoint",
    "Counter",
    "DEFAULT_BYTES_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ThreadedMetricsEndpoint",
    "TraceEvent",
    "TraceLog",
    "serve_registry",
]
