"""Structured trace events and per-frame tracing.

:class:`TraceLog` is a bounded ring buffer of :class:`TraceEvent` records —
the structured form of the diagnostics that used to live only in exception
text (pump stalls and timeouts, heartbeat suspicions, shard placement,
abort fan-out) plus one ``"frame"`` event per completed traced frame.
Tests and the bench harness assert against it; the scrape endpoint exports
per-kind counts through the registry.

:class:`Observability` bundles one master's registry, trace log and frame
tracer.  A traced frame is a plain dict — picklable, so it rides the frame
control metadata across all three transports (executor pipe, shm control
records, websocket wire records)::

    {"frame_id": 7, "job": "job-1", "transport": "shm",
     "t_submit": <perf_counter>, "serialize_s": ..., "exec_s": ...}

``frame_id`` is monotonic per master and ``job`` is the parent job/request
ID, so a result can be attributed end-to-end no matter which worker
computed it.  The child side adds ``exec_s`` (time inside the user
function, a duration — child and master clocks are never compared);
delivery computes ``overhead = (t_deliver - t_submit) - exec_s``, the
paper's §5.5 decomposition of frame cost into compute and machinery.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..analysis.annotations import any_thread
from .registry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
)

__all__ = ["TraceEvent", "TraceLog", "Observability", "DEFAULT_TRACE_CAPACITY"]

DEFAULT_TRACE_CAPACITY = 2048

_JOB_IDS = itertools.count(1)


class TraceEvent:
    """One structured diagnostic record."""

    __slots__ = ("kind", "ts", "fields")

    def __init__(self, kind: str, ts: float, fields: Dict[str, Any]) -> None:
        self.kind = kind
        self.ts = ts
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "ts": self.ts, **self.fields}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<TraceEvent {self.kind} {self.fields!r}>"


class TraceLog:
    """Bounded, thread-safe ring buffer of trace events.

    Emission is cheap (one lock, one deque append) and the buffer is
    bounded, so leaving tracing on in production costs a fixed amount of
    memory.  When a *registry* is attached, every emission also bumps the
    ``pando_trace_events_total{kind=...}`` counter — the scrapeable summary
    of a buffer whose old entries rotate out.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: rotation-proof per-kind emission totals (the ring drops old
        #: events; balance checks need the lifetime counts)
        self._totals: Dict[str, int] = {}
        self._counter = (
            registry.counter(
                "pando_trace_events_total",
                "Trace events emitted, by kind.",
                ("kind",),
            )
            if registry is not None
            else None
        )

    @any_thread
    def emit(self, kind: str, **fields: Any) -> TraceEvent:
        event = TraceEvent(kind, time.monotonic(), fields)
        with self._lock:
            self._events.append(event)
            self._totals[kind] = self._totals.get(kind, 0) + 1
        if self._counter is not None:
            self._counter.inc(kind=kind)
        return event

    @any_thread
    def count(self, kind: str) -> int:
        """Lifetime number of *kind* events emitted (rotation-proof)."""
        with self._lock:
            return self._totals.get(kind, 0)

    @any_thread
    def counts(self) -> Dict[str, int]:
        """Lifetime per-kind emission totals (rotation-proof)."""
        with self._lock:
            return dict(self._totals)

    @any_thread
    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Snapshot of the buffered events, optionally filtered by kind."""
        with self._lock:
            events = list(self._events)
        if kind is None:
            return events
        return [event for event in events if event.kind == kind]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<TraceLog {len(self)}/{self.capacity}>"


class Observability:
    """One master's observability plane: registry + trace log + frame tracer.

    ``enabled=False`` turns the per-frame hot path off — ``begin_frame``
    returns ``None`` and the transports skip all tracing work, the
    metrics-off arm of the overhead bench.  The registry and trace log
    always exist, so callback registration and diagnostics cost nothing on
    the hot path either way.
    """

    def __init__(
        self,
        enabled: bool = True,
        job_id: Optional[str] = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        self.enabled = enabled
        self.job_id = job_id if job_id is not None else f"job-{next(_JOB_IDS)}"
        self.registry = MetricsRegistry()
        self.trace = TraceLog(trace_capacity, registry=self.registry)
        self._frame_ids = itertools.count(1)
        self._frame_lock = threading.Lock()
        self.frames = self.registry.counter(
            "pando_frames_total", "Traced frames completed, by transport.",
            ("transport",),
        )
        self.frame_overhead = self.registry.histogram(
            "pando_frame_overhead_seconds",
            "Per-frame machinery overhead: (deliver - submit) - compute.",
            ("transport",),
            buckets=DEFAULT_SECONDS_BUCKETS,
        )
        self.frame_compute = self.registry.histogram(
            "pando_frame_compute_seconds",
            "Per-frame time inside the user function (child-measured).",
            ("transport",),
            buckets=DEFAULT_SECONDS_BUCKETS,
        )
        self.frame_payload = self.registry.histogram(
            "pando_frame_payload_bytes",
            "Per-frame payload bytes on the wire, where the transport knows.",
            ("transport",),
            buckets=DEFAULT_BYTES_BUCKETS,
        )

    # ---------------------------------------------------------- frame trace
    @any_thread
    def begin_frame(self, transport: str, values: int = 1) -> Optional[Dict[str, Any]]:
        """Start tracing one frame; returns the control-metadata dict.

        ``None`` when tracing is disabled — the transports ship the frame
        exactly as before (zero overhead, and the child side answers with
        the untraced result shape).
        """
        if not self.enabled:
            return None
        with self._frame_lock:
            frame_id = next(self._frame_ids)
        return {
            "frame_id": frame_id,
            "job": self.job_id,
            "transport": transport,
            "values": values,
            "t_submit": time.perf_counter(),
        }

    @any_thread
    def end_serialize(self, trace: Dict[str, Any]) -> None:
        """Record the end of the serialize phase (pack + submit)."""
        trace["serialize_s"] = time.perf_counter() - trace["t_submit"]

    @any_thread
    def observe_payload(self, transport: str, nbytes: int) -> None:
        if self.enabled and nbytes > 0:
            self.frame_payload.observe(nbytes, transport=transport)

    @any_thread
    def observe_frame(self, trace: Dict[str, Any]) -> None:
        """Complete one traced frame at delivery time.

        *trace* is the dict that travelled with the frame, back from the
        child with ``exec_s`` added.  Overhead is clamped at zero: the
        child executes concurrently with other frames, so a pipelined frame
        can spend longer inside the user function than it spent end-to-end
        exclusive.
        """
        transport = str(trace.get("transport", "?"))
        t_deliver = time.perf_counter()
        exec_s = float(trace.get("exec_s", 0.0))
        elapsed = t_deliver - float(trace.get("t_submit", t_deliver))
        overhead = max(0.0, elapsed - exec_s)
        self.frames.inc(transport=transport)
        self.frame_overhead.observe(overhead, transport=transport)
        self.frame_compute.observe(exec_s, transport=transport)
        self.trace.emit(
            "frame",
            frame_id=trace.get("frame_id"),
            job=trace.get("job"),
            transport=transport,
            values=trace.get("values"),
            serialize_s=trace.get("serialize_s"),
            compute_s=exec_s,
            overhead_s=overhead,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "enabled" if self.enabled else "disabled"
        return f"<Observability {self.job_id} {state}>"
