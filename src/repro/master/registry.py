"""Registry of volunteers known to a master process.

Keeps track of every volunteer that ever joined a deployment, the state of
its connection, and aggregate join/leave/crash counters used by the
monitoring output ("Serving volunteer code at ...", join/leave log lines) and
by the benchmark reports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["VolunteerRecord", "VolunteerRegistry"]


@dataclass
class VolunteerRecord:
    """State of one volunteer connection as seen by the master."""

    volunteer_id: str
    host: str
    device_name: str
    protocol: str
    joined_at: float
    left_at: Optional[float] = None
    crashed: bool = False
    tabs: int = 1
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.left_at is None


class VolunteerRegistry:
    """Mutable collection of :class:`VolunteerRecord`."""

    def __init__(self) -> None:
        self._records: Dict[str, VolunteerRecord] = {}
        self._ids = itertools.count(1)
        self.joins = 0
        self.leaves = 0
        self.crashes = 0

    def register(
        self,
        host: str,
        device_name: str,
        protocol: str,
        joined_at: float,
        tabs: int = 1,
        info: Optional[Dict[str, object]] = None,
    ) -> VolunteerRecord:
        """Record a new volunteer and return its record."""
        volunteer_id = f"volunteer-{next(self._ids)}"
        record = VolunteerRecord(
            volunteer_id=volunteer_id,
            host=host,
            device_name=device_name,
            protocol=protocol,
            joined_at=joined_at,
            tabs=tabs,
            info=dict(info or {}),
        )
        self._records[volunteer_id] = record
        self.joins += 1
        return record

    def mark_left(self, volunteer_id: str, timestamp: float, crashed: bool = False) -> None:
        """Record the departure (graceful or crash) of a volunteer."""
        record = self._records.get(volunteer_id)
        if record is None or record.left_at is not None:
            return
        record.left_at = timestamp
        record.crashed = crashed
        if crashed:
            self.crashes += 1
        else:
            self.leaves += 1

    def get(self, volunteer_id: str) -> Optional[VolunteerRecord]:
        return self._records.get(volunteer_id)

    @property
    def records(self) -> List[VolunteerRecord]:
        return list(self._records.values())

    @property
    def active(self) -> List[VolunteerRecord]:
        return [record for record in self._records.values() if record.active]

    def __len__(self) -> int:
        return len(self._records)
