"""Pando master process: bundling, volunteer registry, deployment."""

from .bundler import PANDO_PROTOCOL, Bundle, bundle_function, bundle_module
from .registry import VolunteerRecord, VolunteerRegistry
from .master import MasterConfig, PandoMaster

__all__ = [
    "PANDO_PROTOCOL",
    "Bundle",
    "bundle_function",
    "bundle_module",
    "VolunteerRecord",
    "VolunteerRegistry",
    "MasterConfig",
    "PandoMaster",
]
