"""Bundling of the user's processing function for shipment to volunteers.

The original Pando uses browserify to bundle the user's JavaScript module
(which exports its processing function under the ``'/pando/1.0.0'`` key,
paper Figure 2) together with its npm dependencies, and serves the bundle
over HTTP to every browser that opens the volunteer URL.

In this Python port a *bundle* wraps a processing callable (or a Python file
that exposes one under the same ``'/pando/1.0.0'`` convention), records its
estimated download size — which the simulator charges when a volunteer joins
— and lists its declared dependencies.
"""

from __future__ import annotations

import importlib.util
import inspect
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import BundlingError

__all__ = ["Bundle", "bundle_function", "bundle_module", "PANDO_PROTOCOL"]

#: The protocol key under which a module exposes its processing function.
PANDO_PROTOCOL = "/pando/1.0.0"

NodeCallback = Callable[[Optional[BaseException], Any], None]
ProcessingFunction = Callable[[Any, NodeCallback], None]


@dataclass
class Bundle:
    """The worker code shipped to each joining volunteer."""

    name: str
    function: ProcessingFunction
    #: estimated size of the bundle on the wire (bytes), charged on join
    size_bytes: int
    dependencies: List[str] = field(default_factory=list)
    #: optional application object carrying cost model / simulated results
    application: Optional[Any] = None
    protocol: str = PANDO_PROTOCOL

    def apply(self, value: Any, cb: NodeCallback) -> None:
        """Invoke the processing function on *value* (worker-side entry point)."""
        try:
            self.function(value, cb)
        except Exception as exc:  # the paper's Figure 2 catches and forwards
            cb(exc, None)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Bundle {self.name!r} {self.size_bytes}B deps={len(self.dependencies)}>"


def bundle_function(
    function: ProcessingFunction,
    name: Optional[str] = None,
    dependencies: Optional[List[str]] = None,
    application: Optional[Any] = None,
    size_bytes: Optional[int] = None,
) -> Bundle:
    """Bundle an in-process callable.

    The size estimate is derived from the function's source code plus a fixed
    overhead standing for the bundled runtime and dependencies (browserify
    bundles are rarely below ~100 kB).
    """
    if not callable(function):
        raise BundlingError(f"processing function is not callable: {function!r}")
    if size_bytes is None:
        try:
            source_size = len(inspect.getsource(function))
        except (OSError, TypeError):
            source_size = 1024
        size_bytes = 100_000 + source_size + 20_000 * len(dependencies or [])
    return Bundle(
        name=name or getattr(function, "__name__", "anonymous"),
        function=function,
        size_bytes=size_bytes,
        dependencies=list(dependencies or []),
        application=application,
    )


def bundle_module(path: str) -> Bundle:
    """Bundle a Python file that follows the Pando module convention.

    The file must define either a module-level dictionary ``exports`` with a
    ``'/pando/1.0.0'`` key, or a function named ``pando`` — both taking
    ``(value, cb)``.  Mirrors ``module.exports['/pando/1.0.0'] = ...`` from
    the paper's Figure 2.
    """
    if not os.path.exists(path):
        raise BundlingError(f"no such module file: {path!r}")
    spec = importlib.util.spec_from_file_location(
        os.path.splitext(os.path.basename(path))[0], path
    )
    if spec is None or spec.loader is None:
        raise BundlingError(f"cannot load module from {path!r}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise BundlingError(f"error executing module {path!r}: {exc!r}") from exc

    function: Optional[ProcessingFunction] = None
    exports: Dict[str, Any] = getattr(module, "exports", {})
    if isinstance(exports, dict) and PANDO_PROTOCOL in exports:
        function = exports[PANDO_PROTOCOL]
    elif hasattr(module, "pando"):
        function = module.pando
    if function is None or not callable(function):
        raise BundlingError(
            f"module {path!r} does not expose a processing function under "
            f"exports[{PANDO_PROTOCOL!r}] or a 'pando' function"
        )
    with open(path, "rb") as handle:
        source_size = len(handle.read())
    dependencies = list(getattr(module, "dependencies", []))
    return Bundle(
        name=os.path.basename(path),
        function=function,
        size_bytes=100_000 + source_size + 20_000 * len(dependencies),
        dependencies=dependencies,
    )
