"""The Pando master process.

The master (paper Figure 7, "Master (Node.js)") owns the input and output
streams, runs the ``StreamLender``/``DistributedMap`` coordination, serves the
bundled worker code at a URL, accepts volunteers as they open that URL, and
wires each volunteer's channel — through a ``Limiter`` — to a fresh
sub-stream.  It is deliberately *not* a long-running service: one deployment
serves one user, one project, and shuts down when the stream completes
(design principle DP1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.distributed_map import DistributedMap, WorkerHandle
from ..devices.profiles import MASTER_DEVICE, DeviceProfile
from ..errors import DeploymentError, PandoError
from ..net.channel import SimChannel
from ..net.signaling import Deployment, PublicServer
from ..net.webrtc import WebRTCConnection
from ..net.websocket import WebSocketConnection
from ..pullstream import through
from ..pullstream.protocol import Source
from ..sim.metrics import MetricsCollector
from ..sim.network import NetworkModel
from ..sim.scheduler import Scheduler
from .bundler import Bundle, bundle_function
from .registry import VolunteerRegistry

__all__ = ["MasterConfig", "PandoMaster"]

TRANSPORTS = ("websocket", "webrtc")


@dataclass
class MasterConfig:
    """Startup options of a Pando deployment (command-line flags)."""

    #: number of inputs kept in flight per worker (``--batch-size``)
    batch_size: int = 2
    #: ``"websocket"`` or ``"webrtc"``
    transport: str = "websocket"
    #: deliver outputs in input order (False = unordered StreamLender variant)
    ordered: bool = True
    #: local port shown in the startup message
    port: int = 5000
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 3.0
    #: number of independent lender shards (``--shards``); 1 = single master
    shards: int = 1
    #: bounded split buffer per shard (requires ``shards > 1``)
    split_buffer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise DeploymentError(
                f"unknown transport {self.transport!r}; expected one of {TRANSPORTS}"
            )
        if self.batch_size < 1:
            raise DeploymentError("batch_size must be >= 1")
        if self.shards < 1:
            raise DeploymentError("shards must be >= 1")


class PandoMaster:
    """Coordinate a single Pando deployment.

    The master is a pull-stream *through*: place it between the input source
    and the output sink, exactly like the underlying
    :class:`~repro.core.distributed_map.DistributedMap`, then let volunteers
    join (either programmatically through :meth:`accept_volunteer` /
    :meth:`add_local_worker`, or through the simulated public server URL).
    """

    pull_role = "through"

    def __init__(
        self,
        bundle: Any,
        config: Optional[MasterConfig] = None,
        scheduler: Optional[Scheduler] = None,
        network: Optional[NetworkModel] = None,
        public_server: Optional[PublicServer] = None,
        metrics: Optional[MetricsCollector] = None,
        host: str = "master",
        device: DeviceProfile = MASTER_DEVICE,
        event_scheduler: Optional[Any] = None,
    ) -> None:
        self.bundle: Bundle = (
            bundle if isinstance(bundle, Bundle) else bundle_function(bundle)
        )
        self.config = config or MasterConfig()
        self.scheduler = scheduler
        self.network = network
        self.public_server = public_server
        self.metrics = metrics or MetricsCollector()
        self.host = host
        self.device = device
        self.registry = VolunteerRegistry()
        # event_scheduler is the map's EventLoopScheduler (the async pump
        # driving non-blocking pools and SimEventSources); `scheduler` above
        # is the discrete-event simulation clock — different planes.
        self.distributed_map = DistributedMap(
            ordered=self.config.ordered,
            batch_size=self.config.batch_size,
            shards=self.config.shards,
            split_buffer=self.config.split_buffer,
            scheduler=event_scheduler,
        )
        # Fold the master's volunteer tallies into the map's stats snapshot,
        # so stats().as_dict() reports the volunteer plane alongside the
        # lender counters (simulated deployments have no ws gateway).
        self.distributed_map.attach_volunteer_registry(self.registry)
        self.deployment: Optional[Deployment] = None
        self.local_url = f"http://{self.host}:{self.config.port}"
        self._started = False
        self._log: List[str] = []

    # ----------------------------------------------------------- stream side
    def __call__(self, read: Source) -> Source:
        """Connect the input stream; the returned source yields the results."""
        self._started = True
        counted = through(on_value=lambda _value: self.metrics.record_output())(
            self.distributed_map(read)
        )
        return counted

    # ------------------------------------------------------------ deployment
    def serve(self) -> str:
        """Start serving the volunteer code and return the volunteer URL.

        Mirrors the paper's startup message ``Serving volunteer code at
        http://...:5000``.  When a public server is configured, the public URL
        is registered there and returned instead of the LAN one.
        """
        self._log.append(f"Serving volunteer code at {self.local_url}")
        if self.public_server is not None:
            self.deployment = self.public_server.register_deployment(
                master_host=self.host, on_join_request=self._join_via_server
            )
            self._log.append(f"Public deployment available at {self.deployment.url}")
            return self.deployment.url
        return self.local_url

    def shutdown(self) -> None:
        """End the deployment (DP1: the tool shuts down after its task)."""
        if self.public_server is not None and self.deployment is not None:
            self.public_server.shutdown_deployment(self.deployment.deployment_id)
        self._log.append("Deployment shut down")

    @property
    def log(self) -> List[str]:
        """Human-readable deployment log (startup messages, joins, crashes)."""
        return list(self._log)

    # ------------------------------------------------------------ volunteers
    def add_local_worker(
        self,
        fn: Optional[Callable] = None,
        worker_id: Optional[str] = None,
    ) -> WorkerHandle:
        """Attach an in-process worker running the bundle's function."""
        function = fn if fn is not None else self.bundle.apply
        return self.distributed_map.add_local_worker(function, worker_id=worker_id)

    def accept_volunteer(self, volunteer: Any, tabs: Optional[int] = None) -> None:
        """Accept a simulated volunteer: ship the bundle, open channels.

        *volunteer* must provide ``host``, ``device`` (a
        :class:`~repro.devices.device.SimDevice`) and ``attach_tab(index,
        endpoint, bundle, metrics)``; see
        :class:`~repro.worker.volunteer.SimVolunteer`.
        """
        if self.scheduler is None or self.network is None:
            raise DeploymentError(
                "accept_volunteer requires the master to be created with a "
                "scheduler and a network model (simulation mode)"
            )
        tabs = tabs if tabs is not None else len(volunteer.device.cores)
        record = self.registry.register(
            host=volunteer.host,
            device_name=volunteer.device.name,
            protocol=self.config.transport,
            joined_at=self.scheduler.now,
            tabs=tabs,
        )
        self._log.append(
            f"[{self.scheduler.now:10.3f}] volunteer {record.volunteer_id} "
            f"({volunteer.device.name}, {tabs} tab(s)) joining via {self.config.transport}"
        )

        # 1. the volunteer downloads the worker code bundle over HTTP
        download_delay = self.network.delay(
            self.host, volunteer.host, self.bundle.size_bytes
        )
        self.scheduler.call_later(
            download_delay, self._open_tabs, volunteer, record, tabs
        )

    def _join_via_server(self, volunteer_host: str, info: Dict[str, Any]) -> None:
        volunteer = info.get("volunteer")
        if volunteer is None:
            raise DeploymentError(
                f"join request from {volunteer_host} carried no volunteer object"
            )
        self.accept_volunteer(volunteer, tabs=info.get("tabs"))

    # -------------------------------------------------------------- channels
    def _open_tabs(self, volunteer: Any, record, tabs: int) -> None:
        for index in range(tabs):
            self._open_channel(volunteer, record, index)

    def _open_channel(self, volunteer: Any, record, tab_index: int) -> None:
        channel = self._make_channel(volunteer.host)

        def connected(err: Optional[BaseException], _channel: SimChannel) -> None:
            if err is not None:
                self._log.append(
                    f"[{self.scheduler.now:10.3f}] connection to "
                    f"{record.volunteer_id} tab {tab_index} failed: {err!r}"
                )
                return
            worker_id = f"{volunteer.device.name}#{tab_index}"
            try:
                handle = self.distributed_map.add_channel(
                    channel.local.duplex,
                    worker_id=worker_id,
                    batch_size=self.config.batch_size,
                )
            except PandoError:
                # The job terminated (completed or was aborted) while this
                # tab was still connecting — an early find() hit beats a
                # high-latency WAN handshake.  Turn the late volunteer away
                # instead of letting the error escape the event loop.
                self._log.append(
                    f"[{self.scheduler.now:10.3f}] worker {worker_id} "
                    f"connected after the job terminated; turned away"
                )
                channel.local.close("job-terminated")
                return
            channel.local.on_close(
                lambda reason: self._on_channel_closed(record, reason)
            )
            volunteer.attach_tab(tab_index, channel.remote, self.bundle, self.metrics)
            self._log.append(
                f"[{self.scheduler.now:10.3f}] worker {worker_id} connected "
                f"(batch={self.config.batch_size})"
            )

        channel.connect(connected)

    def _make_channel(self, volunteer_host: str) -> SimChannel:
        common = dict(
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_timeout=self.config.heartbeat_timeout,
        )
        if self.config.transport == "webrtc":
            return WebRTCConnection(
                self.scheduler,
                self.network,
                local_host=self.host,
                remote_host=volunteer_host,
                signalling_server=self.public_server,
                **common,
            )
        return WebSocketConnection(
            self.scheduler,
            self.network,
            local_host=self.host,
            remote_host=volunteer_host,
            **common,
        )

    def _on_channel_closed(self, record, reason: Optional[BaseException]) -> None:
        crashed = reason is not None
        self.registry.mark_left(
            record.volunteer_id, self.scheduler.now, crashed=crashed
        )
        if crashed:
            self._log.append(
                f"[{self.scheduler.now:10.3f}] lost {record.volunteer_id} "
                f"({record.device_name}): {reason}"
            )

    # ------------------------------------------------------------ inspection
    @property
    def stats(self):
        """The underlying StreamLender statistics."""
        return self.distributed_map.stats

    @property
    def workers(self) -> Dict[str, WorkerHandle]:
        return self.distributed_map.workers

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<PandoMaster bundle={self.bundle.name!r} transport={self.config.transport} "
            f"batch={self.config.batch_size} volunteers={len(self.registry)}>"
        )
