"""Common interface of the paper's applications (section 4).

Every application provides:

* an **input generator** — the values that flow into Pando (camera angles,
  integers, mining attempts, hyper-parameters, image identifiers, ...);
* a **processing function** ``process(value, cb)`` following the Pando
  convention of the paper's Figure 2, performing the *real* computation —
  used by the local examples, the CLI and the pytest benchmarks;
* a **cost model** ``cost(value)`` giving the number of elementary operations
  one value stands for — used by the simulator to derive virtual task
  durations from the calibrated device rates (Table 2 units: Bignum/s,
  Hashes/s, Tests/s, Frames/s, Images/s, Steps/s);
* a cheap **simulated result** used in virtual-time runs where executing the
  real computation for hundreds of thousands of values would be pointless;
* wire-size metadata so the network model charges realistic transfer times.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Optional

__all__ = ["Application", "ApplicationRegistry", "registry"]

NodeCallback = Callable[[Optional[BaseException], Any], None]


class Application:
    """Base class for Pando applications."""

    #: identifier matching the Table-2 column (and device-profile rate key)
    name: str = "generic"
    #: unit of the throughput reported by the paper for this application
    unit: str = "items/s"
    #: elementary operations represented by one streamed value
    ops_per_value: float = 1.0
    #: wire size of one input value in bytes
    input_size_bytes: int = 64
    #: wire size of one result in bytes
    result_size_bytes: int = 64
    #: dataflow pattern from the paper (pipeline, synchronous-search, stubborn)
    dataflow: str = "pipeline"

    # ------------------------------------------------------------- interface
    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        """Yield input values (indefinitely when *count* is ``None``)."""
        raise NotImplementedError

    def process(self, value: Any, cb: NodeCallback) -> None:
        """Real processing function (paper Figure 2 convention)."""
        raise NotImplementedError

    def cost(self, value: Any) -> float:
        """Work units (elementary operations) represented by *value*."""
        return self.ops_per_value

    def simulate_result(self, value: Any) -> Any:
        """Cheap stand-in result used by virtual-time simulations."""
        return {
            "application": self.name,
            "input": self._input_id(value),
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        """Check that *result* is a plausible output for *value*."""
        return result is not None

    def postprocess(self, results: Iterable[Any]) -> Any:
        """Optional aggregation of the output stream (e.g. GIF assembly)."""
        return list(results)

    # ------------------------------------------------------------- utilities
    def wrap_input(self, value: Any) -> Any:
        """Attach wire-size metadata to an input value for the simulator."""
        return {
            "application": self.name,
            "value": value,
            "size_bytes": self.input_size_bytes,
        }

    def processing_function(self) -> Callable[[Any, NodeCallback], None]:
        """The function to bundle and ship to workers."""
        return self.process

    @staticmethod
    def _input_id(value: Any) -> Any:
        if isinstance(value, dict) and "value" in value:
            inner = value["value"]
            return inner if isinstance(inner, (int, float, str)) else repr(inner)
        return value if isinstance(value, (int, float, str)) else repr(value)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} name={self.name!r} unit={self.unit!r}>"


class ApplicationRegistry:
    """Name -> factory registry so the CLI and benches can look apps up."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Application]] = {}

    def register(self, name: str, factory: Callable[..., Application]) -> None:
        self._factories[name] = factory

    def create(self, name: str, **kwargs: Any) -> Application:
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown application {name!r}; known: {sorted(self._factories)}"
            ) from None
        return factory(**kwargs)

    def names(self) -> list:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


#: global registry populated by the application modules on import
registry = ApplicationRegistry()
