"""Open-data image processing: blurring Landsat-8 tiles (paper sections 4.1/4.3).

The paper blurs images from the Landsat-8 open satellite dataset.  It ships
three variants that differ in how the ~168 kB images reach the workers and
how the results come back:

* an **http** variant where a server distributes images and receives results
  synchronously — the worker's processing function only returns once the
  output image has been fully uploaded (used in the evaluation);
* **DAT** and **WebTorrent** variants where the data travels through an
  external, failure-prone peer-to-peer protocol, requiring the *stubborn*
  feedback loop of section 4.3 because a worker may report success while the
  download of its result later fails.

Since the real dataset is not available offline, tiles are synthesised
deterministically from their identifier (same dimensions, same wire weight);
the blur is a real separable box filter implemented with numpy.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np

from ..errors import ExternalTransferError
from .base import Application, NodeCallback, registry

__all__ = [
    "synthesize_tile",
    "box_blur",
    "ImageStore",
    "FlakyP2PStore",
    "ImageProcessingApplication",
]


def synthesize_tile(tile_id: int, size: int = 64) -> np.ndarray:
    """Deterministically generate a grayscale tile for *tile_id*.

    The tile mixes smooth gradients and salt-and-pepper noise so that the
    blur filter has a measurable effect (variance reduction) that tests can
    assert on.
    """
    rng = np.random.default_rng(tile_id)
    y, x = np.mgrid[0:size, 0:size]
    gradient = (x + 2 * y) % 97 / 97.0
    noise = rng.random((size, size))
    tile = 0.7 * gradient + 0.3 * noise
    return (tile * 255).astype(np.uint8)


def box_blur(image: np.ndarray, radius: int = 2) -> np.ndarray:
    """Separable box blur with edge clamping."""
    if radius < 1:
        return image.copy()
    padded = np.pad(image.astype(np.float64), radius, mode="edge")
    kernel = 2 * radius + 1
    # Horizontal then vertical pass using cumulative sums.
    cumsum_h = np.cumsum(padded, axis=1)
    horizontal = (
        cumsum_h[:, kernel - 1 :] - np.concatenate(
            [np.zeros((padded.shape[0], 1)), cumsum_h[:, : -kernel]], axis=1
        )
    ) / kernel
    cumsum_v = np.cumsum(horizontal, axis=0)
    vertical = (
        cumsum_v[kernel - 1 :, :] - np.concatenate(
            [np.zeros((1, horizontal.shape[1])), cumsum_v[: -kernel, :]], axis=0
        )
    ) / kernel
    return np.clip(vertical, 0, 255).astype(np.uint8)


class ImageStore:
    """The http server of the paper's evaluated variant.

    Workers fetch tiles by identifier and upload their blurred result; the
    upload is synchronous, so a result reported through Pando is guaranteed to
    have been received (paper section 4.1, last paragraph).
    """

    def __init__(self, tile_size: int = 64) -> None:
        self.tile_size = tile_size
        self.results: Dict[int, np.ndarray] = {}
        self.downloads = 0
        self.uploads = 0

    def fetch(self, tile_id: int) -> np.ndarray:
        self.downloads += 1
        return synthesize_tile(tile_id, self.tile_size)

    def upload(self, tile_id: int, blurred: np.ndarray) -> None:
        self.uploads += 1
        self.results[tile_id] = blurred

    def has_result(self, tile_id: int) -> bool:
        return tile_id in self.results


class FlakyP2PStore(ImageStore):
    """DAT/WebTorrent-like store whose transfers may fail asynchronously.

    ``upload`` succeeds from the worker's point of view, but with probability
    ``failure_rate`` the data never becomes available to the master — the
    situation the *stubborn* module must recover from.
    """

    def __init__(
        self,
        tile_size: int = 64,
        failure_rate: float = 0.3,
        seed: Optional[int] = 1234,
    ) -> None:
        super().__init__(tile_size)
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.lost_uploads = 0

    def upload(self, tile_id: int, blurred: np.ndarray) -> None:
        self.uploads += 1
        if self._rng.random() < self.failure_rate:
            # The worker's tab closed before the swarm replicated the data.
            self.lost_uploads += 1
            return
        self.results[tile_id] = blurred

    def verify(self, tile_id: int, _result: Any, cb: Callable) -> None:
        """Verification callback for :func:`repro.core.stubborn.stubborn`."""
        if self.has_result(tile_id):
            cb(None, True)
        else:
            cb(ExternalTransferError(f"tile {tile_id} never arrived"), False)


class ImageProcessingApplication(Application):
    """Blur Landsat-like tiles distributed through an external store."""

    name = "imageproc"
    unit = "Images/s"
    ops_per_value = 1.0
    #: the paper states 168 kB images are sent for processing
    input_size_bytes = 168_000
    result_size_bytes = 168_000
    dataflow = "pipeline"

    def __init__(
        self,
        store: Optional[ImageStore] = None,
        tile_size: int = 64,
        blur_radius: int = 2,
        tiles: int = 1_000,
    ) -> None:
        self.store = store or ImageStore(tile_size)
        self.tile_size = tile_size
        self.blur_radius = blur_radius
        self.tiles = tiles

    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        index = 0
        while count is None or index < count:
            yield {"tile_id": index % self.tiles}
            index += 1

    def process(self, value: Any, cb: NodeCallback) -> None:
        try:
            spec = self._unwrap(value)
            tile_id = int(spec["tile_id"])
            tile = self.store.fetch(tile_id)
            blurred = box_blur(tile, self.blur_radius)
            self.store.upload(tile_id, blurred)
            result = {
                "tile_id": tile_id,
                "mean": float(blurred.mean()),
                "variance": float(blurred.var()),
            }
        except Exception as exc:
            cb(exc, None)
            return
        cb(None, result)

    def cost(self, value: Any) -> float:
        return 1.0

    def simulate_result(self, value: Any) -> Any:
        spec = self._unwrap(value)
        return {
            "tile_id": spec.get("tile_id"),
            "mean": None,
            "variance": None,
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        return isinstance(result, dict) and "tile_id" in result

    @staticmethod
    def _unwrap(value: Any) -> dict:
        if isinstance(value, dict) and "value" in value and "application" in value:
            return value["value"]
        return value


registry.register("imageproc", ImageProcessingApplication)
