"""Crypto-currency mining — synchronous parallel search (paper section 4.2).

All miners compete to find a nonce such that the hash of (block, nonce) falls
below a difficulty threshold; once one is found, every miner moves to the
next block.  This introduces a feedback loop: a monitor lazily generates
*mining attempts* (current block + a nonce range), Pando's workers test every
nonce of their range, and the monitor only advances to the next block after a
valid nonce is reported (paper Figure 11).

One streamed value is one mining attempt covering ``ops_per_value`` nonces;
throughput in Table-2 units (Hashes/s) is ``values/s * ops_per_value``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Optional

from .base import Application, NodeCallback, registry

__all__ = [
    "CryptoMiningApplication",
    "MiningMonitor",
    "find_valid_nonce",
    "hash_attempt",
    "meets_difficulty",
]


def hash_attempt(block_data: str, nonce: int) -> int:
    """Double-SHA256 of ``block_data || nonce`` interpreted as an integer."""
    payload = f"{block_data}:{nonce}".encode("utf-8")
    digest = hashlib.sha256(hashlib.sha256(payload).digest()).digest()
    return int.from_bytes(digest, "big")


def meets_difficulty(hash_value: int, difficulty_bits: int) -> bool:
    """True when *hash_value* has at least *difficulty_bits* leading zero bits."""
    return hash_value < (1 << (256 - difficulty_bits))


def find_valid_nonce(block_data: str, difficulty_bits: int, start: int = 0) -> int:
    """Smallest nonce >= *start* whose hash meets *difficulty_bits*.

    Used by benchmarks and examples that need an attempt guaranteed to
    contain a hit (expected cost ``2**difficulty_bits`` hashes, so keep the
    difficulty low when calling this on the master).
    """
    nonce = start
    while not meets_difficulty(hash_attempt(block_data, nonce), difficulty_bits):
        nonce += 1
    return nonce


class CryptoMiningApplication(Application):
    """Test ranges of nonces against the current block's difficulty."""

    name = "crypto"
    unit = "Hashes/s"
    ops_per_value = 5_000.0
    input_size_bytes = 256
    result_size_bytes = 96
    dataflow = "synchronous-search"

    def __init__(
        self,
        difficulty_bits: int = 18,
        range_size: Optional[int] = None,
        genesis: str = "pando-genesis-block",
    ) -> None:
        self.difficulty_bits = difficulty_bits
        self.genesis = genesis
        if range_size is not None:
            self.ops_per_value = float(range_size)

    # ------------------------------------------------------------- interface
    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        """Open-loop attempt stream (ranges over block 0).

        The closed-loop behaviour with block advancement is provided by
        :class:`MiningMonitor`; this generator is what the throughput
        measurement uses, where the block rarely advances within the window.
        """
        range_size = int(self.ops_per_value)
        index = 0
        while count is None or index < count:
            yield {
                "block": self.block_data(0),
                "height": 0,
                "start": index * range_size,
                "count": range_size,
                "difficulty_bits": self.difficulty_bits,
            }
            index += 1

    def process(self, value: Any, cb: NodeCallback) -> None:
        try:
            attempt = self._unwrap(value)
            block = attempt["block"]
            start, count = int(attempt["start"]), int(attempt["count"])
            bits = int(attempt.get("difficulty_bits", self.difficulty_bits))
            result = {
                "found": False,
                "nonce": None,
                "height": attempt.get("height", 0),
                "hashes": count,
            }
            for nonce in range(start, start + count):
                if meets_difficulty(hash_attempt(block, nonce), bits):
                    result = {
                        "found": True,
                        "nonce": nonce,
                        "height": attempt.get("height", 0),
                        "hashes": nonce - start + 1,
                    }
                    break
        except Exception as exc:
            cb(exc, None)
            return
        cb(None, result)

    def cost(self, value: Any) -> float:
        attempt = self._unwrap(value)
        return float(attempt.get("count", self.ops_per_value))

    def simulate_result(self, value: Any) -> Any:
        attempt = self._unwrap(value)
        return {
            "found": False,
            "nonce": None,
            "height": attempt.get("height", 0),
            "hashes": attempt.get("count", int(self.ops_per_value)),
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        return isinstance(result, dict) and "found" in result

    # -------------------------------------------------------------- helpers
    def block_data(self, height: int, previous_nonce: Optional[int] = None) -> str:
        """Serialized "block" contents for a given chain height."""
        return f"{self.genesis}/{height}/{previous_nonce if previous_nonce is not None else '-'}"

    @staticmethod
    def _unwrap(value: Any) -> dict:
        if isinstance(value, dict) and "value" in value and "application" in value:
            return value["value"]
        return value


class MiningMonitor:
    """The feedback-loop monitor of Figure 11.

    It lazily emits mining attempts for the current block — as many as there
    are participating workers — and advances to the next block once a valid
    nonce is reported.  ``attempts()`` is a generator suitable for feeding
    Pando; ``record_result`` must be called with every output.
    """

    def __init__(self, app: CryptoMiningApplication, target_height: int = 3) -> None:
        self.app = app
        self.target_height = target_height
        self.height = 0
        self.previous_nonce: Optional[int] = None
        self.next_range_start = 0
        self.chain: List[Dict[str, Any]] = []

    @property
    def done(self) -> bool:
        """True once the target number of blocks has been mined."""
        return self.height >= self.target_height

    def attempts(self) -> Iterator[dict]:
        """Lazily produce mining attempts for the current block."""
        while not self.done:
            attempt = {
                "block": self.app.block_data(self.height, self.previous_nonce),
                "height": self.height,
                "start": self.next_range_start,
                "count": int(self.app.ops_per_value),
                "difficulty_bits": self.app.difficulty_bits,
            }
            self.next_range_start += int(self.app.ops_per_value)
            yield attempt

    def record_result(self, result: dict) -> None:
        """Feed one Pando output back into the monitor."""
        if not result.get("found"):
            return
        if result.get("height") != self.height:
            # A stale result for an already-mined block: ignore it.
            return
        self.chain.append(
            {"height": self.height, "nonce": result["nonce"]}
        )
        self.previous_nonce = result["nonce"]
        self.height += 1
        self.next_range_start = 0


registry.register("crypto", CryptoMiningApplication)
