"""Machine-learning agent hyper-parameter search (paper section 4.1).

The paper's application searches for the learning rate that lets a simulated
agent learn a rewarding sequence of steps the fastest; the training is
interactive and a hyper-parameter case can be aborted early if the agent
fails to learn.  The reproduction trains a tabular Q-learning agent on a
small grid world: each streamed value is one hyper-parameter configuration
plus a number of training steps; the result reports the cumulative reward
and whether the goal-reaching policy was learned.

One streamed value accounts for ``ops_per_value`` environment steps, matching
Table 2's Steps/s unit.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .base import Application, NodeCallback, registry

__all__ = ["GridWorld", "QLearningAgent", "MLAgentApplication"]


class GridWorld:
    """A small deterministic grid world with one goal cell."""

    def __init__(self, width: int = 5, height: int = 5) -> None:
        self.width = width
        self.height = height
        self.start = (0, 0)
        self.goal = (width - 1, height - 1)
        self.actions = ["up", "down", "left", "right"]

    def step(self, state: Tuple[int, int], action: str) -> Tuple[Tuple[int, int], float, bool]:
        """Apply *action*; return (next_state, reward, done)."""
        x, y = state
        if action == "up":
            y = min(self.height - 1, y + 1)
        elif action == "down":
            y = max(0, y - 1)
        elif action == "left":
            x = max(0, x - 1)
        elif action == "right":
            x = min(self.width - 1, x + 1)
        else:
            raise ValueError(f"unknown action {action!r}")
        next_state = (x, y)
        if next_state == self.goal:
            return next_state, 10.0, True
        return next_state, -0.1, False


class QLearningAgent:
    """Tabular Q-learning with epsilon-greedy exploration."""

    def __init__(
        self,
        world: GridWorld,
        learning_rate: float,
        discount: float = 0.95,
        epsilon: float = 0.2,
        seed: int = 0,
    ) -> None:
        self.world = world
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon = epsilon
        self.rng = random.Random(seed)
        self.q: Dict[Tuple[Tuple[int, int], str], float] = {}

    def value(self, state: Tuple[int, int], action: str) -> float:
        return self.q.get((state, action), 0.0)

    def best_action(self, state: Tuple[int, int]) -> str:
        return max(self.world.actions, key=lambda action: self.value(state, action))

    def act(self, state: Tuple[int, int]) -> str:
        if self.rng.random() < self.epsilon:
            return self.rng.choice(self.world.actions)
        return self.best_action(state)

    def train(self, max_steps: int) -> Dict[str, Any]:
        """Train for at most *max_steps* environment steps."""
        state = self.world.start
        total_reward = 0.0
        episodes = 0
        steps = 0
        while steps < max_steps:
            action = self.act(state)
            next_state, reward, done = self.world.step(state, action)
            best_next = max(
                self.value(next_state, a) for a in self.world.actions
            )
            key = (state, action)
            self.q[key] = self.value(state, action) + self.learning_rate * (
                reward + self.discount * best_next - self.value(state, action)
            )
            total_reward += reward
            steps += 1
            if done:
                episodes += 1
                state = self.world.start
            else:
                state = next_state
        return {
            "steps": steps,
            "episodes": episodes,
            "total_reward": total_reward,
            "learned": episodes > 0 and self.greedy_reaches_goal(),
        }

    def greedy_reaches_goal(self, max_steps: int = 200) -> bool:
        """Whether the greedy policy reaches the goal from the start."""
        state = self.world.start
        for _ in range(max_steps):
            state, _reward, done = self.world.step(state, self.best_action(state))
            if done:
                return True
        return False


class MLAgentApplication(Application):
    """Hyper-parameter (learning-rate) search over Q-learning runs."""

    name = "ml_agent"
    unit = "Steps/s"
    ops_per_value = 200.0
    input_size_bytes = 96
    result_size_bytes = 128
    dataflow = "pipeline"

    def __init__(
        self,
        learning_rates: Optional[List[float]] = None,
        steps_per_value: Optional[int] = None,
        seed: int = 7,
    ) -> None:
        self.learning_rates = learning_rates or [
            0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9,
        ]
        self.seed = seed
        if steps_per_value is not None:
            self.ops_per_value = float(steps_per_value)

    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        index = 0
        while count is None or index < count:
            rate = self.learning_rates[index % len(self.learning_rates)]
            yield {
                "learning_rate": rate,
                "steps": int(self.ops_per_value),
                "seed": self.seed + index,
            }
            index += 1

    def process(self, value: Any, cb: NodeCallback) -> None:
        try:
            spec = self._unwrap(value)
            agent = QLearningAgent(
                GridWorld(),
                learning_rate=float(spec["learning_rate"]),
                seed=int(spec.get("seed", self.seed)),
            )
            outcome = agent.train(int(spec["steps"]))
            outcome["learning_rate"] = spec["learning_rate"]
        except Exception as exc:
            cb(exc, None)
            return
        cb(None, outcome)

    def cost(self, value: Any) -> float:
        spec = self._unwrap(value)
        return float(spec.get("steps", self.ops_per_value))

    def simulate_result(self, value: Any) -> Any:
        spec = self._unwrap(value)
        return {
            "steps": spec.get("steps", int(self.ops_per_value)),
            "episodes": 0,
            "total_reward": 0.0,
            "learned": False,
            "learning_rate": spec.get("learning_rate"),
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        return isinstance(result, dict) and "total_reward" in result

    def postprocess(self, results) -> Any:
        """Pick the learning rate with the best cumulative reward."""
        best = None
        for result in results:
            if best is None or result["total_reward"] > best["total_reward"]:
                best = result
        return best

    @staticmethod
    def _unwrap(value: Any) -> dict:
        if isinstance(value, dict) and "value" in value and "application" in value:
            return value["value"]
        return value


registry.register("ml_agent", MLAgentApplication)
