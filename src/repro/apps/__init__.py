"""The paper's applications (section 4), all built on the public Pando API.

Importing this package populates :data:`repro.apps.registry` with factories
for every application, keyed by the Table-2 column names plus ``arxiv``:
``collatz``, ``crypto``, ``lender_test``, ``raytrace``, ``imageproc``,
``ml_agent``, ``arxiv``.
"""

from .base import Application, ApplicationRegistry, registry
from .collatz import CollatzApplication, collatz_steps
from .crypto import CryptoMiningApplication, MiningMonitor, hash_attempt, meets_difficulty
from .lender_test import LenderTestApplication, run_random_execution
from .ml_agent import GridWorld, MLAgentApplication, QLearningAgent
from .raytracer import RaytraceApplication, assemble_animation, render_scene
from .imageproc import (
    FlakyP2PStore,
    ImageProcessingApplication,
    ImageStore,
    box_blur,
    synthesize_tile,
)
from .arxiv import ArxivTaggingApplication, SimulatedTagger, SAMPLE_PAPERS

__all__ = [
    "Application",
    "ApplicationRegistry",
    "registry",
    "CollatzApplication",
    "collatz_steps",
    "CryptoMiningApplication",
    "MiningMonitor",
    "hash_attempt",
    "meets_difficulty",
    "LenderTestApplication",
    "run_random_execution",
    "GridWorld",
    "MLAgentApplication",
    "QLearningAgent",
    "RaytraceApplication",
    "assemble_animation",
    "render_scene",
    "FlakyP2PStore",
    "ImageProcessingApplication",
    "ImageStore",
    "box_blur",
    "synthesize_tile",
    "ArxivTaggingApplication",
    "SimulatedTagger",
    "SAMPLE_PAPERS",
]
