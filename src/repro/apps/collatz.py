"""Collatz application (paper section 4.1).

The BOINC Collatz Conjecture project searches for the integer that needs the
largest number of steps of the ``3n+1`` iteration to reach 1.  The paper's
version was compiled from MATLAB to JavaScript and adapted to use a BigNumber
library; Python's arbitrary-precision integers play that role here.

One streamed value represents a *batch* of consecutive candidate integers
(``ops_per_value`` of them), mirroring how the real deployment keeps the
per-message overhead small relative to the computation; throughput in
Table-2 units (Bignum/s) is ``values/s * ops_per_value``.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from .base import Application, NodeCallback, registry

__all__ = ["CollatzApplication", "collatz_steps"]


def collatz_steps(n: int, max_steps: int = 10_000_000) -> int:
    """Number of Collatz steps needed for *n* to reach 1."""
    if n < 1:
        raise ValueError(f"Collatz is defined for positive integers, got {n}")
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n //= 2
        else:
            n = 3 * n + 1
        steps += 1
        if steps >= max_steps:
            raise ValueError(f"exceeded {max_steps} steps; giving up")
    return steps


class CollatzApplication(Application):
    """Find the candidate with the most Collatz steps in each batch."""

    name = "collatz"
    unit = "Bignum/s"
    ops_per_value = 100.0
    input_size_bytes = 128
    result_size_bytes = 96
    dataflow = "pipeline"

    def __init__(
        self,
        start: int = 1,
        batch: Optional[int] = None,
        offset: int = 2 ** 40,
    ) -> None:
        """*offset* shifts candidates into big-number territory (the BOINC
        project explores very large integers); *batch* overrides
        ``ops_per_value``."""
        self.start = start
        self.offset = offset
        if batch is not None:
            self.ops_per_value = float(batch)

    # ------------------------------------------------------------- interface
    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        batch = int(self.ops_per_value)
        index = 0
        current = self.start
        while count is None or index < count:
            yield {"first": self.offset + current, "count": batch}
            current += batch
            index += 1

    def process(self, value: Any, cb: NodeCallback) -> None:
        try:
            spec = self._unwrap(value)
            first, count = int(spec["first"]), int(spec["count"])
            best_n, best_steps = first, -1
            for candidate in range(first, first + count):
                steps = collatz_steps(candidate)
                if steps > best_steps:
                    best_n, best_steps = candidate, steps
            result = {"n": best_n, "steps": best_steps, "checked": count}
        except Exception as exc:
            cb(exc, None)
            return
        cb(None, result)

    def cost(self, value: Any) -> float:
        spec = self._unwrap(value)
        return float(spec.get("count", self.ops_per_value))

    def simulate_result(self, value: Any) -> Any:
        spec = self._unwrap(value)
        return {
            "n": spec.get("first"),
            "steps": 0,
            "checked": spec.get("count", int(self.ops_per_value)),
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        return isinstance(result, dict) and "steps" in result and "n" in result

    def postprocess(self, results) -> Any:
        """The ``Max`` post-processing stage of Figure 10."""
        best = None
        for result in results:
            if best is None or result["steps"] > best["steps"]:
                best = result
        return best

    # ------------------------------------------------------------- internals
    @staticmethod
    def _unwrap(value: Any) -> dict:
        if isinstance(value, dict) and "value" in value and "application" in value:
            return value["value"]
        return value


registry.register("collatz", CollatzApplication)
