"""Raytracing animation rendering (paper sections 2.1 and 4.1).

The paper's motivating example renders the frames of a rotation animation
around a 3D scene with a raytracer taken from the Web, distributes one camera
angle per streamed value, and assembles the rendered frames into an animated
GIF in input order.  This module provides:

* a small but genuine Whitted-style raytracer (spheres + plane, one point
  light, shadows, Lambert/specular shading) implemented with numpy;
* :class:`RaytraceApplication`, whose inputs are camera angles and whose
  results are gzip+base64-encoded pixel buffers exactly as in the paper's
  Figure 2;
* an animation assembler standing in for ``gif-encoder.js`` which checks
  frame ordering and packs the frames into a single artefact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..net.serialization import decode_binary, encode_binary
from .base import Application, NodeCallback, registry

__all__ = ["Scene", "render_scene", "RaytraceApplication", "assemble_animation"]


class Scene:
    """The 3D scene of the rotation animation: three spheres above a plane."""

    def __init__(self) -> None:
        self.spheres = [
            # (center, radius, colour, specular)
            (np.array([0.0, 0.0, 0.0]), 1.0, np.array([0.9, 0.2, 0.2]), 0.6),
            (np.array([2.0, 0.0, -1.0]), 0.7, np.array([0.2, 0.9, 0.2]), 0.4),
            (np.array([-2.0, 0.0, -1.0]), 0.7, np.array([0.2, 0.2, 0.9]), 0.4),
        ]
        self.plane_y = -1.0
        self.plane_colour = np.array([0.8, 0.8, 0.8])
        self.light = np.array([5.0, 5.0, 5.0])
        self.ambient = 0.15
        self.background = np.array([0.05, 0.05, 0.1])


def _intersect_sphere(origin, direction, center, radius) -> Optional[float]:
    oc = origin - center
    b = 2.0 * np.dot(oc, direction)
    c = np.dot(oc, oc) - radius * radius
    disc = b * b - 4.0 * c
    if disc < 0:
        return None
    sqrt_disc = math.sqrt(disc)
    for t in ((-b - sqrt_disc) / 2.0, (-b + sqrt_disc) / 2.0):
        if t > 1e-4:
            return t
    return None


def _trace(scene: Scene, origin: np.ndarray, direction: np.ndarray) -> np.ndarray:
    nearest_t, hit = None, None
    for center, radius, colour, specular in scene.spheres:
        t = _intersect_sphere(origin, direction, center, radius)
        if t is not None and (nearest_t is None or t < nearest_t):
            nearest_t = t
            point = origin + t * direction
            normal = (point - center) / radius
            hit = (point, normal, colour, specular)
    # Ground plane y = plane_y
    if abs(direction[1]) > 1e-6:
        t = (scene.plane_y - origin[1]) / direction[1]
        if t > 1e-4 and (nearest_t is None or t < nearest_t):
            point = origin + t * direction
            checker = (int(math.floor(point[0])) + int(math.floor(point[2]))) % 2
            colour = scene.plane_colour * (0.6 if checker else 1.0)
            hit = (point, np.array([0.0, 1.0, 0.0]), colour, 0.1)
    if hit is None:
        return scene.background
    point, normal, colour, specular = hit
    to_light = scene.light - point
    light_distance = np.linalg.norm(to_light)
    to_light = to_light / light_distance
    # Shadow test
    in_shadow = False
    for center, radius, _colour, _spec in scene.spheres:
        t = _intersect_sphere(point, to_light, center, radius)
        if t is not None and t < light_distance:
            in_shadow = True
            break
    intensity = scene.ambient
    if not in_shadow:
        intensity += max(0.0, float(np.dot(normal, to_light)))
        half = to_light - direction
        half = half / (np.linalg.norm(half) + 1e-9)
        intensity += specular * max(0.0, float(np.dot(normal, half))) ** 20
    return np.clip(colour * intensity, 0.0, 1.0)


def render_scene(angle_degrees: float, width: int = 32, height: int = 24) -> np.ndarray:
    """Render the scene from a camera rotated by *angle_degrees* around it.

    Returns an ``(height, width, 3)`` uint8 pixel array.  The default
    resolution is deliberately small (the paper also reduced the image size to
    fit WebRTC message limits); callers can raise it for nicer output.
    """
    scene = Scene()
    angle = math.radians(angle_degrees)
    camera = np.array([5.0 * math.sin(angle), 1.5, 5.0 * math.cos(angle)])
    target = np.array([0.0, 0.0, 0.0])
    forward = target - camera
    forward = forward / np.linalg.norm(forward)
    right = np.cross(forward, np.array([0.0, 1.0, 0.0]))
    right = right / np.linalg.norm(right)
    up = np.cross(right, forward)

    image = np.zeros((height, width, 3), dtype=np.float64)
    aspect = width / height
    for py in range(height):
        for px in range(width):
            u = (2.0 * (px + 0.5) / width - 1.0) * aspect
            v = 1.0 - 2.0 * (py + 0.5) / height
            direction = forward + u * right + v * up
            direction = direction / np.linalg.norm(direction)
            image[py, px] = _trace(scene, camera, direction)
    return (image * 255).astype(np.uint8)


def assemble_animation(frames: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Stand-in for ``gif-encoder.js``: pack ordered frames into one artefact.

    Verifies that the frames arrive in increasing angle order (Pando
    guarantees output ordering) and returns a dict with the decoded frame
    count and total byte size.
    """
    angles = [frame["angle"] for frame in frames]
    if angles != sorted(angles):
        raise ValueError("frames are out of order; the animation would be scrambled")
    total_bytes = 0
    decoded = []
    for frame in frames:
        pixels = decode_binary(frame["pixels"])
        total_bytes += len(pixels)
        decoded.append(pixels)
    return {"frames": len(frames), "bytes": total_bytes, "angles": angles}


class RaytraceApplication(Application):
    """Render one animation frame per streamed camera angle."""

    name = "raytrace"
    unit = "Frames/s"
    ops_per_value = 1.0
    input_size_bytes = 32
    #: compressed pixel buffer of the reduced-size frame
    result_size_bytes = 40_000
    dataflow = "pipeline"

    def __init__(
        self,
        frames: int = 24,
        width: int = 32,
        height: int = 24,
    ) -> None:
        self.frames = frames
        self.width = width
        self.height = height

    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        total = count if count is not None else None
        index = 0
        while total is None or index < total:
            angle = (360.0 / self.frames) * (index % self.frames)
            yield {"angle": angle, "frame": index}
            index += 1

    def process(self, value: Any, cb: NodeCallback) -> None:
        """Figure 2: render, then gzip+base64 the pixel buffer."""
        try:
            spec = self._unwrap(value)
            angle = float(spec["angle"])
            pixels = render_scene(angle, self.width, self.height)
            encoded = encode_binary(pixels.tobytes())
            result = {
                "angle": angle,
                "frame": spec.get("frame"),
                "pixels": encoded,
                "shape": list(pixels.shape),
            }
        except Exception as exc:
            cb(exc, None)
            return
        cb(None, result)

    def cost(self, value: Any) -> float:
        return 1.0

    def simulate_result(self, value: Any) -> Any:
        spec = self._unwrap(value)
        return {
            "angle": spec.get("angle"),
            "frame": spec.get("frame"),
            "pixels": None,
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        return isinstance(result, dict) and "angle" in result

    def postprocess(self, results) -> Any:
        frames = [result for result in results if result.get("pixels") is not None]
        if not frames:
            return {"frames": 0, "bytes": 0, "angles": []}
        return assemble_animation(frames)

    @staticmethod
    def _unwrap(value: Any) -> dict:
        if isinstance(value, dict) and "value" in value and "application" in value:
            return value["value"]
        return value


registry.register("raytrace", RaytraceApplication)
