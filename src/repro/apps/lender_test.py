"""StreamLender random testing (paper section 4.1, "SL test").

The paper uses Pando itself to test Pando: each input is a random-number
seed; the worker performs a randomised execution of StreamLender — random
numbers of sub-streams, random interleavings of borrows, results, crashes and
aborts — while a protocol checker watches for violations of the pull-stream
invariants, and reports whether the execution was correct.  The authors
credit this application with finding three corner-case bugs and then scaling
to millions of executions.

One streamed value carries ``ops_per_value`` random executions.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional

from ..core.lender import StreamLender, UnorderedStreamLender
from ..pullstream import collect, pull, values
from ..pullstream.protocol import DONE, check_protocol
from .base import Application, NodeCallback, registry

__all__ = ["LenderTestApplication", "run_random_execution"]


def run_random_execution(seed: int, ordered: bool = True) -> Dict[str, Any]:
    """Run one randomised StreamLender execution and check its invariants.

    Returns a dict with ``ok`` plus diagnostic counters.  The invariants
    checked are the ones Table 1 promises:

    * every input value is eventually delivered exactly once (no loss, no
      duplication) as long as at least one sub-stream survives;
    * with the ordered variant, outputs appear in input order;
    * the pull-stream protocol is never violated on the output.
    """
    rng = random.Random(seed)
    n_values = rng.randint(0, 30)
    n_subs = rng.randint(1, 5)
    inputs = list(range(n_values))

    lender = StreamLender() if ordered else UnorderedStreamLender()
    source = check_protocol(values(inputs), name=f"exec-{seed}-input")
    output = pull(source, lender, collect())

    subs = []
    for _ in range(n_subs):
        lender.lend_stream(lambda err, sub: subs.append(sub) if err is None else None)

    # Each live sub-stream processes values one at a time; some crash midway.
    crash_after = {
        sub.id: (rng.randint(0, 5) if rng.random() < 0.4 else None) for sub in subs
    }
    processed_counts = {sub.id: 0 for sub in subs}

    def drive(sub) -> None:
        state = {"active": True}

        def ask() -> None:
            if not state["active"]:
                return
            limit = crash_after[sub.id]
            if limit is not None and processed_counts[sub.id] >= limit:
                # Crash-stop: abort the borrow stream, never answer again.
                state["active"] = False
                sub.source(DONE, lambda _e, _v: None)
                return
            sub.source(None, answer)

        def answer(end, value) -> None:
            if end is not None:
                state["active"] = False
                return
            processed_counts[sub.id] += 1
            results_to_send.setdefault(sub.id, []).append(value * 2)
            ask()

        ask()

    results_to_send: Dict[int, List[int]] = {}
    # Interleave: drive sub-streams in random order, then deliver results.
    order = list(subs)
    rng.shuffle(order)
    for sub in order:
        drive(sub)
    for sub in subs:
        outputs = results_to_send.get(sub.id, [])
        if crash_after[sub.id] is not None and crash_after[sub.id] <= len(outputs):
            # The crashing sub-stream never sends its results.
            continue
        sub.sink(values(list(outputs)))

    # At least one surviving sub-stream must mop up re-lent values.  The
    # survivor streams its results back incrementally (through a pushable)
    # because the lender only terminates the borrow stream once every result
    # has been delivered.
    survivor_ids = {sub.id for sub in subs if crash_after[sub.id] is None}
    if not survivor_ids and n_values > 0:
        from ..pullstream import pushable

        lender.lend_stream(lambda err, sub: None if err else subs.append(sub))
        survivor = subs[-1]
        survivor_results = pushable()
        survivor.sink(survivor_results)

        def mop_ask() -> None:
            survivor.source(None, mop_answer)

        def mop_answer(end, value) -> None:
            if end is not None:
                survivor_results.end()
                return
            survivor_results.push(value * 2)
            mop_ask()

        mop_ask()

    ok = output.done
    delivered = list(output.value or []) if output.done else []
    expected = [v * 2 for v in inputs]
    if ok and ordered:
        ok = delivered == expected
    elif ok:
        ok = sorted(delivered) == sorted(expected)
    return {
        "ok": bool(ok),
        "values": n_values,
        "substreams": n_subs,
        "delivered": len(delivered),
        "seed": seed,
    }


class LenderTestApplication(Application):
    """Randomised testing of StreamLender, distributed through Pando."""

    name = "lender_test"
    unit = "Tests/s"
    ops_per_value = 50.0
    input_size_bytes = 64
    result_size_bytes = 64
    dataflow = "pipeline"

    def __init__(self, executions_per_value: Optional[int] = None, base_seed: int = 0) -> None:
        self.base_seed = base_seed
        if executions_per_value is not None:
            self.ops_per_value = float(executions_per_value)

    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        batch = int(self.ops_per_value)
        index = 0
        while count is None or index < count:
            yield {"seed": self.base_seed + index * batch, "count": batch}
            index += 1

    def process(self, value: Any, cb: NodeCallback) -> None:
        try:
            spec = self._unwrap(value)
            seed, count = int(spec["seed"]), int(spec["count"])
            failures = []
            for offset in range(count):
                outcome = run_random_execution(seed + offset)
                if not outcome["ok"]:
                    failures.append(outcome)
            result = {"executions": count, "failures": failures, "ok": not failures}
        except Exception as exc:
            cb(exc, None)
            return
        cb(None, result)

    def cost(self, value: Any) -> float:
        spec = self._unwrap(value)
        return float(spec.get("count", self.ops_per_value))

    def simulate_result(self, value: Any) -> Any:
        spec = self._unwrap(value)
        return {
            "executions": spec.get("count", int(self.ops_per_value)),
            "failures": [],
            "ok": True,
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        return isinstance(result, dict) and "ok" in result

    @staticmethod
    def _unwrap(value: Any) -> dict:
        if isinstance(value, dict) and "value" in value and "application" in value:
            return value["value"]
        return value


registry.register("lender_test", LenderTestApplication)
