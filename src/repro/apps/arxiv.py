"""arXiv crowd-tagging (paper section 4.1).

This application uses the browser as a *user interface* rather than a
processing environment: each streamed value is the metadata of one paper, and
the "processing" is a collaborator deciding whether it is interesting — a
form of crowd-processing the paper likens to launching an online rescue
search over satellite images.

Since the evaluation excludes this application (the work is done by humans,
not devices), the reproduction models the taggers: a
:class:`SimulatedTagger` applies keyword preferences plus a per-tagger
reading delay, which also makes the application useful for exercising
Pando's handling of very slow, bursty workers.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional

from .base import Application, NodeCallback, registry

__all__ = ["SimulatedTagger", "ArxivTaggingApplication", "SAMPLE_PAPERS"]

#: A small built-in corpus of paper metadata (title, categories).
SAMPLE_PAPERS: List[Dict[str, Any]] = [
    {"id": "1803.08426", "title": "Pando: Personal Volunteer Computing in Browsers", "categories": ["cs.DC"]},
    {"id": "1904.11402", "title": "Genet: A Quickly Scalable Fat-Tree Overlay for Personal Volunteer Computing using WebRTC", "categories": ["cs.DC"]},
    {"id": "1903.01699", "title": "BOINC: A Platform for Volunteer Computing", "categories": ["cs.DC"]},
    {"id": "1603.04467", "title": "TensorFlow: Large-Scale Machine Learning on Heterogeneous Distributed Systems", "categories": ["cs.DC", "cs.LG"]},
    {"id": "1712.01815", "title": "Mastering Chess and Shogi by Self-Play with a General Reinforcement Learning Algorithm", "categories": ["cs.AI"]},
    {"id": "2004.05150", "title": "Longformer: The Long-Document Transformer", "categories": ["cs.CL"]},
    {"id": "1706.03762", "title": "Attention Is All You Need", "categories": ["cs.CL", "cs.LG"]},
    {"id": "0704.0001", "title": "Calculation of prompt diphoton production cross sections", "categories": ["hep-ph"]},
]


class SimulatedTagger:
    """A collaborator with keyword interests and a reading speed."""

    def __init__(
        self,
        name: str,
        interests: List[str],
        seconds_per_paper: float = 30.0,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.interests = [keyword.lower() for keyword in interests]
        self.seconds_per_paper = seconds_per_paper
        self._rng = random.Random(seed)

    def tag(self, paper: Dict[str, Any]) -> Dict[str, Any]:
        """Decide whether *paper* is interesting to this tagger."""
        haystack = (
            paper.get("title", "").lower()
            + " "
            + " ".join(paper.get("categories", [])).lower()
        )
        matched = [keyword for keyword in self.interests if keyword in haystack]
        # Humans are not deterministic: a small chance of tagging anything.
        serendipity = self._rng.random() < 0.05
        return {
            "paper_id": paper.get("id"),
            "tagger": self.name,
            "interesting": bool(matched) or serendipity,
            "matched_keywords": matched,
        }


class ArxivTaggingApplication(Application):
    """Distribute papers to (simulated) human taggers."""

    name = "arxiv"
    unit = "Papers/s"
    ops_per_value = 1.0
    input_size_bytes = 512
    result_size_bytes = 128
    dataflow = "pipeline"

    def __init__(
        self,
        papers: Optional[List[Dict[str, Any]]] = None,
        tagger: Optional[SimulatedTagger] = None,
    ) -> None:
        self.papers = list(papers or SAMPLE_PAPERS)
        self.tagger = tagger or SimulatedTagger(
            "default", interests=["volunteer computing", "webrtc", "cs.dc"]
        )

    def generate_inputs(self, count: Optional[int] = None) -> Iterator[Any]:
        index = 0
        while count is None or index < count:
            yield dict(self.papers[index % len(self.papers)])
            index += 1

    def process(self, value: Any, cb: NodeCallback) -> None:
        try:
            paper = self._unwrap(value)
            result = self.tagger.tag(paper)
        except Exception as exc:
            cb(exc, None)
            return
        cb(None, result)

    def cost(self, value: Any) -> float:
        return 1.0

    def simulate_result(self, value: Any) -> Any:
        paper = self._unwrap(value)
        return {
            "paper_id": paper.get("id"),
            "tagger": self.tagger.name,
            "interesting": False,
            "matched_keywords": [],
            "size_bytes": self.result_size_bytes,
            "simulated": True,
        }

    def verify_result(self, value: Any, result: Any) -> bool:
        return isinstance(result, dict) and "interesting" in result

    def postprocess(self, results) -> Any:
        """Collect the reading list of interesting papers."""
        return [result for result in results if result.get("interesting")]

    @staticmethod
    def _unwrap(value: Any) -> dict:
        if isinstance(value, dict) and "value" in value and "application" in value:
            return value["value"]
        return value


registry.register("arxiv", ArxivTaggingApplication)
