"""A pull-stream duplex backed by a pool of OS processes.

The paper's evaluation runs every worker in a separate browser tab — a real
OS process — while the reproduction's ``add_local_worker`` executes the
function synchronously on the interpreter thread, which caps CPU-bound
applications at single-core speed.  :class:`ProcessPoolWorker` closes that
gap: it exposes the same :class:`~repro.pullstream.duplex.Duplex` shape as a
network channel (sink: values in, source: results out, one result frame per
input frame, in borrow order) but dispatches the work to a
``concurrent.futures.ProcessPoolExecutor``.

Because the duplex contract is identical, the whole master-side machinery —
``StreamLender`` fault tolerance, ``Limiter`` admission windows,
``batching`` wire frames — composes with it unchanged (paper Figure 9)::

    pool = ProcessPoolWorker("mypackage.tasks:render", processes=4)
    pull(sub.source, batching(8), Limiter(pool, 5), unbatching(), sub.sink)

Flow control: the sink eagerly drains its upstream (exactly like the network
channel adapters, which is why a ``Limiter`` belongs in front) and submits
one executor task per frame; the source blocks on the oldest pending future,
so later frames keep computing in other processes while the head of line is
awaited.  A task that raises — including a crashed worker process
(``BrokenProcessPool``) — errors the result stream, which ``StreamLender``
treats as a crash-stop failure and re-lends the borrowed values elsewhere.

With ``blocking=False`` the source never blocks: an ask whose head-of-line
future is still running is parked, and a driver (the sharded master's
:meth:`~repro.core.distributed_map.DistributedMap.drive` loop) later calls
:meth:`ProcessPoolWorker.poll` to deliver completed results.  This is what
lets several pools pump concurrently from one interpreter thread — a
blocking source would monopolise it and serialise the pools.

``transport="shm"`` moves the frame *payloads* off the executor pipe: large
``bytes``/array values are written once into a
:class:`~repro.net.shm_ring.ShmRing` slot and only the tiny control record
(slot index, length, dtype tag) is pickled, cutting the per-frame
serialization that dominates no-op pool throughput on big payloads.  Slot
lifetime is tied to the frame: acquired on submit, reused by the child for
the result, released when the result is read — or when the frame is
cancelled, fails, or the pool shuts down, so the ring cannot leak.  A
payload that fits no slot (or finds the ring exhausted) stays in-band on
the pipe, exactly as with ``transport="pipe"``.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..analysis.annotations import loop_only
from ..errors import PandoError, ProtocolError, WorkerCrashed
from ..net.serialization import OOB_MIN_BYTES, Batch
from ..net.shm_ring import ShmRing, pack_frame, unpack_frame
from ..pullstream.protocol import DONE, Callback, End, Source, is_error
from ..pullstream.sinks import eager_pump
from .cancel import CancelFlag
from .tasks import (
    FunctionRef,
    resolve_callable,
    run_batch,
    run_shm_batch,
    run_shm_task,
    run_task,
)

__all__ = ["ProcessPoolWorker", "default_window"]


def default_window(processes: Optional[int]) -> int:
    """Limiter window that keeps *processes* workers busy plus one in reserve."""
    return max(2, (processes or os.cpu_count() or 1) + 1)


class ProcessPoolWorker:
    """Duplex channel whose far side is a ``ProcessPoolExecutor``.

    Parameters
    ----------
    fn_ref:
        The processing function, as accepted by
        :func:`repro.pool.tasks.resolve_callable` — a dotted-name string, a
        ``("file", path)`` tuple, or a picklable callable.
    processes:
        Pool size (defaults to ``os.cpu_count()``).
    task_timeout:
        Optional per-frame timeout in seconds when awaiting a result; a
        timeout errors the result stream like a crashed worker.
    blocking:
        When True (the default), the source blocks on the head-of-line
        future.  When False, such an ask is parked and must be delivered by
        :meth:`poll` — the mode used by sharded masters so several pools can
        pump concurrently.  ``task_timeout`` cannot be enforced in this mode
        (results are only ever collected from already-done futures), so the
        combination is rejected rather than silently ignored.
    transport:
        ``"pipe"`` (the default) pickles whole frames through the executor
        pipe; ``"shm"`` moves large ``bytes``/array payloads through a
        shared-memory slot ring and pickles only control records.
        *slot_count*, *slot_size* and *shm_min_bytes* tune the ring (slots
        per ring, bytes per slot, and the size below which a payload stays
        in-band); they require ``transport="shm"``.
    obs:
        An :class:`~repro.obs.Observability` plane (the owning map's).
        When attached and enabled, every frame carries a trace dict in its
        control metadata — the child measures user-function time, delivery
        observes the per-frame overhead/compute histograms.
    cancel_chunk:
        Bounded-tail cancellation: when set, every frame carries the name of
        a shared :class:`~repro.pool.cancel.CancelFlag` which the child
        polls every *cancel_chunk* values.  A forced cancellation fan-out
        (or shutdown) raises the flag, so a frame already running stops at
        its next chunk boundary instead of computing the whole batch.
    """

    pull_role = "duplex"

    def __init__(
        self,
        fn_ref: FunctionRef,
        processes: Optional[int] = None,
        task_timeout: Optional[float] = None,
        mp_context: Optional[Any] = None,
        blocking: bool = True,
        transport: str = "pipe",
        slot_count: Optional[int] = None,
        slot_size: Optional[int] = None,
        shm_min_bytes: Optional[int] = None,
        obs: Optional[Any] = None,
        cancel_chunk: Optional[int] = None,
    ) -> None:
        self._validate_ref(fn_ref)
        if cancel_chunk is not None and cancel_chunk < 1:
            raise PandoError("cancel_chunk must be at least one value")
        if task_timeout is not None and not blocking:
            raise PandoError(
                "task_timeout requires a blocking pool source: the "
                "non-blocking mode only collects futures that are already "
                "done, so the timeout would never fire (bound the run with "
                "DistributedMap.drive(..., timeout=...) instead)"
            )
        if transport not in ("pipe", "shm"):
            raise PandoError(
                f"unknown pool transport {transport!r}: expected 'pipe' or 'shm'"
            )
        if transport != "shm" and any(
            knob is not None for knob in (slot_count, slot_size, shm_min_bytes)
        ):
            raise PandoError(
                "slot_count/slot_size/shm_min_bytes tune the shared-memory "
                "ring and require transport='shm'"
            )
        self.fn_ref = fn_ref
        self.processes = processes or os.cpu_count() or 1
        self.task_timeout = task_timeout
        self.blocking = blocking
        self.transport = transport
        #: the owning map's observability plane (frame tracing), or None
        self.obs = obs
        #: the shared-memory payload ring (``transport="shm"`` only)
        self.ring: Optional[ShmRing] = None
        self._shm_min_bytes = shm_min_bytes
        if transport == "shm":
            ring_kwargs = {}
            if slot_count is not None:
                ring_kwargs["slot_count"] = slot_count
            if slot_size is not None:
                ring_kwargs["slot_size"] = slot_size
            self.ring = ShmRing(**ring_kwargs)
        self.cancel_chunk = cancel_chunk
        #: the shared stop flag frames poll between chunks, or None
        self.cancel_flag: Optional[CancelFlag] = (
            CancelFlag() if cancel_chunk is not None else None
        )
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.processes, mp_context=mp_context
        )
        #: (future, was_batch, ring slots owned by the frame, frame trace)
        #: in submission (= borrow) order
        self._pending: Deque[Tuple[Future, bool, List[int], Optional[dict]]] = deque()
        self._upstream_ended: End = None
        self._result_waiting: Optional[Callback] = None
        self._closed: End = None
        # counters for benches and tests
        self.tasks_submitted = 0
        self.values_dispatched = 0
        self.results_returned = 0
        #: frames cancelled before their task ever ran (cancellation fan-out)
        self.tasks_cancelled = 0
        self.source = self._make_source()
        self.sink = self._make_sink()

    @staticmethod
    def _validate_ref(fn_ref: FunctionRef) -> None:
        """Fail fast, in the parent, on unresolvable or unpicklable functions."""
        if isinstance(fn_ref, (str, tuple)):
            resolve_callable(fn_ref)
            return
        try:
            pickle.dumps(fn_ref)
        except Exception as exc:
            raise PandoError(
                f"processing function {fn_ref!r} is not picklable and cannot "
                f"be shipped to worker processes; pass a 'module:attribute' "
                f"reference instead"
            ) from exc

    # ----------------------------------------------------------- sink side
    def _make_sink(self) -> Callable[[Source], None]:
        def sink(read: Source) -> None:
            def on_end(answer_end: End) -> None:
                self._upstream_ended = answer_end if is_error(answer_end) else DONE
                self._maybe_finish()

            eager_pump(
                read,
                on_value=self._submit,
                on_end=on_end,
                closed_reason=lambda: self._closed,
            )

        sink.pull_role = "sink"
        return sink

    def _submit(self, value: Any) -> None:
        assert self._executor is not None
        was_batch = isinstance(value, Batch)
        values = list(value.values) if was_batch else None
        trace = (
            self.obs.begin_frame(
                self.transport, values=len(values) if was_batch else 1
            )
            if self.obs is not None
            else None
        )
        cancel = (
            (self.cancel_flag.name, self.cancel_chunk)
            if self.cancel_flag is not None
            else None
        )
        if self.ring is not None:
            min_bytes = (
                self._shm_min_bytes if self._shm_min_bytes is not None else OOB_MIN_BYTES
            )
            entries, slots = pack_frame(
                self.ring, values if was_batch else [value], min_bytes=min_bytes
            )
            try:
                if was_batch:
                    future = self._executor.submit(
                        run_shm_batch,
                        self.fn_ref,
                        self.ring.name,
                        self.ring.slot_size,
                        entries,
                        min_bytes,
                        trace,
                        cancel,
                    )
                else:
                    future = self._executor.submit(
                        run_shm_task,
                        self.fn_ref,
                        self.ring.name,
                        self.ring.slot_size,
                        entries[0],
                        min_bytes,
                        trace,
                        cancel,
                    )
            except Exception:
                self.ring.release_all(slots)
                raise
            if trace is not None:
                self.obs.observe_payload(
                    self.transport,
                    sum(entry[2] for entry in entries if entry[0] == "shm"),
                )
            self._pending.append((future, was_batch, slots, trace))
        elif was_batch:
            future = self._executor.submit(
                run_batch, self.fn_ref, values, trace, cancel
            )
            self._pending.append((future, True, [], trace))
        else:
            future = self._executor.submit(
                run_task, self.fn_ref, value, trace, cancel
            )
            self._pending.append((future, False, [], trace))
        if trace is not None:
            self.obs.end_serialize(trace)
        self.values_dispatched += len(values) if was_batch else 1
        self.tasks_submitted += 1
        if self._result_waiting is not None:
            if self.blocking:
                waiting, self._result_waiting = self._result_waiting, None
                self._deliver(waiting)
            else:
                self.poll()

    # --------------------------------------------------------- source side
    def _make_source(self) -> Source:
        def read(end: End, cb: Callback) -> None:
            if end is not None:
                self._shutdown(end if is_error(end) else DONE)
                cb(end if is_error(end) else DONE, None)
                return
            if self._result_waiting is not None:
                cb(ProtocolError("ProcessPoolWorker source asked twice concurrently"), None)
                return
            # Termination is checked before ``_pending``: after close() the
            # pending futures are cancelled, so delivering one would report a
            # bogus WorkerCrashed instead of the close reason.
            if self._closed is not None:
                cb(self._termination(), None)
                return
            if self._pending:
                if self.blocking or self._pending[0][0].done():
                    self._deliver(cb)
                else:
                    self._result_waiting = cb
                return
            if self._upstream_ended is not None:
                termination = self._termination()
                self._shutdown(termination)
                cb(termination, None)
                return
            self._result_waiting = cb

        read.pull_role = "source"
        return read

    def _deliver(self, cb: Callback) -> None:
        """Block on the oldest pending future and answer with its result."""
        future, was_batch, slots, trace = self._pending.popleft()
        try:
            result = future.result(timeout=self.task_timeout)
        except (Exception, CancelledError) as exc:
            # The frame can never be consumed: its slots go back to the ring
            # before the crash-stop teardown (shutdown would also reap them,
            # but release-before-teardown keeps the accounting exact).
            if self.ring is not None:
                self.ring.release_all(slots)
            error = (
                exc
                if isinstance(exc, Exception)
                else WorkerCrashed(f"process pool task failed: {exc!r}")
            )
            self._shutdown(error)
            cb(error, None)
            return
        if trace is not None:
            # The child answered with the traced shape: (payload, trace).
            # Only the child-measured exec_s duration is taken from its
            # copy — the master's dict stays authoritative, because the
            # child's copy was pickled at submit time, before the master
            # recorded serialize_s.
            result, child_trace = result
            trace["exec_s"] = child_trace.get("exec_s", 0.0)
        if self.ring is not None:
            # Copy the payloads out, then release the frame's slots — the
            # "release on result read" half of the slot-ownership protocol.
            decoded = unpack_frame(self.ring, result if was_batch else [result])
            self.ring.release_all(slots)
            result = decoded if was_batch else decoded[0]
        self.results_returned += len(result) if was_batch else 1
        if trace is not None:
            self.obs.observe_frame(trace)
        cb(None, Batch(result) if was_batch else result)

    def _termination(self) -> End:
        """Termination marker with consistent precedence: an error stored by
        the close reason wins, then an upstream error, then DONE."""
        if is_error(self._closed):
            return self._closed
        if is_error(self._upstream_ended):
            return self._upstream_ended
        return DONE

    def _maybe_finish(self) -> None:
        """Answer a parked result ask once the borrow side ended and drained."""
        if self._result_waiting is None or self._pending:
            return
        if self._upstream_ended is None and self._closed is None:
            return
        waiting, self._result_waiting = self._result_waiting, None
        termination = self._termination()
        self._shutdown(termination)
        waiting(termination, None)

    # ----------------------------------------------------- polled delivery
    @loop_only
    def poll(self, limit: Optional[int] = None) -> bool:
        """Deliver ready results to a parked ask (non-blocking mode).

        Returns True when at least one result (or the final termination) was
        handed to the parked callback.  The delivery cascade usually parks a
        fresh ask, so the loop keeps draining as long as the new head-of-line
        future is already done.  *limit* bounds the number of results
        delivered per call — the event-loop scheduler polls with ``limit=1``
        so one hot pool with a backlog of done futures cannot starve the
        other sources sharing its dispatch round.
        """
        delivered = False
        budget = limit
        while (
            self._result_waiting is not None
            and self._pending
            and self._pending[0][0].done()
            and (budget is None or budget > 0)
        ):
            waiting, self._result_waiting = self._result_waiting, None
            self._deliver(waiting)
            delivered = True
            if budget is not None:
                budget -= 1
        if (
            self._result_waiting is not None
            and not self._pending
            and (self._upstream_ended is not None or self._closed is not None)
        ):
            self._maybe_finish()
            delivered = True
        return delivered

    def cancel_pending(self, force: bool = False) -> int:
        """Cancel every submitted frame whose task has not started running.

        Returns the number of frames cancelled (also accumulated in
        :attr:`tasks_cancelled`).  This is the cancellation fan-out fast
        path: after a downstream abort (a ``find`` hit), the results of the
        frames still queued behind the running ones can never be delivered,
        so waiting for their tasks to compute only wastes the cores.

        Cancelling is only legal once no result can still be consumed — a
        frame removed from the pending queue would otherwise be silently
        missing from the result stream (or, in a lender composition, be
        matched against the wrong borrowed value).  The pool itself can only
        prove that once it is closed, where shutdown has already reaped the
        queue — so without *force* the call is a conservative no-op.
        *force* is for the driver that **knows** the downstream aborted
        out-of-band (the abort may still be parked in a Limiter gate on its
        way here): the caller asserts no delivered result will be consumed.
        A forced cancellation that empties the queue shuts the pool down —
        with no task running and the downstream gone, nothing can ever be
        owed again.
        """
        if not force and self._closed is None:
            return 0
        if self.cancel_flag is not None:
            # Raise the shared flag first: the frames already *running* are
            # beyond future.cancel(), but they poll this between chunks —
            # the bounded-tail half of the fan-out.
            self.cancel_flag.set()
        kept: Deque[Tuple[Future, bool, List[int], Optional[dict]]] = deque()
        cancelled = 0
        while self._pending:
            future, was_batch, slots, trace = self._pending.popleft()
            if future.cancel():
                cancelled += 1
                # A cancelled task never ran, so its payload slots can never
                # be read again: hand them back to the ring immediately.
                if self.ring is not None:
                    self.ring.release_all(slots)
            else:
                kept.append((future, was_batch, slots, trace))
        self._pending = kept
        self.tasks_cancelled += cancelled
        if (
            force
            and not self._pending
            and self._upstream_ended is None
            and self._closed is None
        ):
            self._shutdown(DONE)
        else:
            # Dropping the queued frames may leave nothing owed: answer a
            # parked result ask with the termination so the sub-stream
            # closes now.
            self._maybe_finish()
        return cancelled

    @property
    def waiting(self) -> bool:
        """True while a result ask is parked (awaiting poll or new input)."""
        return self._result_waiting is not None

    @property
    def deliverable(self) -> bool:
        """True when :meth:`poll` would hand something to the parked ask."""
        if self._result_waiting is None:
            return False
        if self._pending:
            return self._pending[0][0].done()
        return self._upstream_ended is not None or self._closed is not None

    @property
    def head_future(self) -> Optional[Future]:
        """The oldest pending future (what a driver should wait on), if any."""
        return self._pending[0][0] if self._pending else None

    # ------------------------------------------------------------ lifecycle
    def _shutdown(self, reason: End) -> None:
        if self._closed is None:
            self._closed = reason if reason is not None else DONE
        if self.cancel_flag is not None:
            # Set-then-unlink: children already attached read the raised
            # byte through their existing mapping; children attaching after
            # the unlink treat the missing block as raised.
            self.cancel_flag.set()
            self.cancel_flag.close()
        executor, self._executor = self._executor, None
        if executor is not None:
            for future, _was_batch, _slots, _trace in self._pending:
                if future.cancel():
                    self.tasks_cancelled += 1
            # cancel_futures reaps work items that future.cancel() cannot
            # reach any more (already handed to the executor's call queue).
            executor.shutdown(wait=False, cancel_futures=True)
        # Cancelled futures must not be delivered by a later read: they would
        # surface as WorkerCrashed instead of the recorded close reason.
        if self.ring is not None:
            # Reap every frame's slots — delivered frames already released
            # theirs, and nothing after shutdown can consume the rest — then
            # drop the block.  The counters stay readable for leak checks.
            for _future, _was_batch, slots, _trace in self._pending:
                self.ring.release_all(slots)
            self.ring.close()
        self._pending.clear()
        # A parked result ask must be answered on *any* termination —
        # including close() — so the sub-stream closes and its borrowed
        # values are re-lent instead of being silently stranded (the same
        # leak the Limiter gated-ask fix addresses).
        if self._result_waiting is not None:
            waiting, self._result_waiting = self._result_waiting, None
            waiting(self._closed, None)

    def close(self) -> None:
        """Release the worker processes (idempotent)."""
        self._shutdown(DONE)

    @property
    def closed(self) -> bool:
        """True once the pool has been shut down."""
        return self._closed is not None

    @property
    def pending(self) -> int:
        """Number of frames submitted and not yet answered."""
        return len(self._pending)

    def __enter__(self) -> "ProcessPoolWorker":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self.closed else "open"
        return (
            f"<ProcessPoolWorker {self.fn_ref!r} processes={self.processes} "
            f"{state} pending={len(self._pending)}>"
        )
