"""Picklable workload functions for the process-pool backend.

Every function here is a plain module-level callable, so it can be referenced
by dotted name (``"repro.pool.workloads:render_frame"``) and executed in a
worker process.  They mirror the paper's CPU-bound applications (raytracer
frames, crypto nonce search) plus latency-bound stand-ins used by the
benchmarks to demonstrate overlap independently of the host's core count.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict

__all__ = [
    "echo",
    "square",
    "times10",
    "sleep_echo",
    "sleep_blob",
    "log_completion",
    "spin",
    "invert_tile",
    "render_frame",
    "render_frame_pixels",
    "search_nonces",
]


def echo(value: Any) -> Any:
    """Identity — the no-op baseline for dispatch-overhead measurements."""
    return value


def times10(value: Any) -> Any:
    """Multiply by ten — the test suite's SubStreamDriver convention, so a
    pool can serve the same map as driver-backed and channel-backed workers
    in the mixed-source scheduler tests."""
    return value * 10


def square(value: Any) -> Any:
    """Square a number (the quickstart function, pool-style)."""
    return value * value


def sleep_echo(value: Any) -> Any:
    """Sleep then echo: a latency-bound task (``{"sleep": seconds, ...}``).

    Parallel speedup on sleeping tasks does not require multiple cores, which
    makes this the portable workload for demonstrating that the pool overlaps
    work even on single-core CI hosts.
    """
    if isinstance(value, dict) and "sleep" in value:
        time.sleep(float(value["sleep"]))
    return value


def sleep_blob(value: bytes) -> bytes:
    """Sleep 50 ms, then echo a binary payload.

    The large-payload sibling of :func:`sleep_echo`: slow enough that a
    loaded Limiter window queues frames behind the running one (what the
    cancellation fan-out tests need), with ``bytes`` payloads eligible for
    the shared-memory transport.
    """
    time.sleep(0.05)
    return value


def log_completion(value: Any) -> Any:
    """Sleep, then append one completion record to ``$PANDO_COMPLETION_LOG``.

    Record format: ``"<pid> <id> <monotonic>"`` per line, written with a
    single ``O_APPEND`` write so concurrent worker processes never
    interleave.  ``CLOCK_MONOTONIC`` is system-wide on Linux, so the
    bounded-tail cancellation test can compare these child-side completion
    times against the master's ``abort_fanout`` trace timestamp directly.
    """
    import os

    if isinstance(value, dict) and "sleep" in value:
        time.sleep(float(value["sleep"]))
    path = os.environ.get("PANDO_COMPLETION_LOG")
    if path:
        ident = value.get("i") if isinstance(value, dict) else value
        record = f"{os.getpid()} {ident} {time.monotonic()}\n"
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, record.encode("utf-8"))
        finally:
            os.close(fd)
    return value


#: byte-wise complement, applied at C speed via bytes.translate
_INVERT_TABLE = bytes(255 - i for i in range(256))


def invert_tile(value: Any) -> bytes:
    """Invert an image tile's bytes (negative filter, the imageproc stand-in).

    A cheap, content-dependent transformation of a binary payload: the
    result is the same size as the input but never equal to it, so
    exactly-once checks catch duplicated *and* unprocessed tiles.
    """
    return bytes(value).translate(_INVERT_TABLE)


def spin(value: Any) -> Any:
    """CPU-bound busy work: ``{"rounds": n}`` SHA-256 chains over the input."""
    rounds = int(value.get("rounds", 10_000)) if isinstance(value, dict) else int(value)
    digest = repr(value).encode("utf-8")
    for _ in range(rounds):
        digest = hashlib.sha256(digest).digest()
    return digest.hex()


def render_frame(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Render one raytraced animation frame (paper sections 2.1/4.1).

    ``spec`` follows :meth:`repro.apps.raytracer.RaytraceApplication
    .generate_inputs` (``{"angle": ..., "frame": ...}``) with optional
    ``width``/``height`` overrides.
    """
    from ..apps.raytracer import render_scene
    from ..net.serialization import encode_binary

    angle = float(spec["angle"])
    width = int(spec.get("width", 32))
    height = int(spec.get("height", 24))
    pixels = render_scene(angle, width, height)
    return {
        "angle": angle,
        "frame": spec.get("frame"),
        "pixels": encode_binary(pixels.tobytes()),
        "shape": list(pixels.shape),
    }


def render_frame_pixels(spec: Dict[str, Any]):
    """Render one frame and return the raw pixel array.

    The asymmetric-frame sibling of :func:`render_frame`: the input spec is
    a tiny dict (travels in-band) while the result is the full pixel
    buffer, which the shared-memory transport returns through the frame's
    spare slot instead of pickling it through the executor pipe.
    """
    from ..apps.raytracer import render_scene

    return render_scene(
        float(spec["angle"]),
        int(spec.get("width", 32)),
        int(spec.get("height", 24)),
    )


def search_nonces(attempt: Dict[str, Any]) -> Dict[str, Any]:
    """Test one range of nonces (the crypto application, pool-style)."""
    from ..apps.crypto import hash_attempt, meets_difficulty

    block = attempt["block"]
    start, count = int(attempt["start"]), int(attempt["count"])
    bits = int(attempt.get("difficulty_bits", 18))
    for nonce in range(start, start + count):
        if meets_difficulty(hash_attempt(block, nonce), bits):
            return {
                "found": True,
                "nonce": nonce,
                "height": attempt.get("height", 0),
                "hashes": nonce - start + 1,
            }
    return {
        "found": False,
        "nonce": None,
        "height": attempt.get("height", 0),
        "hashes": count,
    }
