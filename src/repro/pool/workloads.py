"""Picklable workload functions for the process-pool backend.

Every function here is a plain module-level callable, so it can be referenced
by dotted name (``"repro.pool.workloads:render_frame"``) and executed in a
worker process.  They mirror the paper's CPU-bound applications (raytracer
frames, crypto nonce search) plus latency-bound stand-ins used by the
benchmarks to demonstrate overlap independently of the host's core count.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict

__all__ = [
    "echo",
    "square",
    "times10",
    "sleep_echo",
    "spin",
    "render_frame",
    "search_nonces",
]


def echo(value: Any) -> Any:
    """Identity — the no-op baseline for dispatch-overhead measurements."""
    return value


def times10(value: Any) -> Any:
    """Multiply by ten — the test suite's SubStreamDriver convention, so a
    pool can serve the same map as driver-backed and channel-backed workers
    in the mixed-source scheduler tests."""
    return value * 10


def square(value: Any) -> Any:
    """Square a number (the quickstart function, pool-style)."""
    return value * value


def sleep_echo(value: Any) -> Any:
    """Sleep then echo: a latency-bound task (``{"sleep": seconds, ...}``).

    Parallel speedup on sleeping tasks does not require multiple cores, which
    makes this the portable workload for demonstrating that the pool overlaps
    work even on single-core CI hosts.
    """
    if isinstance(value, dict) and "sleep" in value:
        time.sleep(float(value["sleep"]))
    return value


def spin(value: Any) -> Any:
    """CPU-bound busy work: ``{"rounds": n}`` SHA-256 chains over the input."""
    rounds = int(value.get("rounds", 10_000)) if isinstance(value, dict) else int(value)
    digest = repr(value).encode("utf-8")
    for _ in range(rounds):
        digest = hashlib.sha256(digest).digest()
    return digest.hex()


def render_frame(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Render one raytraced animation frame (paper sections 2.1/4.1).

    ``spec`` follows :meth:`repro.apps.raytracer.RaytraceApplication
    .generate_inputs` (``{"angle": ..., "frame": ...}``) with optional
    ``width``/``height`` overrides.
    """
    from ..apps.raytracer import render_scene
    from ..net.serialization import encode_binary

    angle = float(spec["angle"])
    width = int(spec.get("width", 32))
    height = int(spec.get("height", 24))
    pixels = render_scene(angle, width, height)
    return {
        "angle": angle,
        "frame": spec.get("frame"),
        "pixels": encode_binary(pixels.tobytes()),
        "shape": list(pixels.shape),
    }


def search_nonces(attempt: Dict[str, Any]) -> Dict[str, Any]:
    """Test one range of nonces (the crypto application, pool-style)."""
    from ..apps.crypto import hash_attempt, meets_difficulty

    block = attempt["block"]
    start, count = int(attempt["start"]), int(attempt["count"])
    bits = int(attempt.get("difficulty_bits", 18))
    for nonce in range(start, start + count):
        if meets_difficulty(hash_attempt(block, nonce), bits):
            return {
                "found": True,
                "nonce": nonce,
                "height": attempt.get("height", 0),
                "hashes": nonce - start + 1,
            }
    return {
        "found": False,
        "nonce": None,
        "height": attempt.get("height", 0),
        "hashes": count,
    }
