"""Child-process side of the process-pool backend.

The functions in this module are the only code submitted to the
``ProcessPoolExecutor``: they are plain module-level functions, hence
picklable under every multiprocessing start method.  A *function reference*
describes the user's processing function in a way that survives the trip to
the child process:

* a dotted name string, ``"package.module:attribute"`` (or
  ``"package.module.attribute"``), resolved by import in the child and cached
  per process;
* a ``("file", path)`` tuple naming a Pando module file, re-bundled in the
  child with :func:`repro.master.bundler.bundle_module` (the paper's
  ``exports['/pando/1.0.0']`` convention);
* any picklable callable (e.g. the bound ``process`` method of a built-in
  application).

Both calling conventions of the code base are supported: plain functions
``fn(value) -> result`` and the paper's node-style ``fn(value, cb)`` with
``cb(err, result)``; the convention is detected once from the signature.  A
node-style function submitted to the pool must call its callback
synchronously — there is no event loop in the child.
"""

from __future__ import annotations

import importlib
import inspect
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..analysis.annotations import any_thread
from ..errors import FrameCancelled, PandoError
from .cancel import flag_is_set

__all__ = [
    "FunctionRef",
    "expects_callback",
    "resolve_callable",
    "run_task",
    "run_batch",
    "run_shm_task",
    "run_shm_batch",
]

FunctionRef = Union[str, Tuple[str, str], Callable[..., Any]]

#: Per-process cache of resolved (callable, expects_callback) pairs.
_RESOLVED: dict = {}


def resolve_callable(ref: FunctionRef) -> Callable[..., Any]:
    """Resolve a function reference to the callable it names."""
    if callable(ref):
        return ref
    if isinstance(ref, tuple) and len(ref) == 2 and ref[0] == "file":
        from ..master.bundler import bundle_module

        return bundle_module(ref[1]).apply
    if isinstance(ref, str):
        return _resolve_dotted(ref)
    raise PandoError(
        f"unsupported function reference {ref!r}: expected a callable, a "
        f"'module:attribute' string, or a ('file', path) tuple"
    )


def _resolve_dotted(ref: str) -> Callable[..., Any]:
    if ":" in ref:
        module_name, _, attr_path = ref.partition(":")
        candidates = [(module_name, attr_path)]
    else:
        # "package.module.attribute": try every split, innermost module first.
        parts = ref.split(".")
        candidates = [
            (".".join(parts[:index]), ".".join(parts[index:]))
            for index in range(len(parts) - 1, 0, -1)
        ]
    last_error: Exception = PandoError(f"cannot resolve function reference {ref!r}")
    for module_name, attr_path in candidates:
        try:
            target: Any = importlib.import_module(module_name)
        except ImportError as exc:
            last_error = exc
            continue
        try:
            for attr in attr_path.split("."):
                target = getattr(target, attr)
        except AttributeError as exc:
            last_error = exc
            continue
        if not callable(target):
            raise PandoError(f"function reference {ref!r} names a non-callable: {target!r}")
        return target
    raise PandoError(f"cannot resolve function reference {ref!r}: {last_error!r}")


def expects_callback(fn: Callable[..., Any]) -> bool:
    """True when *fn* follows the node-style ``fn(value, cb)`` convention."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    required = [
        parameter
        for parameter in signature.parameters.values()
        if parameter.kind
        in (parameter.POSITIONAL_ONLY, parameter.POSITIONAL_OR_KEYWORD)
        and parameter.default is parameter.empty
    ]
    return len(required) >= 2


def _prepared(ref: FunctionRef) -> Tuple[Callable[..., Any], bool]:
    key = ref if isinstance(ref, (str, tuple)) else None
    if key is not None and key in _RESOLVED:
        return _RESOLVED[key]
    fn = resolve_callable(ref)
    prepared = (fn, expects_callback(fn))
    if key is not None:
        _RESOLVED[key] = prepared
    return prepared


def _check_cancel(cancel: Optional[Tuple[str, int]], index: int, total: int) -> None:
    """Poll the pool's cancel flag at chunk boundaries of a frame.

    *cancel* is ``(flag_name, chunk)`` — see :mod:`repro.pool.cancel`.  The
    poll runs before value 0 (a frame that dequeues after the abort does no
    work at all) and then every *chunk* values, so a running frame computes
    at most one more chunk after the master raises the flag.
    """
    if cancel is None:
        return
    flag_name, chunk = cancel
    if index % chunk == 0 and flag_is_set(flag_name):
        raise FrameCancelled(completed=index, total=total)


def _apply(fn: Callable[..., Any], node_style: bool, value: Any) -> Any:
    if not node_style:
        return fn(value)
    box: dict = {}

    def cb(err: Any, result: Any = None) -> None:
        box["done"] = True
        box["err"] = err
        box["result"] = result

    fn(value, cb)
    if not box.get("done"):
        raise PandoError(
            f"node-style function {fn!r} did not call its callback synchronously; "
            f"the process-pool backend has no event loop in the child"
        )
    err = box["err"]
    if err is not None:
        raise err if isinstance(err, BaseException) else PandoError(repr(err))
    return box["result"]


@any_thread
def run_task(
    ref: FunctionRef,
    value: Any,
    trace: Optional[Dict[str, Any]] = None,
    cancel: Optional[Tuple[str, int]] = None,
) -> Any:
    """Executor entry point: apply the referenced function to one value.

    With a *trace* dict (frame control metadata, see
    :class:`~repro.obs.trace.Observability`), the time spent inside the
    user function is measured and the return shape becomes
    ``(result, trace)`` with ``exec_s`` added — a duration, never a
    timestamp, because child and master clocks are not comparable.
    *cancel* is polled once before the value runs (a single-value frame is
    one chunk).
    """
    fn, node_style = _prepared(ref)
    _check_cancel(cancel, 0, 1)
    if trace is None:
        return _apply(fn, node_style, value)
    start = time.perf_counter()
    result = _apply(fn, node_style, value)
    return result, dict(trace, exec_s=time.perf_counter() - start)


@any_thread
def run_batch(
    ref: FunctionRef,
    values: List[Any],
    trace: Optional[Dict[str, Any]] = None,
    cancel: Optional[Tuple[str, int]] = None,
) -> Any:
    """Executor entry point: apply the referenced function to a whole frame.

    One submission per frame is what amortises the inter-process round trip;
    results come back as a list in input order — or, with a *trace* dict,
    as ``(results, trace)`` with the frame's summed ``exec_s`` added.  With
    *cancel* the frame's value range is chunked against the pool's cancel
    flag and stops between chunks (:class:`~repro.errors.FrameCancelled`).
    """
    fn, node_style = _prepared(ref)
    total = len(values)
    if trace is None and cancel is None:
        return [_apply(fn, node_style, value) for value in values]
    start = time.perf_counter()
    out: List[Any] = []
    for index, value in enumerate(values):
        _check_cancel(cancel, index, total)
        out.append(_apply(fn, node_style, value))
    if trace is None:
        return out
    return out, dict(trace, exec_s=time.perf_counter() - start)


@any_thread
def run_shm_task(
    ref: FunctionRef,
    ring_name: str,
    slot_size: int,
    entry: Any,
    min_bytes: int,
    trace: Optional[Dict[str, Any]] = None,
    cancel: Optional[Tuple[str, int]] = None,
) -> Any:
    """Executor entry point for one shared-memory-framed value.

    The payload arrives as a control entry pointing into the master's
    :class:`~repro.net.shm_ring.ShmRing` (or inline, the fallback); the
    result travels back the same way, through the frame's slot — only the
    tiny control records cross the executor pipe.  A *trace* dict times
    only the user function (slot loads/stores are transport overhead) and
    switches the return shape to ``(entry, trace)``.  *cancel* is polled
    once before the value runs.
    """
    from ..net.shm_ring import load_entry, store_entry

    fn, node_style = _prepared(ref)
    _check_cancel(cancel, 0, 1)
    value = load_entry(ring_name, slot_size, entry)
    if trace is None:
        result = _apply(fn, node_style, value)
        return store_entry(ring_name, slot_size, entry, result, min_bytes=min_bytes)
    start = time.perf_counter()
    result = _apply(fn, node_style, value)
    exec_s = time.perf_counter() - start
    out = store_entry(ring_name, slot_size, entry, result, min_bytes=min_bytes)
    return out, dict(trace, exec_s=exec_s)


@any_thread
def run_shm_batch(
    ref: FunctionRef,
    ring_name: str,
    slot_size: int,
    entries: List[Any],
    min_bytes: int,
    trace: Optional[Dict[str, Any]] = None,
    cancel: Optional[Tuple[str, int]] = None,
) -> Any:
    """Executor entry point for a shared-memory-framed batch.

    Values are applied in order; each result is written back into its own
    input's slot before the next value is touched, so a frame never needs
    more slots than its submission acquired.  A *trace* dict accumulates
    the user-function time across the frame (``exec_s``) and switches the
    return shape to ``(entries, trace)``.  With *cancel* the entry range is
    chunked against the pool's cancel flag like :func:`run_batch`; the
    master releases the frame's slots when the cancellation surfaces.
    """
    from ..net.shm_ring import load_entry, store_entry

    fn, node_style = _prepared(ref)
    out: List[Any] = []
    exec_s = 0.0
    total = len(entries)
    for index, entry in enumerate(entries):
        _check_cancel(cancel, index, total)
        value = load_entry(ring_name, slot_size, entry)
        if trace is None:
            result = _apply(fn, node_style, value)
        else:
            start = time.perf_counter()
            result = _apply(fn, node_style, value)
            exec_s += time.perf_counter() - start
        out.append(store_entry(ring_name, slot_size, entry, result, min_bytes=min_bytes))
    if trace is None:
        return out
    return out, dict(trace, exec_s=exec_s)
