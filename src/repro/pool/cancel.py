"""Cross-process cancellation flag for bounded-tail frame abort.

The abort fan-out (``DistributedMap.drive(cancel_on_abort=True)``) drops
*queued* futures, but a frame already running in an executor child keeps
computing its whole batch — the tail-latency follow-on the ROADMAP calls
out.  :class:`CancelFlag` closes that gap: one byte of
``multiprocessing.shared_memory`` the master raises when it force-cancels a
pool, and which the child-side task runners (:mod:`repro.pool.tasks`) poll
between chunks of a frame.  A running frame then stops at the next chunk
boundary by raising :class:`~repro.errors.FrameCancelled`, so no frame
completes more than one chunk past the ``abort_fanout`` trace event.

Like the shm ring, the flag is master-owned: the creating process unlinks
it, children only attach (cached per process, see
:func:`repro.net.shm_ring.attach_ring` for the resource-tracker rationale).
A child that cannot attach — the master already unlinked the flag — treats
the flag as raised: a vanished master means nobody wants the results.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

from ..analysis.annotations import any_thread

__all__ = ["CancelFlag", "flag_is_set"]


class CancelFlag:
    """One shared byte: 0 = keep working, 1 = stop at the next chunk."""

    def __init__(self) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=1)
        self._shm.buf[0] = 0
        self._owner_pid = os.getpid()
        self.closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @any_thread
    def set(self) -> None:
        """Raise the flag (idempotent, safe from any thread)."""
        if not self.closed:
            self._shm.buf[0] = 1

    def is_set(self) -> bool:
        return bool(self.closed or self._shm.buf[0])

    def close(self) -> None:
        """Release the mapping; the creating process also unlinks the block."""
        if self.closed:
            return
        self.closed = True
        self._shm.close()
        if os.getpid() == self._owner_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink race
                pass

    def __enter__(self) -> "CancelFlag":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self.closed else ("set" if self.is_set() else "clear")
        return f"<CancelFlag {self.name} {state}>"


#: Per-process cache of attached flag blocks, keyed by shared-memory name.
_ATTACHED: dict = {}


def flag_is_set(name: str) -> bool:
    """Child-side poll: is the flag *name* raised?

    Attachment is cached per process (one ``shm_open`` per flag per child).
    A missing block reads as *raised*: the master unlinks the flag when the
    pool shuts down, and any frame still asking afterwards should stop.
    """
    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            # Cached for the life of the child process on purpose — the
            # master owns (and unlinks) the block; children only map it.
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return True  # pando-lint: ignore[resource-pairing]
        _ATTACHED[name] = shm
    return bool(shm.buf[0])
