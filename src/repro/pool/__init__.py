"""Process-pool execution backend.

``repro.core`` coordinates work; this package *executes* it on real OS
processes so CPU-bound applications scale with the host's cores — the first
step from the simulated deployments towards "as fast as the hardware
allows".  The only export most callers need is
:meth:`repro.core.distributed_map.DistributedMap.add_process_pool`, which
wires a :class:`ProcessPoolWorker` through the standard
Limiter/batching/sub-stream composition.
"""

from .cancel import CancelFlag, flag_is_set
from .process_pool import ProcessPoolWorker, default_window
from .tasks import (
    FunctionRef,
    expects_callback,
    resolve_callable,
    run_batch,
    run_shm_batch,
    run_shm_task,
    run_task,
)
from . import workloads

__all__ = [
    "CancelFlag",
    "flag_is_set",
    "ProcessPoolWorker",
    "default_window",
    "FunctionRef",
    "expects_callback",
    "resolve_callable",
    "run_batch",
    "run_shm_batch",
    "run_shm_task",
    "run_task",
    "workloads",
]
