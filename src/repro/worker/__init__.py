"""Volunteer-side components: browser tabs, simulated and real volunteers."""

from .worker import BrowserTab
from .volunteer import (
    SimVolunteer,
    VolunteerReport,
    run_volunteer,
    spawn_volunteer_process,
)

__all__ = [
    "BrowserTab",
    "SimVolunteer",
    "VolunteerReport",
    "run_volunteer",
    "spawn_volunteer_process",
]
