"""Volunteer-side components: browser tabs and volunteers."""

from .worker import BrowserTab
from .volunteer import SimVolunteer

__all__ = ["BrowserTab", "SimVolunteer"]
