"""Volunteers: devices that contribute browser tabs to a deployment.

A :class:`SimVolunteer` owns a simulated device and opens one browser tab per
core it contributes (the paper uses "the minimum number of cores that
provided close to the maximum performance", listed in Table 2).  Joining a
deployment mirrors the paper's workflow: open the URL, download the worker
code, establish a WebSocket or WebRTC channel per tab, process values until
the stream ends, the device crashes, or the volunteer leaves.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..devices.device import SimDevice
from ..devices.profiles import DeviceProfile
from ..master.bundler import Bundle
from ..net.channel import ChannelEndpoint
from ..net.signaling import PublicServer
from ..sim.metrics import MetricsCollector
from ..sim.scheduler import Scheduler
from .worker import BrowserTab

__all__ = ["SimVolunteer"]


class SimVolunteer:
    """A volunteer contributing the browser tabs of one device."""

    def __init__(
        self,
        profile: DeviceProfile,
        scheduler: Scheduler,
        host: Optional[str] = None,
        tabs: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.scheduler = scheduler
        self.host = host or profile.name
        self.device = SimDevice(profile, scheduler)
        self.requested_tabs = tabs if tabs is not None else profile.cores
        self.tabs: Dict[int, BrowserTab] = {}
        self.joined = False
        self.crashed = False
        self.device.on_crash(lambda _device: self._crash_tabs())

    # ------------------------------------------------------------------ join
    def join(self, master) -> None:
        """Join a deployment directly (same LAN / VPN as the master)."""
        self.joined = True
        master.accept_volunteer(self, tabs=self.requested_tabs)

    def join_url(self, url: str, public_server: PublicServer) -> None:
        """Join a deployment by opening its public URL (WAN scenario)."""
        self.joined = True
        public_server.join(
            url,
            volunteer_host=self.host,
            info={"volunteer": self, "tabs": self.requested_tabs},
        )

    def attach_tab(
        self,
        tab_index: int,
        endpoint: ChannelEndpoint,
        bundle: Bundle,
        metrics: Optional[MetricsCollector] = None,
    ) -> BrowserTab:
        """Called by the master once a channel for one tab is established."""
        tab = self.tabs.get(tab_index)
        if tab is None:
            tab = BrowserTab(self.device, tab_index)
            self.tabs[tab_index] = tab
        if self.crashed:
            # The device crashed while the connection was being established.
            endpoint.crash()
            return tab
        tab.attach(endpoint, bundle, metrics)
        return tab

    # --------------------------------------------------------------- failure
    def crash(self) -> None:
        """Crash-stop the whole device: every tab goes silent at once."""
        if self.crashed:
            return
        self.crashed = True
        self.device.crash()

    def leave(self) -> None:
        """Leave gracefully: close every tab so the master is notified."""
        self.crashed = True
        for tab in self.tabs.values():
            tab.close()

    def _crash_tabs(self) -> None:
        self.crashed = True
        for tab in self.tabs.values():
            tab.crash()

    # ----------------------------------------------------------- inspection
    @property
    def items_processed(self) -> int:
        """Total values processed across this volunteer's tabs."""
        return sum(tab.items_processed for tab in self.tabs.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "crashed" if self.crashed else ("joined" if self.joined else "idle")
        return (
            f"<SimVolunteer {self.profile.name} {state} tabs={len(self.tabs)} "
            f"processed={self.items_processed}>"
        )
