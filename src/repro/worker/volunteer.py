"""Volunteers: devices that contribute compute to a deployment.

Two kinds live here:

* :class:`SimVolunteer` owns a simulated device and opens one browser tab
  per core it contributes (the paper uses "the minimum number of cores that
  provided close to the maximum performance", listed in Table 2).  Joining a
  deployment mirrors the paper's workflow: open the URL, download the worker
  code, establish a WebSocket or WebRTC channel per tab, process values
  until the stream ends, the device crashes, or the volunteer leaves.
* :func:`run_volunteer` is the **real** volunteer: an external OS process
  that dials a master's :class:`~repro.net.ws_transport.WsVolunteerGateway`
  URL over an actual websocket, downloads the function reference from the
  welcome frame (the paper's "volunteers download the code from the
  master"), and processes DATA frames on a small thread pool — one thread
  per "tab" — until the master says END, the process is told to stop, or
  the wire dies.  ``pando volunteer ws://host:port`` (see :func:`main`)
  wraps it for the command line.
"""

from __future__ import annotations

import argparse
import asyncio
import multiprocessing
import sys
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.annotations import any_thread
from ..devices.device import SimDevice
from ..devices.profiles import DeviceProfile
from ..errors import ConnectionClosed, PandoError, ProtocolError
from ..master.bundler import Bundle
from ..net.channel import ChannelEndpoint
from ..net.heartbeat import DEFAULT_INTERVAL, DEFAULT_TIMEOUT, HeartbeatMonitor
from ..net.signaling import PublicServer
from ..net.ws_transport import (
    BYE,
    DATA,
    END,
    HELLO,
    RESULT,
    TASK_ERROR,
    WELCOME,
    WIRE_VERSION,
    LoopClock,
    connect_websocket,
    pack_wire_frame,
    unpack_wire_frame,
)
from ..pool.tasks import resolve_callable, run_batch
from ..sim.metrics import MetricsCollector
from ..sim.scheduler import Scheduler
from .worker import BrowserTab

__all__ = [
    "SimVolunteer",
    "VolunteerReport",
    "run_volunteer",
    "spawn_volunteer_process",
    "main",
]


class SimVolunteer:
    """A volunteer contributing the browser tabs of one device."""

    def __init__(
        self,
        profile: DeviceProfile,
        scheduler: Scheduler,
        host: Optional[str] = None,
        tabs: Optional[int] = None,
        device_name: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.scheduler = scheduler
        self.host = host or profile.name
        # device_name distinguishes rejoin incarnations of the same host:
        # the master never reuses a worker id, so each return needs its own.
        self.device = SimDevice(profile, scheduler, name=device_name)
        self.requested_tabs = tabs if tabs is not None else profile.cores
        self.tabs: Dict[int, BrowserTab] = {}
        self.joined = False
        self.crashed = False
        self.device.on_crash(lambda _device: self._crash_tabs())

    # ------------------------------------------------------------------ join
    def join(self, master) -> None:
        """Join a deployment directly (same LAN / VPN as the master)."""
        self.joined = True
        master.accept_volunteer(self, tabs=self.requested_tabs)

    def join_url(self, url: str, public_server: PublicServer) -> None:
        """Join a deployment by opening its public URL (WAN scenario)."""
        self.joined = True
        public_server.join(
            url,
            volunteer_host=self.host,
            info={"volunteer": self, "tabs": self.requested_tabs},
        )

    def attach_tab(
        self,
        tab_index: int,
        endpoint: ChannelEndpoint,
        bundle: Bundle,
        metrics: Optional[MetricsCollector] = None,
    ) -> BrowserTab:
        """Called by the master once a channel for one tab is established."""
        tab = self.tabs.get(tab_index)
        if tab is None:
            tab = BrowserTab(self.device, tab_index)
            self.tabs[tab_index] = tab
        if self.crashed:
            # The device crashed while the connection was being established.
            endpoint.crash()
            return tab
        tab.attach(endpoint, bundle, metrics)
        return tab

    # --------------------------------------------------------------- failure
    def crash(self) -> None:
        """Crash-stop the whole device: every tab goes silent at once."""
        if self.crashed:
            return
        self.crashed = True
        self.device.crash()

    def leave(self) -> None:
        """Leave gracefully: close every tab so the master is notified."""
        self.crashed = True
        for tab in self.tabs.values():
            tab.close()

    def _crash_tabs(self) -> None:
        self.crashed = True
        for tab in self.tabs.values():
            tab.crash()

    # ----------------------------------------------------------- inspection
    @property
    def items_processed(self) -> int:
        """Total values processed across this volunteer's tabs."""
        return sum(tab.items_processed for tab in self.tabs.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "crashed" if self.crashed else ("joined" if self.joined else "idle")
        return (
            f"<SimVolunteer {self.profile.name} {state} tabs={len(self.tabs)} "
            f"processed={self.items_processed}>"
        )


# ==========================================================================
# Real websocket volunteers
# ==========================================================================


@dataclass
class VolunteerReport:
    """What one :func:`run_volunteer` session accomplished."""

    worker_id: Optional[str] = None
    frames_processed: int = 0
    values_processed: int = 0
    #: True when the session ended with the bye handshake (END received or
    #: *max_frames* reached), False when the wire died or a task failed
    graceful: bool = False
    #: True when the volunteer's own heartbeat monitor suspected the master
    suspected_master: bool = False
    error: Optional[str] = None
    pings_received: int = 0
    pongs_received: int = 0


@any_thread
def run_volunteer(
    url: str,
    fn_ref: Any = None,
    name: Optional[str] = None,
    tabs: int = 1,
    max_frames: Optional[int] = None,
    connect_timeout: float = 10.0,
) -> VolunteerReport:
    """Join the master at *url* (``ws://host:port``) and process values.

    The session follows the paper's volunteer workflow over a real socket:
    hello (name + tab count) → welcome (worker id, function reference,
    heartbeat parameters) → DATA frames in, RESULT frames out — computed on
    a pool of *tabs* threads so several frames overlap, answered strictly
    in arrival order (the contract of the master's Limiter) — until the
    master sends END (or *max_frames* frames were answered, the
    leave-early case), then bye and a clean close.  *fn_ref* overrides the
    master-supplied function reference — any form
    :func:`~repro.pool.tasks.resolve_callable` accepts; at least one side
    must provide one.  Liveness is symmetric: the volunteer answers the
    master's pings automatically and runs its own
    :class:`~repro.net.heartbeat.HeartbeatMonitor`, abandoning a master
    that has gone silent (``suspected_master`` in the returned report).

    Blocks until the session ends (it owns the process — use
    :func:`spawn_volunteer_process` to run one in a child process) and
    never raises on wire or task trouble: the report's ``error`` carries it.
    """
    return asyncio.run(
        _volunteer_session(
            url,
            fn_ref=fn_ref,
            name=name,
            tabs=max(1, tabs),
            max_frames=max_frames,
            connect_timeout=connect_timeout,
        )
    )


async def _volunteer_session(
    url: str,
    fn_ref: Any,
    name: Optional[str],
    tabs: int,
    max_frames: Optional[int],
    connect_timeout: float,
) -> VolunteerReport:
    loop = asyncio.get_running_loop()
    report = VolunteerReport()
    try:
        conn = await connect_websocket(url, timeout=connect_timeout)
    except Exception as exc:
        report.error = f"connect failed: {exc!r}"
        return report
    monitor: Optional[HeartbeatMonitor] = None
    try:
        hello = {"kind": HELLO, "version": WIRE_VERSION, "name": name, "tabs": tabs}
        conn.send_bytes(pack_wire_frame(hello))
        await conn.drain()
        payload = await asyncio.wait_for(conn.recv(), connect_timeout)
        if payload is None:
            raise ConnectionClosed("master closed the connection during the handshake")
        welcome = unpack_wire_frame(payload)
        if welcome.get("kind") != WELCOME:
            raise ProtocolError(f"expected a welcome frame, got {welcome.get('kind')!r}")
        report.worker_id = welcome.get("worker_id")
        ref = fn_ref if fn_ref is not None else welcome.get("fn_ref")
        if ref is None:
            raise PandoError(
                "the master supplied no function reference and none was given "
                "locally (pass fn_ref= / --module / --app / --fn)"
            )
        resolve_callable(ref)  # fail during the handshake, not on frame one

        def suspect_master() -> None:
            report.suspected_master = True
            conn.close_transport()

        monitor = HeartbeatMonitor(
            LoopClock(loop),
            send=conn.send_ping,
            on_failure=suspect_master,
            interval=float(welcome.get("heartbeat_interval") or DEFAULT_INTERVAL),
            timeout=float(welcome.get("heartbeat_timeout") or DEFAULT_TIMEOUT),
        )
        conn.on_traffic(monitor.touch)
        monitor.start()

        results: "asyncio.Queue[Optional[tuple]]" = asyncio.Queue()
        end_received = False

        async def send_results() -> None:
            """Answer computed frames strictly in arrival order."""
            while True:
                item = await results.get()
                if item is None:
                    return
                record, future = item
                try:
                    values = await future
                    if record.get("trace") is not None:
                        # run_batch answered the traced shape: echo the trace
                        # (now carrying exec_s) back in the RESULT record.
                        values, trace_out = values
                    else:
                        trace_out = None
                except Exception as exc:
                    report.error = f"task failed: {exc!r}"
                    with suppress(Exception):
                        conn.send_bytes(
                            pack_wire_frame({"kind": TASK_ERROR, "message": repr(exc)})
                        )
                        await conn.drain()
                    conn.close_transport()
                    return
                try:
                    result_record = {
                        "kind": RESULT,
                        "seq": record.get("seq"),
                        "batched": record.get("batched", False),
                    }
                    if trace_out is not None:
                        result_record["trace"] = trace_out
                    conn.send_bytes(pack_wire_frame(result_record, values))
                    await conn.drain()
                except Exception as exc:
                    if report.error is None:
                        report.error = f"send failed: {exc!r}"
                    return
                report.frames_processed += 1
                report.values_processed += len(values)

        with ThreadPoolExecutor(max_workers=tabs) as executor:
            sender = asyncio.ensure_future(send_results())
            submitted = 0
            try:
                while True:
                    payload = await conn.recv()
                    if payload is None:
                        break
                    record = unpack_wire_frame(payload)
                    kind = record.get("kind")
                    if kind == DATA:
                        values = record.get("values", [])
                        future = loop.run_in_executor(
                            executor, run_batch, ref, values, record.get("trace")
                        )
                        await results.put((record, future))
                        submitted += 1
                        if max_frames is not None and submitted >= max_frames:
                            break
                    elif kind == END:
                        end_received = True
                        break
                    # unknown kinds are ignored (forward compatibility)
            finally:
                await results.put(None)
                await sender
        monitor.stop()
        if report.error is None and not report.suspected_master:
            if end_received or max_frames is not None:
                with suppress(Exception):
                    conn.send_bytes(pack_wire_frame({"kind": BYE}))
                    await conn.drain()
                    conn.send_close()
                    await conn.drain()
                report.graceful = True
            else:
                report.error = "connection lost before the stream ended"
    except Exception as exc:
        if report.error is None:
            report.error = repr(exc)
    finally:
        if monitor is not None:
            monitor.stop()
        report.pings_received = conn.pings_received
        report.pongs_received = conn.pongs_received
        conn.close_transport()
    return report


def _volunteer_process_main(url: str, kwargs: Dict[str, Any]) -> None:
    report = run_volunteer(url, **kwargs)
    # The exit status is the only channel the parent reliably sees.
    if report.error is not None:
        sys.exit(1)


def spawn_volunteer_process(
    url: str,
    fn_ref: Any = None,
    name: Optional[str] = None,
    tabs: int = 1,
    max_frames: Optional[int] = None,
    start: bool = True,
) -> multiprocessing.Process:
    """Run one :func:`run_volunteer` session in a child OS process.

    Uses the ``spawn`` start method, so the child imports this module fresh
    — no forked locks or event loops — exactly like an external volunteer
    started from the shell.  *fn_ref* must then be picklable (dotted-name
    strings and ``("file", path)`` references are).  The returned process is
    a daemon: it cannot outlive the test or bench that spawned it.
    """
    context = multiprocessing.get_context("spawn")
    process = context.Process(
        target=_volunteer_process_main,
        args=(
            url,
            {"fn_ref": fn_ref, "name": name, "tabs": tabs, "max_frames": max_frames},
        ),
        daemon=True,
    )
    if start:
        process.start()
    return process


def main(argv: Optional[List[str]] = None) -> int:
    """``pando volunteer URL`` — join a live master from the command line."""
    parser = argparse.ArgumentParser(
        prog="pando volunteer",
        description=(
            "Join a running Pando master as a volunteer over a websocket "
            "and process values until the stream ends."
        ),
    )
    parser.add_argument("url", help="the master's gateway URL (ws://host:port)")
    parser.add_argument(
        "--module",
        help="Pando module file supplying the processing function locally "
        "(default: use the reference the master's welcome frame carries)",
    )
    parser.add_argument(
        "--app", help="use a built-in application's function instead of a module"
    )
    parser.add_argument(
        "--fn", help="dotted 'module:attribute' function reference"
    )
    parser.add_argument("--name", help="volunteer name announced to the master")
    parser.add_argument(
        "--tabs",
        type=int,
        default=1,
        help="worker threads, the equivalent of the paper's browser tabs",
    )
    parser.add_argument(
        "--max-frames",
        type=int,
        default=None,
        dest="max_frames",
        help="leave gracefully after answering this many frames",
    )
    args = parser.parse_args(argv)

    fn_ref: Any = None
    if args.module is not None:
        import os

        fn_ref = ("file", os.path.abspath(args.module))
    elif args.app is not None:
        from ..apps import registry as app_registry

        fn_ref = app_registry.create(args.app).process
    elif args.fn is not None:
        fn_ref = args.fn

    report = run_volunteer(
        args.url,
        fn_ref=fn_ref,
        name=args.name,
        tabs=args.tabs,
        max_frames=args.max_frames,
    )
    sys.stderr.write(
        f"volunteer {report.worker_id or '?'}: processed "
        f"{report.values_processed} value(s) in {report.frames_processed} "
        f"frame(s)\n"
    )
    if report.error is not None:
        sys.stderr.write(f"volunteer error: {report.error}\n")
        return 1
    return 0
