"""Browser-tab workers.

In Pando, each participating browser tab runs the bundled worker code: an
``AsyncMap(f)`` pull-stream module that pulls input values from the channel,
applies the user's processing function ``f`` and pushes results back (paper
Figure 7, "Worker (Browser Tab)").  :class:`BrowserTab` reproduces that
composition on top of a simulated device: the *duration* of each task comes
from the device's calibrated rate, while the *result* comes either from the
application's lightweight ``simulate_result`` or from the bundled function
itself.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..devices.device import SimDevice
from ..master.bundler import Bundle
from ..net.channel import ChannelEndpoint
from ..pullstream import async_map, pull
from ..sim.metrics import MetricsCollector

__all__ = ["BrowserTab"]

NodeCallback = Callable[[Optional[BaseException], Any], None]


class BrowserTab:
    """One worker tab running on a simulated device."""

    def __init__(self, device: SimDevice, tab_index: int = 0) -> None:
        self.device = device
        self.tab_index = tab_index
        self.worker_id = f"{device.name}#{tab_index}"
        self.endpoint: Optional[ChannelEndpoint] = None
        self.bundle: Optional[Bundle] = None
        self.metrics: Optional[MetricsCollector] = None
        self.items_processed = 0
        self.closed = False

    # ------------------------------------------------------------------ API
    def attach(
        self,
        endpoint: ChannelEndpoint,
        bundle: Bundle,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        """Wire the tab to its channel endpoint and start processing."""
        self.endpoint = endpoint
        self.bundle = bundle
        self.metrics = metrics
        endpoint.on_close(self._on_endpoint_closed)
        pull(endpoint.duplex.source, async_map(self._process), endpoint.duplex.sink)

    def crash(self) -> None:
        """Crash-stop this tab (close the page abruptly)."""
        self.closed = True
        if self.endpoint is not None:
            self.endpoint.crash()

    def close(self) -> None:
        """Close the tab gracefully (the volunteer leaves on purpose)."""
        self.closed = True
        if self.endpoint is not None:
            self.endpoint.close(reason="tab closed")

    # ------------------------------------------------------------ processing
    def _process(self, value: Any, cb: NodeCallback) -> None:
        if self.closed or self.bundle is None:
            # A crashed tab never answers; the master's heartbeat timeout
            # detects the silence.
            return  # pando-lint: ignore[callback-discipline]
        application = self.bundle.application
        app_name = getattr(application, "name", "generic")
        cost = (
            application.cost(value)
            if application is not None and hasattr(application, "cost")
            else 1.0
        )

        def task_done(err: Optional[BaseException], duration: Any) -> None:
            if err is not None or self.closed:
                # Crash-stop: the result is never sent.
                return
            try:
                result = self._compute_result(value)
            except Exception as exc:
                cb(exc, None)
                return
            self.items_processed += 1
            if self.metrics is not None:
                self.metrics.record_work(
                    self.worker_id,
                    timestamp=self.device.scheduler.now,
                    duration=float(duration),
                )
            cb(None, result)

        self.device.execute(app_name, cost, task_done)

    def _compute_result(self, value: Any) -> Any:
        application = self.bundle.application
        if application is not None and hasattr(application, "simulate_result"):
            return application.simulate_result(value)
        # No application metadata: run the bundled function synchronously.
        outcome = {}

        def node_cb(err: Optional[BaseException], result: Any = None) -> None:
            outcome["err"] = err
            outcome["result"] = result

        self.bundle.apply(value, node_cb)
        if outcome.get("err") is not None:
            raise outcome["err"]
        return outcome.get("result")

    def _on_endpoint_closed(self, _reason: Optional[BaseException]) -> None:
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self.closed else "open"
        return f"<BrowserTab {self.worker_id} {state} processed={self.items_processed}>"
