"""Findings, suppressions and the committed baseline of ``pando-lint``.

A checker reports :class:`Finding` objects carrying the checker id, the
``file:line`` anchor and a one-line message.  Two mechanisms keep the gate
workable on a living codebase:

* **Suppressions** — a ``# pando-lint: ignore[checker-id]`` comment on the
  flagged line (or on the line directly above it) silences that finding.
  ``ignore[*]`` silences every checker for the line.  Suppressions are the
  reviewed, in-code escape hatch for intentional patterns.
* **Baseline** — a committed file of finding fingerprints that are
  tolerated (grandfathered) by CI.  This repository's baseline is empty
  and must stay empty: new findings either get fixed or get an explicit
  suppression comment that a reviewer can see.

Fingerprints deliberately exclude line numbers so an unrelated edit above
a grandfathered finding does not break the gate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Set

__all__ = [
    "Finding",
    "SuppressionIndex",
    "parse_suppressions",
    "load_baseline",
    "format_finding",
]

_SUPPRESS_RE = re.compile(r"pando-lint:\s*ignore\[([a-z*][a-z0-9_*,\- ]*)\]")


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding."""

    checker: str  #: checker id, e.g. ``"callback-discipline"``
    path: str  #: file path as given to the analyzer
    line: int  #: 1-based line the finding anchors to
    message: str  #: one-line description
    function: str = ""  #: qualified name of the enclosing function, if any
    detail: str = ""  #: optional multi-line elaboration (e.g. a call path)

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.checker}|{self.path}|{self.function}|{self.message}"


class SuppressionIndex:
    """Per-file map of ``# pando-lint: ignore[...]`` comments.

    A suppression on line *n* covers findings on line *n* and on line
    *n + 1* — the latter so a standalone comment line can precede a long
    statement that has no room for a trailing comment.
    """

    def __init__(self, by_line: Dict[int, Set[str]]) -> None:
        self._by_line = by_line
        #: suppressions that silenced at least one finding (unused-suppression
        #: reporting starts from the complement)
        self.used: Set[int] = set()

    def covers(self, line: int, checker: str) -> bool:
        for candidate in (line, line - 1):
            checkers = self._by_line.get(candidate)
            if checkers is not None and (checker in checkers or "*" in checkers):
                self.used.add(candidate)
                return True
        return False

    @property
    def lines(self) -> Set[int]:
        return set(self._by_line)


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract the suppression comments of *source* (tokenizer-accurate)."""
    by_line: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            checkers = {part.strip() for part in match.group(1).split(",")}
            by_line.setdefault(token.start[0], set()).update(
                checker for checker in checkers if checker
            )
    except tokenize.TokenizeError:  # pragma: no cover - source already parsed
        pass
    return SuppressionIndex(by_line)


def load_baseline(path: str) -> Set[str]:
    """Read a baseline file into a set of tolerated fingerprints.

    Blank lines and ``#`` comments are ignored, so an empty baseline can
    still document itself.
    """
    fingerprints: Set[str] = set()
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fingerprints.add(line)
    return fingerprints


def format_finding(finding: Finding, show_detail: bool = True) -> str:
    """Render one finding the way compilers do: ``path:line: [id] message``."""
    where = f"{finding.path}:{finding.line}"
    scope = f" in {finding.function}" if finding.function else ""
    text = f"{where}: [{finding.checker}]{scope}: {finding.message}"
    if show_detail and finding.detail:
        text += "\n" + "\n".join(f"    {line}" for line in finding.detail.splitlines())
    return text
