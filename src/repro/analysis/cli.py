"""The ``pando-lint`` command line.

Run as ``python -m repro.analysis``, as the ``pando-lint`` console script,
or as ``pando lint`` through the main CLI — all three share this module.

Exit codes: ``0`` clean, ``1`` findings survived the suppression and
baseline layers, ``2`` usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .checkers import ALL_CHECKERS, CHECKER_IDS
from .findings import format_finding, load_baseline
from .runner import analyze_paths, run_checkers

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pando-lint",
        description=(
            "Concurrency-aware static analysis for the pando stream/pool/shm "
            "stack: callback discipline, resource pairing, thread ownership "
            "and blocking-call checks."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--checks",
        default=None,
        metavar="IDS",
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of grandfathered finding fingerprints",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="list the available checkers and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _list_checks() -> None:
    for checker in ALL_CHECKERS:
        doc = (checker.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{checker.CHECKER_ID:24} {summary}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_checks:
        _list_checks()
        return 0

    checks = None
    if options.checks:
        checks = [part.strip() for part in options.checks.split(",") if part.strip()]
        unknown = sorted(set(checks) - set(CHECKER_IDS))
        if unknown:
            print(
                f"pando-lint: unknown checker(s): {', '.join(unknown)} "
                f"(known: {', '.join(CHECKER_IDS)})",
                file=sys.stderr,
            )
            return 2

    baseline = None
    if options.baseline is not None:
        if not os.path.exists(options.baseline):
            print(
                f"pando-lint: baseline file not found: {options.baseline}",
                file=sys.stderr,
            )
            return 2
        baseline = load_baseline(options.baseline)

    missing = [path for path in options.paths if not os.path.exists(path)]
    if missing:
        print(
            f"pando-lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    try:
        modules = analyze_paths(options.paths)
    except SyntaxError as exc:
        print(f"pando-lint: parse error: {exc}", file=sys.stderr)
        return 2

    result = run_checkers(modules, checks=checks, baseline=baseline)

    if options.format == "json":
        payload = {
            "findings": [
                {
                    "checker": finding.checker,
                    "path": finding.path,
                    "line": finding.line,
                    "function": finding.function,
                    "message": finding.message,
                    "detail": finding.detail,
                    "fingerprint": finding.fingerprint,
                }
                for finding in result.findings
            ],
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "files": result.files,
            "functions": result.functions,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in result.findings:
            print(format_finding(finding))
        if not options.quiet:
            silenced = ""
            if result.suppressed or result.baselined:
                silenced = (
                    f" ({result.suppressed} suppressed, "
                    f"{result.baselined} baselined)"
                )
            print(
                f"pando-lint: {len(result.findings)} finding(s) in "
                f"{result.files} file(s), {result.functions} function(s)"
                f"{silenced}",
                file=sys.stderr,
            )

    return 1 if result.findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
