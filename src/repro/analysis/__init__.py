"""``pando-lint``: concurrency-aware static analysis for the pando stack.

The runtime packages enforce the pull-stream and slot-ownership protocols
dynamically (``ProtocolChecker``, the shm ring's accounting asserts, the
property-test suites).  This package enforces the same invariants
*statically*, before the code ever runs, with four checkers:

``callback-discipline``
    every ``read(end, cb)``-shaped function answers its callback exactly
    once per path, or visibly hands it off;
``resource-pairing``
    every ``ShmRing.acquire()`` / ``SharedMemory`` / executor handle is
    released or handed off on every exit path;
``thread-ownership``
    no path from a foreign-thread entry point reaches ``@loop_only`` code
    without crossing ``scheduler.wake()`` / ``call_soon_threadsafe``;
``blocking-call-on-loop``
    no ``time.sleep`` / untimed ``Future.result()`` / untimed lock or
    queue wait is reachable from the event loop's dispatch machinery.

Run it with ``python -m repro.analysis``, the ``pando-lint`` script, or
``pando lint``.  Silence an intentional pattern with a reviewed
``# pando-lint: ignore[checker-id]`` comment on (or directly above) the
flagged line.
"""

from __future__ import annotations

from .annotations import (
    any_thread,
    enable_thread_asserts,
    loop_only,
    mark_loop_thread,
    ownership_of,
    thread_asserts_enabled,
    unmark_loop_thread,
)
from .findings import Finding, format_finding
from .runner import AnalyzedModule, LintResult, analyze_paths, run_checkers

__all__ = [
    "AnalyzedModule",
    "Finding",
    "LintResult",
    "analyze_paths",
    "any_thread",
    "enable_thread_asserts",
    "format_finding",
    "loop_only",
    "mark_loop_thread",
    "ownership_of",
    "run_checkers",
    "thread_asserts_enabled",
    "unmark_loop_thread",
]
