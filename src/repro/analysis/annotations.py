"""Thread-ownership annotations for the single-threaded stream world.

The whole pull-stream machinery — lender, limiter, splitter, sinks — runs
without locks because every callback is dispatched on exactly one thread:
the thread spinning :meth:`~repro.sched.event_loop.EventLoopScheduler.run`
(or, under the thread driver, the thread that called ``drive``).  Work
arrives from other threads only through the two sanctioned crossings,
``scheduler.wake()`` and :class:`~repro.sched.sources.PushablePort`.

That contract used to live in docstrings.  These decorators make it a
machine-checkable property:

* ``@loop_only`` marks a function that must only run on the dispatch
  thread.  The ``pando-lint`` *thread-ownership* checker statically flags
  call paths from thread-entry points (``threading.Thread`` targets,
  ``add_done_callback`` callbacks, executor-submitted child entry points)
  into ``@loop_only`` code that do not go through a sanctioned crossing.
* ``@any_thread`` marks a function deliberately safe to call from any
  thread (it takes a lock, or only touches the sanctioned crossings).  The
  checker walks *through* it, so everything an ``@any_thread`` function
  calls must itself be thread-safe or a crossing.

Both decorators are free at call time unless the runtime asserts are
enabled (``enable_thread_asserts()`` or the ``PANDO_THREAD_ASSERTS=1``
environment variable), in which case ``@loop_only`` verifies the caller's
thread identity against the thread registered by
:func:`mark_loop_thread` — the dynamic complement the test suite uses to
prove the annotations themselves are placed correctly.
"""

from __future__ import annotations

import functools
import os
import threading
from typing import Any, Callable, Optional, TypeVar

from ..errors import ThreadOwnershipError

__all__ = [
    "loop_only",
    "any_thread",
    "enable_thread_asserts",
    "thread_asserts_enabled",
    "mark_loop_thread",
    "unmark_loop_thread",
    "loop_thread_ident",
    "ownership_of",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Attribute carrying the ownership tag on decorated functions.
OWNERSHIP_ATTR = "__pando_thread_ownership__"

_asserts_enabled = os.environ.get("PANDO_THREAD_ASSERTS", "") not in ("", "0")
_loop_thread: Optional[int] = None


def enable_thread_asserts(enabled: bool = True) -> None:
    """Turn the runtime thread-identity checks on (or off) process-wide."""
    global _asserts_enabled
    _asserts_enabled = enabled


def thread_asserts_enabled() -> bool:
    """True when ``@loop_only`` verifies thread identity at call time."""
    return _asserts_enabled


def mark_loop_thread(ident: Optional[int] = None) -> Optional[int]:
    """Register *ident* (default: the current thread) as the dispatch thread.

    Returns the previously registered ident so callers can restore it —
    :meth:`EventLoopScheduler.run` marks on entry and restores on exit, which
    keeps nested/sequential runs and the thread driver composable.
    """
    global _loop_thread
    previous = _loop_thread
    _loop_thread = ident if ident is not None else threading.get_ident()
    return previous


def unmark_loop_thread(previous: Optional[int] = None) -> None:
    """Deregister the dispatch thread (restoring *previous* when given)."""
    global _loop_thread
    _loop_thread = previous


def loop_thread_ident() -> Optional[int]:
    """The currently registered dispatch thread ident, if any."""
    return _loop_thread


def loop_only(fn: F) -> F:
    """Mark *fn* as callable only on the dispatch (loop) thread.

    The static checker reads the decorator from the AST; the wrapper below
    adds the optional runtime assert.  The tag is set on both the wrapper
    and the original so introspection works through ``__wrapped__``.
    """

    @functools.wraps(fn)
    def guarded(*args: Any, **kwargs: Any) -> Any:
        if _asserts_enabled and _loop_thread is not None:
            current = threading.get_ident()
            if current != _loop_thread:
                raise ThreadOwnershipError(
                    f"{fn.__qualname__} is @loop_only but was entered from "
                    f"thread {current} while thread {_loop_thread} owns the "
                    f"dispatch loop; route the call through PushablePort or "
                    f"scheduler.wake()"
                )
        return fn(*args, **kwargs)

    setattr(fn, OWNERSHIP_ATTR, "loop_only")
    setattr(guarded, OWNERSHIP_ATTR, "loop_only")
    return guarded  # type: ignore[return-value]


def any_thread(fn: F) -> F:
    """Mark *fn* as deliberately safe to call from any thread.

    Pure annotation — no wrapper, no overhead: the value is the tag the
    static checker traverses through (everything an ``@any_thread``
    function calls must itself be thread-safe or a sanctioned crossing).
    """
    setattr(fn, OWNERSHIP_ATTR, "any_thread")
    return fn


def ownership_of(fn: Any) -> Optional[str]:
    """The ownership tag of *fn* (``"loop_only"``, ``"any_thread"`` or None)."""
    return getattr(fn, OWNERSHIP_ATTR, None)
