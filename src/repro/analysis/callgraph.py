"""An approximate call graph over the analyzed modules.

Both concurrency checkers (thread-ownership and blocking-call-on-loop)
ask reachability questions: *starting from this entry point, which
functions can execute?*  This module builds the shared function index and
the call-resolution rules they traverse.

Resolution is deliberately modest — the goal is a graph precise enough to
be quiet, not a points-to analysis:

* ``self.m()`` / ``cls.m()`` resolves within the caller's class, then its
  (transitive, by-name) bases;
* a bare ``name()`` resolves to a sibling nested function, then a
  same-module function, then — only if the name is *unique* across the
  whole index — the single global candidate (this is how ``from x import
  helper`` calls resolve without an import solver);
* ``obj.m()`` on an arbitrary receiver resolves only when exactly one
  class in the index defines ``m``.  Ambiguity (``push`` exists on both
  ``Pushable`` and ``PushablePort``) produces *no* edge rather than a
  guessed one, because a wrong edge becomes a false finding.

Unresolved calls simply have no edge; the checkers accept the resulting
under-approximation and say so in their docs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["FunctionInfo", "CallGraph", "calls_in", "decorator_names"]


def decorator_names(fn: ast.AST) -> List[str]:
    """Last dotted component of each decorator (``repro.x.loop_only`` → ``loop_only``)."""
    names = []
    for decorator in getattr(fn, "decorator_list", []):
        node = decorator
        if isinstance(node, ast.Call):
            node = node.func
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Name):
            names.append(node.id)
    return names


def calls_in(fn: ast.AST) -> Iterable[ast.Call]:
    """Every call executed by *fn* itself — nested function bodies excluded
    (they are separate index entries, reached through direct-call edges)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    module: object  #: the owning AnalyzedModule
    qualname: str  #: dotted name within the module (``Class.method.inner``)
    node: ast.AST
    cls: Optional[str] = None  #: enclosing class name for methods
    ownership: Optional[str] = None  #: ``"loop_only"`` / ``"any_thread"`` / None

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module.path, self.qualname)

    @property
    def label(self) -> str:
        return f"{self.module.path}:{self.qualname}"


@dataclass
class CallGraph:
    functions: Dict[Tuple[str, str], FunctionInfo] = field(default_factory=dict)
    _by_name: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    _methods: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    _class_bases: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, modules) -> "CallGraph":
        graph = cls()
        for module in modules:
            for class_name, bases in module.classes.items():
                graph._class_bases.setdefault(class_name, []).extend(bases)
            for qualname, fn in module.functions.items():
                names = decorator_names(fn)
                ownership = None
                if "loop_only" in names:
                    ownership = "loop_only"
                elif "any_thread" in names:
                    ownership = "any_thread"
                parts = qualname.split(".")
                owner = parts[-2] if len(parts) > 1 else None
                info = FunctionInfo(
                    module=module,
                    qualname=qualname,
                    node=fn,
                    cls=owner if owner in module.classes else None,
                    ownership=ownership,
                )
                graph.functions[info.key] = info
                graph._by_name.setdefault(parts[-1], []).append(info)
                if info.cls is not None:
                    graph._methods.setdefault(parts[-1], []).append(info)
        return graph

    # ------------------------------------------------------------ resolution
    def subclasses_of(self, base_name: str) -> List[str]:
        """Class names transitively deriving from *base_name* (inclusive)."""
        found = {base_name}
        changed = True
        while changed:
            changed = False
            for class_name, bases in self._class_bases.items():
                if class_name not in found and any(base in found for base in bases):
                    found.add(class_name)
                    changed = True
        return sorted(found)

    def method(self, class_name: str, attr: str) -> Optional[FunctionInfo]:
        """``class_name.attr`` looked up through the (by-name) MRO."""
        seen = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for info in self._methods.get(attr, []):
                if info.cls == current:
                    return info
            queue.extend(self._class_bases.get(current, []))
        return None

    def resolve(self, caller: FunctionInfo, func: ast.expr) -> Optional[FunctionInfo]:
        """The callee of a call whose ``func`` expression is *func*, or None."""
        if isinstance(func, ast.Name):
            return self._resolve_bare(caller, func.id)
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls"):
                if caller.cls is not None:
                    return self.method(caller.cls, func.attr)
                return None
            candidates = self._methods.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        return None

    def _resolve_bare(self, caller: FunctionInfo, name: str) -> Optional[FunctionInfo]:
        # innermost enclosing scope first: nested functions of the caller,
        # then siblings at each enclosing level, then module level
        parts = caller.qualname.split(".")
        for depth in range(len(parts), -1, -1):
            qualname = ".".join(parts[:depth] + [name])
            info = self.functions.get((caller.module.path, qualname))
            if info is not None:
                return info
        # cross-module: only an unambiguous plain function
        candidates = [
            info for info in self._by_name.get(name, []) if info.cls is None
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None
