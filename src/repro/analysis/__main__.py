"""``python -m repro.analysis`` — the pando-lint entry point."""

from __future__ import annotations

import sys

from .cli import main

sys.exit(main())
