"""Parse the target tree and drive the checkers.

:func:`analyze_paths` turns ``.py`` files (or directories of them) into
:class:`AnalyzedModule` objects — source, AST, a qualname index of every
function *including nested ones* (most pull-stream callbacks live in
closures like ``_make_source.read``), the class/base table the call graph
needs, and the file's suppression comments.

:func:`run_checkers` executes the selected checkers and applies the two
silencing layers in order: in-code suppressions first (they are visible at
the flagged line), then the committed baseline (grandfathered
fingerprints).  The result keeps the per-layer counts so the CLI can
report what was silenced, not just what fired.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .checkers import ALL_CHECKERS
from .findings import Finding, SuppressionIndex, parse_suppressions

__all__ = ["AnalyzedModule", "LintResult", "analyze_paths", "run_checkers"]


@dataclass
class AnalyzedModule:
    path: str  #: path as reported in findings (relative when given relative)
    source: str
    tree: ast.Module
    #: dotted qualname -> def node, nested functions included
    functions: Dict[str, ast.AST] = field(default_factory=dict)
    #: class name -> base-class names (last dotted component)
    classes: Dict[str, List[str]] = field(default_factory=dict)
    suppressions: SuppressionIndex = None


class _Indexer(ast.NodeVisitor):
    def __init__(self, module: AnalyzedModule) -> None:
        self.module = module
        self._stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Attribute):
                bases.append(base.attr)
            elif isinstance(base, ast.Name):
                bases.append(base.id)
        self.module.classes[node.name] = bases
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        qualname = ".".join(self._stack + [node.name])
        self.module.functions[qualname] = node
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef


def _iter_py_files(target: str) -> Iterable[str]:
    if os.path.isfile(target):
        yield target
        return
    for dirpath, dirnames, filenames in os.walk(target):
        dirnames[:] = sorted(
            name for name in dirnames if name not in ("__pycache__", ".git")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def analyze_paths(targets: Sequence[str]) -> List[AnalyzedModule]:
    """Parse every ``.py`` file under *targets* into analyzed modules.

    A file that fails to parse raises ``SyntaxError`` — a tree that does
    not parse cannot be linted and should fail loudly, not silently pass.
    """
    modules: List[AnalyzedModule] = []
    for target in targets:
        for path in _iter_py_files(target):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
            module = AnalyzedModule(
                path=path,
                source=source,
                tree=tree,
                suppressions=parse_suppressions(source),
            )
            _Indexer(module).visit(tree)
            modules.append(module)
    return modules


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)  #: surviving findings
    suppressed: int = 0  #: silenced by in-code comments
    baselined: int = 0  #: silenced by the committed baseline
    files: int = 0
    functions: int = 0

    @property
    def total_raised(self) -> int:
        return len(self.findings) + self.suppressed + self.baselined


def run_checkers(
    modules: Sequence[AnalyzedModule],
    checks: Optional[Sequence[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> LintResult:
    """Run the selected *checks* (default: all) and apply silencing layers."""
    result = LintResult(
        files=len(modules),
        functions=sum(len(module.functions) for module in modules),
    )
    by_path = {module.path: module for module in modules}
    selected = [
        checker
        for checker in ALL_CHECKERS
        if checks is None or checker.CHECKER_ID in checks
    ]
    raw: List[Finding] = []
    for checker in selected:
        raw.extend(checker.check(modules))
    raw.sort(key=lambda finding: (finding.path, finding.line, finding.checker))
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.suppressions.covers(
            finding.line, finding.checker
        ):
            result.suppressed += 1
            continue
        if baseline and finding.fingerprint in baseline:
            result.baselined += 1
            continue
        result.findings.append(finding)
    return result
