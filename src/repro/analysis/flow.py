"""A structured-control-flow path walker for per-function checkers.

The callback-discipline and resource-pairing checkers both answer the same
shape of question: *on every path from function entry to a normal exit, did
a required event happen?*  Python's structured statements make that
answerable without building a CFG: :class:`StructuredWalker` interprets a
function body over a small set of abstract states, forking at ``if``/
``try`` and merging afterwards, and calls a checker hook at every exit.

Design decisions that keep the pass both useful and quiet:

* **States are small frozen values** supplied by the checker; the walker
  only unions sets of them, so path explosion is bounded by the state
  lattice, not by the number of syntactic paths.
* **Loops are unrolled twice** (with saturating states this reaches the
  fixed point): enough to notice a second callback invocation on the next
  iteration, without a full abstract-interpretation fixpoint engine.
* **``raise`` exits are not checked.**  A propagating exception hands the
  obligation to the caller (and, for resources, to an enclosing
  ``try/finally``); flagging every raising path would bury the true
  positives in noise.  ``return`` and fall-through exits are checked, with
  the effects of enclosing ``finally`` blocks applied first.
* **``except`` handlers are entered from every intermediate state** of
  their ``try`` body — the exception may have struck anywhere — which is
  the conservative join.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence

__all__ = ["StructuredWalker", "FlowOut"]

#: Safety bound on the abstract-state set; a checker whose lattice explodes
#: past this is merged coarsely rather than slowing the whole pass down.
MAX_STATES = 256


class FlowOut:
    """States leaving a statement sequence, keyed by how they left."""

    __slots__ = ("next", "breaks", "continues", "returns")

    def __init__(self) -> None:
        self.next: set = set()
        self.breaks: set = set()
        self.continues: set = set()
        self.returns: set = set()


def _cap(states: set) -> set:
    if len(states) > MAX_STATES:  # pragma: no cover - defensive bound
        return set(list(states)[:MAX_STATES])
    return states


class StructuredWalker:
    """Interpret a function body over checker-supplied abstract states.

    Subclasses override:

    ``eval_expr(state, expr) -> state``
        Apply the effects of evaluating *expr* (record findings as a side
        effect).
    ``eval_assign(state, node) -> state``
        Apply an assignment statement (default: evaluate the value).
    ``narrow(state, test, branch) -> state | None``
        Refine *state* under *test* being truthy (``branch=True``) or
        falsy; return ``None`` to prune an infeasible branch.
    ``at_exit(state, node, kind)``
        Called for every state reaching a ``return`` (*kind* ``"return"``)
        or falling off the end (*kind* ``"fall"``).
    ``on_nested_def(state, node) -> state``
        A nested ``def``/``lambda``/comprehension was encountered; its body
        is *not* walked.
    """

    def run(self, body: Sequence[ast.stmt], initial_state: object) -> None:
        self._finally_stack: List[Sequence[ast.stmt]] = []
        out = self.walk(body, {initial_state})
        last = body[-1] if body else None
        for state in out.next:
            self.at_exit(state, last, "fall")

    # ---------------------------------------------------------------- hooks
    def eval_expr(self, state: object, expr: ast.expr) -> object:  # pragma: no cover
        return state

    def eval_assign(self, state: object, node: ast.stmt) -> object:
        value = getattr(node, "value", None)
        if value is not None:
            state = self.eval_expr(state, value)
        return state

    def narrow(self, state: object, test: ast.expr, branch: bool) -> object:
        # Constant tests prune the impossible branch (``while True`` only
        # exits through ``break``); checkers refine further.
        if isinstance(test, ast.Constant):
            if bool(test.value) != branch:
                return None
        return state

    def at_exit(self, state: object, node: object, kind: str) -> None:  # pragma: no cover
        return None

    def on_nested_def(self, state: object, node: ast.AST) -> object:
        return state

    # ------------------------------------------------------------ traversal
    def walk(
        self,
        stmts: Sequence[ast.stmt],
        states: set,
        intermediate: List[set] = None,
    ) -> FlowOut:
        """Interpret *stmts* from *states*; optionally record the state set
        after each statement (``try``-handler entry joins)."""
        out = FlowOut()
        current = set(states)
        for stmt in stmts:
            if not current:
                break
            step = self._walk_stmt(stmt, current)
            out.breaks |= step.breaks
            out.continues |= step.continues
            out.returns |= step.returns
            current = _cap(step.next)
            if intermediate is not None:
                intermediate.append(set(current))
        out.next = current
        return out

    def _walk_stmt(self, stmt: ast.stmt, states: set) -> FlowOut:
        out = FlowOut()
        handler = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if handler is not None:
            return handler(stmt, states)
        # Default: evaluate every expression the statement contains directly
        # (covers Expr, Assert, Delete, simple statements).
        next_states = set()
        for state in states:
            for expr in ast.iter_child_nodes(stmt):
                if isinstance(expr, ast.expr):
                    state = self.eval_expr(state, expr)
            next_states.add(state)
        out.next = next_states
        return out

    # -- statement forms ----------------------------------------------------
    def _stmt_Expr(self, stmt: ast.Expr, states: set) -> FlowOut:
        out = FlowOut()
        out.next = {self.eval_expr(state, stmt.value) for state in states}
        return out

    def _stmt_Assign(self, stmt: ast.Assign, states: set) -> FlowOut:
        out = FlowOut()
        out.next = {self.eval_assign(state, stmt) for state in states}
        return out

    _stmt_AnnAssign = _stmt_Assign
    _stmt_AugAssign = _stmt_Assign

    def _stmt_Return(self, stmt: ast.Return, states: set) -> FlowOut:
        out = FlowOut()
        for state in states:
            if stmt.value is not None:
                state = self.eval_expr(state, stmt.value)
            for exit_state in self._apply_finallys(state):
                self.at_exit(exit_state, stmt, "return")
                out.returns.add(exit_state)
        return out

    def _stmt_Raise(self, stmt: ast.Raise, states: set) -> FlowOut:
        for state in states:
            if stmt.exc is not None:
                self.eval_expr(state, stmt.exc)
        return FlowOut()  # raising paths are not checked

    def _stmt_Break(self, _stmt: ast.Break, states: set) -> FlowOut:
        out = FlowOut()
        out.breaks = set(states)
        return out

    def _stmt_Continue(self, _stmt: ast.Continue, states: set) -> FlowOut:
        out = FlowOut()
        out.continues = set(states)
        return out

    def _stmt_Pass(self, _stmt: ast.Pass, states: set) -> FlowOut:
        out = FlowOut()
        out.next = set(states)
        return out

    _stmt_Global = _stmt_Pass
    _stmt_Nonlocal = _stmt_Pass
    _stmt_Import = _stmt_Pass
    _stmt_ImportFrom = _stmt_Pass

    def _stmt_FunctionDef(self, stmt: ast.stmt, states: set) -> FlowOut:
        out = FlowOut()
        out.next = {self.on_nested_def(state, stmt) for state in states}
        return out

    _stmt_AsyncFunctionDef = _stmt_FunctionDef
    _stmt_ClassDef = _stmt_FunctionDef
    _stmt_Lambda = _stmt_FunctionDef  # pragma: no cover - Lambda is an expr

    def _stmt_If(self, stmt: ast.If, states: set) -> FlowOut:
        out = FlowOut()
        true_states, false_states = set(), set()
        for state in states:
            state = self.eval_expr(state, stmt.test)
            narrowed_true = self.narrow(state, stmt.test, True)
            if narrowed_true is not None:
                true_states.add(narrowed_true)
            narrowed_false = self.narrow(state, stmt.test, False)
            if narrowed_false is not None:
                false_states.add(narrowed_false)
        for branch_states, body in (
            (true_states, stmt.body),
            (false_states, stmt.orelse),
        ):
            if not branch_states:
                continue
            if body:
                branch_out = self.walk(body, branch_states)
                out.next |= branch_out.next
                out.breaks |= branch_out.breaks
                out.continues |= branch_out.continues
                out.returns |= branch_out.returns
            else:
                out.next |= branch_states
        return out

    def _stmt_While(self, stmt: ast.While, states: set) -> FlowOut:
        return self._loop(stmt, states, test=stmt.test)

    def _stmt_For(self, stmt: ast.For, states: set) -> FlowOut:
        states = {self.eval_expr(state, stmt.iter) for state in states}
        return self._loop(stmt, states, test=None)

    _stmt_AsyncFor = _stmt_For

    def _loop(self, stmt, states: set, test) -> FlowOut:
        out = FlowOut()
        entry = set(states)
        seen_exits: set = set()
        for _iteration in range(2):  # saturating states: 2 unrolls reach the fixpoint
            body_entry = set()
            for state in entry:
                if test is not None:
                    state = self.eval_expr(state, test)
                    exited = self.narrow(state, test, False)
                    if exited is not None:
                        seen_exits.add(exited)
                    state = self.narrow(state, test, True)
                    if state is None:
                        continue
                else:
                    seen_exits.add(state)  # a for-loop may run zero times
                body_entry.add(state)
            if not body_entry:
                break
            body_out = self.walk(stmt.body, body_entry)
            out.returns |= body_out.returns
            seen_exits |= body_out.breaks
            entry = _cap(body_out.next | body_out.continues)
        # after the unrolls, whatever is still circulating may also exit
        for state in entry:
            if test is not None:
                exited = self.narrow(state, test, False)
                if exited is not None:
                    seen_exits.add(exited)
            else:
                seen_exits.add(state)
        if stmt.orelse:
            else_out = self.walk(stmt.orelse, seen_exits)
            out.next |= else_out.next
            out.returns |= else_out.returns
            out.breaks |= else_out.breaks
            out.continues |= else_out.continues
        else:
            out.next |= seen_exits
        return out

    def _stmt_With(self, stmt: ast.With, states: set) -> FlowOut:
        for item in stmt.items:
            states = {self.eval_with_item(state, item) for state in states}
        return self.walk(stmt.body, states)

    _stmt_AsyncWith = _stmt_With

    def eval_with_item(self, state: object, item: ast.withitem) -> object:
        return self.eval_expr(state, item.context_expr)

    def _stmt_Try(self, stmt: ast.Try, states: set) -> FlowOut:
        out = FlowOut()
        if stmt.finalbody:
            self._finally_stack.append(stmt.finalbody)
        try:
            intermediate: List[set] = []
            body_out = self.walk(stmt.body, states, intermediate=intermediate)
            handler_entry = set(states)
            for snapshot in intermediate:
                handler_entry |= snapshot
            handler_entry = _cap(handler_entry)
            merged = FlowOut()
            merged.next |= body_out.next
            merged.breaks |= body_out.breaks
            merged.continues |= body_out.continues
            merged.returns |= body_out.returns
            for handler in stmt.handlers:
                handler_out = self.walk(handler.body, handler_entry)
                merged.next |= handler_out.next
                merged.breaks |= handler_out.breaks
                merged.continues |= handler_out.continues
                merged.returns |= handler_out.returns
            if stmt.orelse and body_out.next:
                else_out = self.walk(stmt.orelse, body_out.next)
                merged.next = (merged.next - body_out.next) | else_out.next
                merged.breaks |= else_out.breaks
                merged.continues |= else_out.continues
                merged.returns |= else_out.returns
        finally:
            if stmt.finalbody:
                self._finally_stack.pop()
        if stmt.finalbody:
            out.next = self.walk(stmt.finalbody, merged.next).next if merged.next else set()
            out.breaks = self.walk(stmt.finalbody, merged.breaks).next if merged.breaks else set()
            out.continues = (
                self.walk(stmt.finalbody, merged.continues).next if merged.continues else set()
            )
            # returns already passed through the finally via _apply_finallys
            out.returns = merged.returns
        else:
            out = merged
        return out

    _stmt_TryStar = _stmt_Try

    def _apply_finallys(self, state: object) -> Iterable[object]:
        """Run every enclosing ``finally`` body over *state* (innermost first)."""
        states = {state}
        for finalbody in reversed(self._finally_stack):
            next_states = set()
            for current in states:
                next_states |= self.walk(finalbody, {current}).next
            states = _cap(next_states)
            if not states:
                break
        return states
