"""Checker: no blocking primitives on the event-loop thread.

The scheduler's fairness guarantee (PR 4) holds only if every dispatch
returns promptly: one ``time.sleep`` or untimed ``Future.result()`` inside
a dispatch freezes every pool, channel and timer sharing the loop.  This
checker computes the set of functions reachable from the loop's dispatch
machinery and flags the classic blocking calls inside it:

* ``time.sleep(...)``;
* ``<future>.result()`` with no ``timeout`` — the bounded form used by the
  pool's blocking fallback is fine;
* ``<lock/sem/cond>.acquire()`` with no arguments (untimed);
* ``<queue>.get()`` / ``<event/cond>.wait()`` with no arguments.

Roots are the loop's own entry points: ``EventLoopScheduler``'s dispatch
machinery, ``async_pump``, the ``ready``/``dispatch``/``live``/``arm``/
``cancel_pending`` methods of every ``EventSource`` subclass, and any
function declared ``@loop_only`` (loop-owned by definition).  Receiver
matching is textual (a receiver mentioning ``future``, ``lock``, ``queue``
…), which is the same naming-convention bet the resource checker makes:
cheap, predictable, and easy to satisfy or suppress.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..callgraph import CallGraph, FunctionInfo, calls_in
from ..findings import Finding

CHECKER_ID = "blocking-call-on-loop"

#: method names on EventSource subclasses that execute on the loop thread
_SOURCE_METHODS = ("ready", "dispatch", "live", "arm", "cancel_pending")

#: explicit loop entry points by qualname suffix
_NAMED_ROOTS = (
    "EventLoopScheduler.dispatch_round",
    "EventLoopScheduler.run",
    "async_pump",
)


def _receiver_text(func: ast.Attribute) -> str:
    try:
        return ast.unparse(func.value).lower()
    except Exception:  # pragma: no cover - unparse handles all 3.10+ exprs
        return ""


def _has_timeout(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(keyword.arg in ("timeout", "blocking", "block") for keyword in call.keywords)


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why *call* blocks the loop thread, or None if it does not."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _receiver_text(func)
    if func.attr == "sleep" and receiver == "time":
        return "time.sleep() stalls every source sharing the loop"
    if _has_timeout(call):
        return None  # a bounded wait is a deliberate, visible trade-off
    if func.attr == "result" and ("future" in receiver or "fut" in receiver):
        return "untimed Future.result() can wait forever on a lost worker"
    if func.attr == "acquire" and any(
        token in receiver for token in ("lock", "sem", "cond")
    ):
        return "untimed lock acquire can deadlock the dispatch loop"
    if func.attr == "get" and "queue" in receiver:
        return "untimed queue.get() parks the loop until a producer appears"
    if func.attr == "wait" and any(
        token in receiver for token in ("event", "lock", "cond", "barrier")
    ):
        return "untimed wait() parks the loop thread"
    return None


class _Search:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.findings: List[Finding] = []
        self._reported: set = set()

    def roots(self) -> List[Tuple[FunctionInfo, str]]:
        found: List[Tuple[FunctionInfo, str]] = []
        source_classes = set(self.graph.subclasses_of("EventSource"))
        for info in self.graph.functions.values():
            qualname = info.qualname
            if any(
                qualname == root or qualname.endswith("." + root)
                for root in _NAMED_ROOTS
            ):
                found.append((info, "scheduler dispatch machinery"))
            elif info.cls in source_classes and qualname.split(".")[-1] in _SOURCE_METHODS:
                found.append((info, f"EventSource hook {qualname}"))
            elif info.ownership == "loop_only":
                found.append((info, f"@loop_only function {qualname}"))
        return found

    def run(self) -> None:
        # one shared reachability sweep: a function is scanned once, with
        # the first root that reached it named in the report
        paths: Dict[Tuple[str, str], List[str]] = {}
        queue: List[FunctionInfo] = []
        for root, reason in self.roots():
            if root.key in paths:
                continue
            paths[root.key] = [f"{root.qualname} ({reason})"]
            queue.append(root)
        while queue:
            current = queue.pop(0)
            self._scan(current, paths[current.key])
            for call in calls_in(current.node):
                callee = self.graph.resolve(current, call.func)
                if callee is None or callee.key in paths:
                    continue
                paths[callee.key] = paths[current.key] + [callee.qualname]
                queue.append(callee)

    def _scan(self, info: FunctionInfo, path: List[str]) -> None:
        for call in calls_in(info.node):
            reason = _blocking_reason(call)
            if reason is None:
                continue
            key = (info.module.path, call.lineno)
            if key in self._reported:
                continue
            self._reported.add(key)
            self.findings.append(
                Finding(
                    CHECKER_ID,
                    info.module.path,
                    call.lineno,
                    f"blocking call on the event-loop thread: {reason}",
                    function=info.qualname,
                    detail="reached via: " + " -> ".join(path),
                )
            )


def check(modules) -> List[Finding]:
    graph = CallGraph.build(modules)
    search = _Search(graph)
    search.run()
    return search.findings
