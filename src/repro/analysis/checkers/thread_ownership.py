"""Checker: foreign threads must not walk into ``@loop_only`` code.

The scheduler subsystem (PR 4) has a single-ownership rule: mutable
scheduler/stream state is touched only from the event-loop thread.
Foreign threads — executor done-callbacks, ``threading.Thread`` targets,
pool children — are allowed exactly two crossings into the loop:
``scheduler.wake()`` (itself just ``loop.call_soon_threadsafe``) and the
``PushablePort`` ingress, which enqueues under a lock and wakes.

:mod:`repro.analysis.annotations` makes the rule declarative:
``@loop_only`` marks loop-owned functions, ``@any_thread`` marks the
sanctioned crossing points.  This checker then walks the call graph from
every **thread entry point**:

* ``threading.Thread(target=fn)`` targets,
* ``future.add_done_callback(fn)`` callbacks (run on executor threads),
* ``loop.call_soon_threadsafe(fn)`` *callers'* arguments are exempt — that
  is the sanctioned crossing itself,
* ``executor.submit(fn, ...)`` child entry points,
* every ``@any_thread`` function (declared foreign-thread-safe),

and reports any path that reaches a ``@loop_only`` function without
passing through a crossing call (``wake`` / ``call_soon_threadsafe``).
Unresolvable calls produce no edge (see :mod:`repro.analysis.callgraph`),
so this checker under-approximates rather than guesses.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..callgraph import CallGraph, FunctionInfo, calls_in
from ..findings import Finding

CHECKER_ID = "thread-ownership"

#: call names that hand work *to* the loop; traversal stops at them
CROSSING_CALLS = {"wake", "call_soon_threadsafe"}


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _spawn_targets(call: ast.Call) -> Tuple[str, List[ast.expr]]:
    """If *call* installs a callable on a foreign thread, return
    ``(reason, [callable exprs])``; otherwise ``("", [])``."""
    name = _call_name(call.func)
    if name == "Thread":
        for keyword in call.keywords:
            if keyword.arg == "target":
                return ("threading.Thread target", [keyword.value])
        return ("", [])
    if name == "add_done_callback" and call.args:
        return ("executor done-callback", [call.args[0]])
    if name == "submit" and call.args:
        return ("pool child entry point", [call.args[0]])
    return ("", [])


def _callables_in(expr: ast.expr) -> List[ast.expr]:
    """The directly-invokable pieces of a callback expression.

    A lambda target is looked *through*: the calls its body makes are the
    functions that will really run on the foreign thread.
    """
    if isinstance(expr, ast.Lambda):
        return [
            call.func
            for call in ast.walk(expr.body)
            if isinstance(call, ast.Call)
        ]
    return [expr]


class _Search:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.findings: List[Finding] = []
        self._reported: set = set()

    def roots(self) -> List[Tuple[FunctionInfo, str, Optional[FunctionInfo]]]:
        """(entry function, why it runs on a foreign thread, installer)."""
        found: List[Tuple[FunctionInfo, str, Optional[FunctionInfo]]] = []
        seen: set = set()
        for info in self.graph.functions.values():
            if info.ownership == "any_thread":
                if info.key not in seen:
                    seen.add(info.key)
                    found.append((info, "declared @any_thread", None))
        for caller in list(self.graph.functions.values()):
            for call in calls_in(caller.node):
                reason, exprs = _spawn_targets(call)
                if not reason:
                    continue
                for expr in exprs:
                    for func_expr in _callables_in(expr):
                        target = self.graph.resolve(caller, func_expr)
                        if target is None or target.key in seen:
                            continue
                        seen.add(target.key)
                        found.append((target, reason, caller))
        return found

    def run(self) -> None:
        for root, reason, installer in self.roots():
            self._walk(root, reason, installer)

    def _walk(
        self,
        root: FunctionInfo,
        reason: str,
        installer: Optional[FunctionInfo],
    ) -> None:
        if root.ownership == "loop_only":
            anchor = installer if installer is not None else root
            self._report(
                root,
                root,
                anchor,
                getattr(root.node, "lineno", 1),
                reason,
                [root.qualname],
            )
            return
        # BFS; remember one path per visited function for the report
        paths: Dict[Tuple[str, str], List[str]] = {root.key: [root.qualname]}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for call in calls_in(current.node):
                if _call_name(call.func) in CROSSING_CALLS:
                    continue  # sanctioned hand-off to the loop thread
                callee = self.graph.resolve(current, call.func)
                if callee is None:
                    continue
                if callee.ownership == "loop_only":
                    self._report(
                        root,
                        callee,
                        current,
                        call.lineno,
                        reason,
                        paths[current.key] + [callee.qualname],
                    )
                    continue
                if callee.key in paths:
                    continue
                paths[callee.key] = paths[current.key] + [callee.qualname]
                queue.append(callee)

    def _report(
        self,
        root: FunctionInfo,
        callee: FunctionInfo,
        site: FunctionInfo,
        line: int,
        reason: str,
        path: List[str],
    ) -> None:
        key = (root.key, callee.key)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Finding(
                CHECKER_ID,
                site.module.path,
                line,
                f"@loop_only function {callee.qualname!r} is reachable from "
                f"thread entry point {root.qualname!r} ({reason}) without "
                f"going through scheduler.wake() or call_soon_threadsafe()",
                function=site.qualname,
                detail="call path: " + " -> ".join(path),
            )
        )


def check(modules) -> List[Finding]:
    graph = CallGraph.build(modules)
    search = _Search(graph)
    search.run()
    return search.findings
