"""Checker: acquired resources are released (or handed off) on every exit.

The shm transport's correctness rests on the slot-ownership protocol:
every ``ShmRing.acquire()`` is balanced by exactly one ``release`` — on
delivery, cancellation, crash *and* close.  PR 5 property-tested that
dynamically; this checker enforces the static shape that makes it true:

* a variable bound to ``<ring>.acquire()`` must, on every ``return`` or
  fall-through exit, have been **released** (``release``/``release_all``)
  or have **escaped** — appended to a slots list, packed into a control
  entry, stored on an object, returned — i.e. ownership visibly moved to
  another holder;
* the same discipline for ``shared_memory.SharedMemory(...)`` handles
  (``close``/``unlink`` or escape) and ``ProcessPoolExecutor(...)``
  handles (``shutdown`` or escape);
* an acquire expression whose result is *discarded* is flagged outright —
  there is no way to ever release it.

What counts as an escape is deliberately conservative — any use that can
move ownership (argument to a foreign call, element of a container,
assignment value, return value) stops the tracking, so a missed leak is
possible but a false alarm is not.  Pure *uses* — ``slot is None`` tests,
arithmetic, and calls on the acquiring object itself
(``ring.write(slot, data)``) — keep the obligation alive.  ``if slot is
None:`` narrowing understands the non-blocking acquire (``None`` means
the ring was exhausted: nothing to release on that branch), and a release
inside ``try/finally`` covers every exit that passes through it.  Raising
paths are exempt, consistent with the other path checkers.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Tuple

from ..findings import Finding
from ..flow import StructuredWalker

CHECKER_ID = "resource-pairing"

#: method names that end a tracked resource's lifetime when it is the
#: receiver (``handle.close()``) or an argument (``ring.release(slot)``)
RELEASE_METHODS = {"release", "release_all", "close", "unlink", "shutdown"}

#: expression forms whose operands are *uses*, never ownership transfers
_USE_CONTEXTS = (ast.Compare, ast.BoolOp, ast.UnaryOp, ast.BinOp)


def _receiver_text(node: ast.expr) -> str:
    """A dotted rendering of a call receiver, for cheap matching."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse handles all 3.10+ exprs
        return ""


def _acquire_kind(call: ast.Call) -> Optional[Tuple[str, str]]:
    """Classify *call* as an acquire site: ``(kind, receiver_text)`` or None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr == "acquire" and not call.args and not call.keywords:
            receiver = _receiver_text(func.value)
            if "ring" in receiver.lower():
                return ("slot", receiver)
        if func.attr == "SharedMemory":
            return ("shm", "")
        if func.attr == "ProcessPoolExecutor":
            return ("executor", "")
    if isinstance(func, ast.Name):
        if func.id == "SharedMemory":
            return ("shm", "")
        if func.id == "ProcessPoolExecutor":
            return ("executor", "")
    return None


# Abstract state: a frozenset of (var_name, acquire_line, kind, receiver)
# tuples still *held*.  Released or escaped resources leave the set.
_State = FrozenSet[Tuple[str, int, str, str]]

_DESCRIPTIONS = {
    "slot": "shm ring slot",
    "shm": "shared-memory handle",
    "executor": "process-pool executor",
}


class _ResourceWalker(StructuredWalker):
    def __init__(self, path: str, qualname: str) -> None:
        self.path = path
        self.qualname = qualname
        self.findings: List[Finding] = []
        self._reported: set = set()

    # ------------------------------------------------------------- effects
    def eval_expr(self, state: _State, expr: ast.expr) -> _State:
        return self._eval(state, expr, escapes=True)

    def _eval(self, state: _State, node: ast.expr, escapes: bool) -> _State:
        if isinstance(node, ast.Name):
            if escapes:
                return self._drop_var(state, node.id)
            return state
        if isinstance(node, ast.Call):
            return self._eval_call(state, node)
        if isinstance(node, _USE_CONTEXTS):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    state = self._eval(state, child, escapes=False)
            return state
        if isinstance(node, ast.IfExp):
            state = self._eval(state, node.test, escapes=False)
            state = self._eval(state, node.body, escapes)
            return self._eval(state, node.orelse, escapes)
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Slice)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    state = self._eval(state, child, escapes=False)
            return state
        if isinstance(node, (ast.Lambda, ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
            return self.on_nested_def(state, node)
        # containers, starred, f-strings, yields, everything else: operand
        # uses may transfer ownership
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                state = self._eval(state, child, escapes=True)
        return state

    def _eval_call(self, state: _State, call: ast.Call) -> _State:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = _receiver_text(func.value)
            if func.attr in RELEASE_METHODS:
                # ``handle.close()`` — the receiver is released;
                # ``ring.release(slot)`` — the arguments are released.
                state = self._drop_var(state, receiver)
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    for name_node in ast.walk(arg):
                        if isinstance(name_node, ast.Name):
                            state = self._drop_var(state, name_node.id)
                return state
            held_receivers = {entry[3] for entry in state}
            state = self._eval(state, func.value, escapes=False)
            arg_escapes = receiver not in held_receivers
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                state = self._eval(state, arg, escapes=arg_escapes)
            return state
        state = self._eval(state, func, escapes=False)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            state = self._eval(state, arg, escapes=True)
        return state

    def eval_assign(self, state: _State, node: ast.stmt) -> _State:
        value = getattr(node, "value", None)
        targets = getattr(node, "targets", None) or (
            [node.target] if getattr(node, "target", None) is not None else []
        )
        acquire = self._acquire_in(value) if value is not None else None
        if (
            acquire is not None
            and len(targets) == 1
            and isinstance(targets[0], ast.Name)
        ):
            kind, receiver = acquire
            var = targets[0].id
            state = self._drop_var(state, var)  # rebind loses the old handle
            # evaluate the rest of the RHS (receiver reads are uses)
            state = self._eval(state, value, escapes=False)
            return frozenset(state | {(var, node.lineno, kind, receiver)})
        if value is not None:
            state = self.eval_expr(state, value)
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name) and isinstance(
                    name_node.ctx, ast.Store
                ):
                    state = self._drop_var(state, name_node.id)
        return state

    def _acquire_in(self, value: ast.expr) -> Optional[Tuple[str, str]]:
        """The acquire classification of *value* (looking through IfExp)."""
        if isinstance(value, ast.Call):
            return _acquire_kind(value)
        if isinstance(value, ast.IfExp):
            for branch in (value.body, value.orelse):
                if isinstance(branch, ast.Call):
                    kind = _acquire_kind(branch)
                    if kind is not None:
                        return kind
        return None

    def narrow(self, state: _State, test: ast.expr, branch: bool) -> Optional[_State]:
        base = super().narrow(state, test, branch)
        if base is None:
            return None
        state = base
        var, none_when_true = self._none_test(test)
        if var is not None and branch == none_when_true:
            # in the ``is None`` branch nothing was acquired for this var
            return frozenset(entry for entry in state if entry[0] != var)
        return state

    @staticmethod
    def _none_test(test: ast.expr) -> Tuple[Optional[str], bool]:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.left, ast.Name)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            if isinstance(test.ops[0], ast.Is):
                return test.left.id, True
            if isinstance(test.ops[0], ast.IsNot):
                return test.left.id, False
        return None, False

    def at_exit(self, state: _State, node: object, kind: str) -> None:
        line = getattr(node, "lineno", 1) if node is not None else 1
        for var, acquire_line, resource_kind, _receiver in state:
            self._report(
                (var, acquire_line),
                line,
                f"{_DESCRIPTIONS[resource_kind]} {var!r} acquired at line "
                f"{acquire_line} is not released or handed off on this exit "
                f"path (use try/finally or release on every path)",
            )

    def on_nested_def(self, state: _State, node: ast.AST) -> _State:
        # a closure capturing the variable may release it later: escape
        captured = {
            child.id for child in ast.walk(node) if isinstance(child, ast.Name)
        }
        return frozenset(entry for entry in state if entry[0] not in captured)

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _drop_var(state: _State, var: str) -> _State:
        return frozenset(entry for entry in state if entry[0] != var)

    def _report(self, key, line: int, message: str) -> None:
        if key in self._reported:
            return  # loop unrolling and state forks revisit the same leak
        self._reported.add(key)
        self.findings.append(
            Finding(CHECKER_ID, self.path, line, message, function=self.qualname)
        )


class _DiscardVisitor(ast.NodeVisitor):
    """Flag acquire calls whose result is thrown away (never releasable)."""

    def __init__(self, path: str, qualname: str) -> None:
        self.path = path
        self.qualname = qualname
        self.findings: List[Finding] = []

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call):
            kind = _acquire_kind(node.value)
            if kind is not None:
                self.findings.append(
                    Finding(
                        CHECKER_ID,
                        self.path,
                        node.lineno,
                        f"{_DESCRIPTIONS[kind[0]]} acquired and immediately "
                        f"discarded: the handle can never be released",
                        function=self.qualname,
                    )
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None  # nested functions are indexed and checked separately

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef


def check(modules) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for qualname, fn in module.functions.items():
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _ResourceWalker(module.path, qualname)
            walker.run(fn.body, frozenset())
            findings.extend(walker.findings)
            discard = _DiscardVisitor(module.path, qualname)
            for stmt in fn.body:
                discard.visit(stmt)
            findings.extend(discard.findings)
    return findings
