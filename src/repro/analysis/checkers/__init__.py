"""The four ``pando-lint`` checkers.

Each module exposes ``CHECKER_ID`` and a ``check(modules) -> List[Finding]``
entry point over the parsed module set (see
:class:`repro.analysis.runner.AnalyzedModule`).
"""

from __future__ import annotations

from . import blocking_call, callback_discipline, resource_pairing, thread_ownership

#: Registry in documentation order; the runner and the CLI iterate this.
ALL_CHECKERS = (
    callback_discipline,
    resource_pairing,
    thread_ownership,
    blocking_call,
)

CHECKER_IDS = tuple(checker.CHECKER_ID for checker in ALL_CHECKERS)

__all__ = ["ALL_CHECKERS", "CHECKER_IDS"]
