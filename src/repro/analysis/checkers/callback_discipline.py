"""Checker: every pull-stream callback is answered exactly once per path.

The ``read(end, cb)`` contract (see :mod:`repro.pullstream.protocol`)
requires exactly one answer per request.  The implementation bugs PR 1–5
kept finding were of two shapes: an early ``return`` on some error branch
that never answered ``cb`` (the caller waits forever — the stalled-lender
class of bug), and a path that answered twice (the double-delivery class
``ProtocolChecker`` catches at runtime).

For every function with a parameter named ``cb`` or ``callback`` this
checker walks all structured paths and verifies that each ``return`` or
fall-through exit either

* invoked the callback at least once (and at most once), or
* **handed it off**: stored it (``self._waiting = cb``), passed it to
  another call (``self._upstream(end, cb)``), captured it in a nested
  function or lambda (the trampoline idiom), or returned it.

Raising paths are exempt — an exception transfers the obligation to the
caller, and flagging them would drown the signal (validation guards raise
before any async work starts).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional

from ..findings import Finding
from ..flow import StructuredWalker

CHECKER_ID = "callback-discipline"

#: Parameter names treated as pull-stream answer callbacks.
CALLBACK_PARAMS = ("cb", "callback")


@dataclass(frozen=True)
class _State:
    calls: int  # 0, 1 or 2 ("two or more")
    handed: bool


class _CallbackWalker(StructuredWalker):
    def __init__(self, cb_name: str, path: str, qualname: str) -> None:
        self.cb_name = cb_name
        self.path = path
        self.qualname = qualname
        self.findings: List[Finding] = []
        self._reported_lines: set = set()

    # ------------------------------------------------------------- effects
    def eval_expr(self, state: _State, expr: ast.expr) -> _State:
        for node in self._eval_order(expr):
            if isinstance(node, ast.Call) and self._is_cb(node.func):
                if state.calls >= 1:
                    self._report(
                        node.lineno,
                        f"callback {self.cb_name!r} may be invoked a second "
                        f"time on this path",
                    )
                state = _State(min(2, state.calls + 1), state.handed)
            elif self._is_cb(node):
                # Any non-invocation use — argument, assignment value,
                # container element, attribute access — is a hand-off.
                state = _State(state.calls, True)
            elif isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._references_cb(node):
                    state = _State(state.calls, True)
        return state

    def _eval_order(self, expr: ast.expr):
        """The expression's nodes, outer first, skipping nested function bodies
        (they execute later; a mere reference is a hand-off handled above)."""
        stack = [expr]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call) and self._is_cb(node.func):
                # recurse into the arguments but not the func name itself
                stack.extend(node.args)
                stack.extend(kw.value for kw in node.keywords)
                continue
            # walk ALL children, not just ast.expr: keyword arguments and
            # comprehension clauses wrap the expressions that matter
            # (``drain(done=callback)`` is a hand-off)
            stack.extend(ast.iter_child_nodes(node))

    def eval_assign(self, state: _State, node: ast.stmt) -> _State:
        value = getattr(node, "value", None)
        if value is not None:
            state = self.eval_expr(state, value)
        # an assignment *target* mentioning cb rebinds it; stop tracking by
        # treating the rebind as a hand-off of the old value
        for target in getattr(node, "targets", None) or [getattr(node, "target", None)]:
            if target is not None and self._target_rebinds_cb(target):
                state = _State(state.calls, True)
        return state

    def on_nested_def(self, state: _State, node: ast.AST) -> _State:
        if self._references_cb(node):
            return _State(state.calls, True)
        return state

    def at_exit(self, state: _State, node: object, kind: str) -> None:
        if state.calls == 0 and not state.handed:
            line = getattr(node, "lineno", 1) if node is not None else 1
            how = "returns" if kind == "return" else "falls off the end"
            self._report(
                line,
                f"a path {how} without invoking or handing off "
                f"{self.cb_name!r} (the asker waits forever)",
            )

    # ------------------------------------------------------------- helpers
    def _is_cb(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == self.cb_name

    def _references_cb(self, node: ast.AST) -> bool:
        return any(
            isinstance(child, ast.Name) and child.id == self.cb_name
            for child in ast.walk(node)
        )

    def _target_rebinds_cb(self, target: ast.AST) -> bool:
        if isinstance(target, ast.Name):
            return target.id == self.cb_name
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(self._target_rebinds_cb(element) for element in target.elts)
        return False

    def _report(self, line: int, message: str) -> None:
        if line in self._reported_lines:
            return  # loop unrolling walks statements twice
        self._reported_lines.add(line)
        self.findings.append(
            Finding(CHECKER_ID, self.path, line, message, function=self.qualname)
        )


def _callback_param(fn: ast.AST) -> Optional[str]:
    args = fn.args
    names = [arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs]
    defaults = {}
    positional = args.posonlyargs + args.args
    for arg, default in zip(reversed(positional), reversed(args.defaults)):
        defaults[arg.arg] = default
    for keyword_arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            defaults[keyword_arg.arg] = default
    for name in names:
        if name in CALLBACK_PARAMS:
            # An optional callback (``cb=None``) is legitimately droppable.
            if name in defaults:
                return None
            return name
    return None


def check(modules) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        for qualname, fn in module.functions.items():
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cb_name = _callback_param(fn)
            if cb_name is None:
                continue
            walker = _CallbackWalker(cb_name, module.path, qualname)
            walker.run(fn.body, _State(0, False))
            findings.extend(walker.findings)
    return findings
