"""The ``pando`` command-line tool (Unix-pipeline interface).

Mirrors the paper's Figure 3::

    $ ./generate-angles.js | pando render.js --stdin | ./gif-encoder.js
    Serving volunteer code at http://10.10.14.119:5000

The Python port reads input values from the standard input (one JSON value or
raw string per line) or from command-line arguments, applies the processing
function exposed by a Pando module file (``exports['/pando/1.0.0']`` or a
``pando`` function) or by one of the built-in applications, and writes one
JSON result per line to the standard output.  Status messages (the volunteer
URL, worker joins) go to standard error, exactly as in the paper, so they do
not pollute the pipeline.

Workers are in-process (``--workers N`` of them) or, with ``--backend pool``,
a pool of ``N`` OS processes executing the function in parallel; a real
browser fleet is replaced by the simulation API (see ``repro.sim.scenario``)
which the ``--simulate`` flag exposes for convenience.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Iterable, Iterator, List, Optional

from ..apps import registry as app_registry
from ..core.distributed_map import DistributedMap
from ..master.bundler import Bundle, bundle_function, bundle_module
from ..pullstream import collect, from_iterable, pull
from ..sim.scenario import DeploymentScenario, ScenarioConfig

__all__ = ["main", "build_parser", "run_pipeline"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pando",
        description=(
            "Parallelize the application of a function on a stream of values "
            "(Python reproduction of the Pando volunteer-computing tool)."
        ),
    )
    parser.add_argument(
        "module",
        nargs="?",
        help="Pando module file exposing the processing function "
        "(exports['/pando/1.0.0'] or a 'pando' function)",
    )
    parser.add_argument(
        "items", nargs="*", help="input values (when --stdin is not used)"
    )
    parser.add_argument(
        "--app",
        choices=sorted(app_registry.names()),
        help="use a built-in application instead of a module file",
    )
    parser.add_argument(
        "--stdin", action="store_true", help="read input values from standard input"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="number of workers: in-process workers with --backend local, "
        "pool processes with --backend pool",
    )
    parser.add_argument(
        "--backend",
        choices=["local", "pool"],
        default="local",
        help="execution backend: 'local' runs the function synchronously on "
        "in-process workers, 'pool' dispatches it to a pool of OS processes "
        "(real parallelism for CPU-bound functions)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=2,
        dest="batch_size",
        help="values kept in flight per worker (Limiter window); with "
        "--backend pool, also the number of values coalesced per frame",
    )
    parser.add_argument(
        "--pool-transport",
        choices=["pipe", "shm"],
        default="pipe",
        dest="pool_transport",
        help="with --backend pool: how frame payloads reach the worker "
        "processes — 'pipe' pickles them through the executor pipe, 'shm' "
        "moves large bytes/array payloads through a shared-memory slot ring "
        "(control records only on the pipe; oversized payloads fall back to "
        "the pipe transparently)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of master shards (multi-master): the input is "
        "round-robin split across this many independent lenders and merged "
        "back in input order; with --backend pool, one pool is attached per "
        "shard and they pump concurrently",
    )
    parser.add_argument(
        "--unordered",
        action="store_true",
        help="release results in completion order instead of input order; "
        "with --shards > 1, shard outputs are merged in completion order "
        "(first answer wins across shards)",
    )
    parser.add_argument(
        "--split-buffer",
        type=int,
        default=None,
        dest="split_buffer",
        help="with --shards > 1: cap the splitter's per-shard input buffer "
        "at this many values, back-pressuring the faster shards when one "
        "shard stalls (default: unbounded)",
    )
    parser.add_argument(
        "--scheduler",
        choices=["thread", "asyncio"],
        default="thread",
        help="who pumps non-blocking pool results: 'thread' waits on the "
        "pools' head futures directly, 'asyncio' registers every pool with "
        "one event loop so multiple pools compute concurrently even without "
        "--shards (and a find-style abort cancels their queued tasks "
        "immediately)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="with --app and no stdin: number of generated inputs to process",
    )
    parser.add_argument(
        "--simulate",
        choices=["lan", "vpn", "wan"],
        default=None,
        help="run on the simulated deployment of the given setting instead of "
        "in-process workers",
    )
    parser.add_argument(
        "--json", action="store_true", help="parse each stdin line as JSON"
    )
    parser.add_argument(
        "--port", type=int, default=5000, help="port announced in the startup message"
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        dest="metrics_port",
        help="serve the Prometheus-style metrics endpoint on this port while "
        "the pipeline runs (0 picks a free port; the chosen URL is announced "
        "on standard error)",
    )
    parser.add_argument(
        "--stats-json",
        action="store_true",
        dest="stats_json",
        help="after the run, write the structured metrics snapshot (every "
        "registered family, JSON) to standard error",
    )
    return parser


def _pool_sizes(workers: int, pools: int) -> List[int]:
    """Split *workers* processes across *pools* pools, remainder first.

    Every pool gets at least one process (a shard cannot be served by an
    empty pool), so the total is ``max(workers, pools)`` — never silently
    less than requested.
    """
    workers = max(1, workers)
    base, remainder = divmod(workers, pools)
    return [max(1, base + (1 if index < remainder else 0)) for index in range(pools)]


def _read_stdin(as_json: bool) -> Iterator[Any]:
    for line in sys.stdin:
        line = line.rstrip("\n")
        if not line:
            continue
        yield json.loads(line) if as_json else line


def _emit(value: Any, stream) -> None:
    try:
        stream.write(json.dumps(value, default=repr) + "\n")
    except TypeError:
        stream.write(json.dumps(repr(value)) + "\n")
    stream.flush()


def run_pipeline(
    bundle: Bundle,
    inputs: Iterable[Any],
    workers: int,
    batch_size: int,
    ordered: bool = True,
    backend: str = "local",
    fn_ref: Any = None,
    shards: int = 1,
    split_buffer: Optional[int] = None,
    scheduler: str = "thread",
    pool_transport: str = "pipe",
    metrics_port: Optional[int] = None,
    stats_out: Any = None,
    status_out: Any = None,
) -> List[Any]:
    """Run the distributed map and return the results.

    ``backend="local"`` attaches *workers* in-process workers applying the
    bundle's function synchronously; ``backend="pool"`` attaches one process
    pool of *workers* OS processes executing *fn_ref* (any reference accepted
    by :func:`repro.pool.tasks.resolve_callable`, defaulting to the bundle's
    function, which must then be picklable).

    With ``shards > 1`` the master is sharded: the pool backend attaches one
    pool per shard (splitting *workers* processes between them, remainder
    first, at least one each) and drives them concurrently; the local
    backend attaches at least one worker per shard so every shard is served.
    ``ordered=False`` on a sharded run merges the shard outputs in
    completion order, and *split_buffer* caps the splitter's per-shard
    buffering (see :class:`~repro.core.distributed_map.DistributedMap`).

    ``scheduler="asyncio"`` drives the pools through one
    :class:`~repro.sched.EventLoopScheduler` instead of the thread driver —
    the configuration where several pools compute concurrently on a single
    unsharded master.  ``pool_transport="shm"`` moves large payloads through
    each pool's shared-memory slot ring instead of the executor pipe.

    *metrics_port* serves the map's Prometheus-style scrape endpoint on
    that port for the duration of the run (0 picks a free port); the
    endpoint URL is announced on *status_out* when given.  *stats_out* (a
    writable text stream) receives the structured metrics snapshot — every
    registered family as JSON — after the run completes.
    """
    dmap = DistributedMap(
        ordered=ordered,
        batch_size=batch_size,
        shards=shards,
        split_buffer=split_buffer,
        scheduler="asyncio" if scheduler == "asyncio" else None,
    )
    if metrics_port is not None:
        endpoint = dmap.serve_metrics(port=metrics_port)
        if status_out is not None:
            status_out.write(f"Serving metrics at {endpoint.url}\n")
    sink = pull(from_iterable(inputs), dmap, collect())
    try:
        if backend == "pool":
            for processes in _pool_sizes(workers, max(1, shards)):
                dmap.add_process_pool(
                    fn_ref if fn_ref is not None else bundle.function,
                    processes=processes,
                    batch_size=batch_size,
                    transport=pool_transport,
                )
        else:
            for _ in range(max(1, workers, shards)):
                dmap.add_local_worker(bundle.apply)
        if backend == "pool":
            # Only pools need pumping.  A local-backend run that has not
            # completed (every worker crash-stopped) is the ordinary
            # "master waits for more volunteers" state, which sink.result()
            # below reports accurately — drive()'s pool-stall diagnostic
            # would misattribute it to pools/shards that do not exist.
            dmap.drive(sink)
        results = sink.result()
        if stats_out is not None:
            json.dump(dmap.obs.registry.as_dict(), stats_out, default=repr)
            stats_out.write("\n")
        return results
    finally:
        dmap.close()


def _run_simulated(app, setting: str, count: Optional[int], stderr) -> List[Any]:
    config = ScenarioConfig(application=app, setting=setting, duration=30.0)
    scenario = DeploymentScenario(config)
    inputs = list(app.generate_inputs(count if count is not None else 32))
    stderr.write(f"Simulating a {setting.upper()} deployment with "
                 f"{len(scenario.volunteers)} volunteer device(s)\n")
    result = scenario.run_to_completion(inputs)
    for line in result.log:
        stderr.write(line + "\n")
    return result.outputs or []


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``pando`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # ``pando lint ...`` delegates to the static analysis pass; the
        # heavy pipeline options below do not apply to it
        from ..analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "volunteer":
        # ``pando volunteer ws://host:port`` joins a live master as a real
        # websocket volunteer; it has its own option set
        from ..worker.volunteer import main as volunteer_main

        return volunteer_main(argv[1:])
    if argv and argv[0] == "simulate":
        # ``pando simulate --matrix ...`` runs the scenario-matrix cells in
        # virtual time and verifies their invariants
        from ..sim.matrix import main as matrix_main

        return matrix_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    stderr = sys.stderr

    app = None
    fn_ref: Any = None
    if args.app is not None:
        app = app_registry.create(args.app)
        bundle = bundle_function(app.process, name=args.app, application=app)
        # bound methods of the registered applications are picklable
        fn_ref = app.process
    elif args.module is not None:
        bundle = bundle_module(args.module)
        # re-bundled by dotted reference inside each worker process
        fn_ref = ("file", os.path.abspath(args.module))
    else:
        parser.error("either a module file or --app is required")
        return 2  # pragma: no cover - parser.error raises

    if args.shards < 1:
        parser.error("--shards must be >= 1")
        return 2  # pragma: no cover - parser.error raises
    if args.split_buffer is not None and args.split_buffer < 1:
        parser.error("--split-buffer must be >= 1")
        return 2  # pragma: no cover - parser.error raises
    if args.split_buffer is not None and args.shards == 1:
        parser.error("--split-buffer requires --shards > 1")
        return 2  # pragma: no cover - parser.error raises
    if args.shards > 1 and args.simulate is not None:
        parser.error("--simulate does not support --shards (simulated "
                     "deployments run a single master)")
        return 2  # pragma: no cover - parser.error raises
    if args.scheduler == "asyncio" and args.simulate is not None:
        parser.error("--simulate does not support --scheduler asyncio "
                     "(simulated deployments spin their own virtual-time loop)")
        return 2  # pragma: no cover - parser.error raises
    if args.pool_transport != "pipe" and args.backend != "pool":
        parser.error("--pool-transport requires --backend pool (only the "
                     "process-pool backend moves payloads between processes)")
        return 2  # pragma: no cover - parser.error raises

    stderr.write(f"Serving volunteer code at http://127.0.0.1:{args.port}\n")

    if args.simulate is not None:
        if app is None:
            parser.error("--simulate requires --app (simulated devices need a cost model)")
            return 2  # pragma: no cover
        results = _run_simulated(app, args.simulate, args.count, stderr)
        for result in results:
            _emit(result, sys.stdout)
        return 0

    if args.stdin:
        inputs: Iterable[Any] = _read_stdin(args.json)
    elif args.items:
        inputs = list(args.items)
    elif app is not None:
        inputs = app.generate_inputs(args.count if args.count is not None else 16)
    else:
        inputs = []

    results = run_pipeline(
        bundle,
        inputs,
        workers=args.workers,
        batch_size=args.batch_size,
        ordered=not args.unordered,
        backend=args.backend,
        fn_ref=fn_ref,
        shards=args.shards,
        split_buffer=args.split_buffer,
        scheduler=args.scheduler,
        pool_transport=args.pool_transport,
        metrics_port=args.metrics_port,
        stats_out=stderr if args.stats_json else None,
        status_out=stderr,
    )
    for result in results:
        _emit(result, sys.stdout)
    stderr.write(f"Processed {len(results)} value(s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
