"""Command-line interface: the ``pando`` tool and its pipeline companions."""

from .pando_cli import build_parser, main, run_pipeline
from .tools import generate_angles_main, gif_encoder_main

__all__ = [
    "build_parser",
    "main",
    "run_pipeline",
    "generate_angles_main",
    "gif_encoder_main",
]
