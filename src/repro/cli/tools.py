"""Companion Unix tools of the paper's Figure 3 pipeline.

``generate-angles.js`` and ``gif-encoder.js`` become the console scripts
``pando-generate-angles`` (emit camera angles, one per line) and
``pando-gif-encoder`` (read rendered frames as JSON lines, verify ordering,
assemble the animation and print a summary).  They demonstrate that the input
generation and post-processing need not live inside Pando (design principle
DP5: composable and modular).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..apps.raytracer import assemble_animation

__all__ = ["generate_angles_main", "gif_encoder_main"]


def generate_angles_main(argv: Optional[List[str]] = None) -> int:
    """Print camera angles for a full rotation, one per line."""
    parser = argparse.ArgumentParser(
        prog="pando-generate-angles",
        description="Generate camera angles for the raytracing animation.",
    )
    parser.add_argument("--frames", type=int, default=24, help="number of frames")
    parser.add_argument(
        "--degrees", type=float, default=360.0, help="total rotation in degrees"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit JSON objects ({'angle': ..., 'frame': ...}) instead of bare numbers",
    )
    args = parser.parse_args(argv)
    for index in range(args.frames):
        angle = args.degrees * index / args.frames
        if args.json:
            sys.stdout.write(json.dumps({"angle": angle, "frame": index}) + "\n")
        else:
            sys.stdout.write(f"{angle}\n")
    return 0


def gif_encoder_main(argv: Optional[List[str]] = None) -> int:
    """Read rendered frames (JSON lines) from stdin and assemble the animation."""
    parser = argparse.ArgumentParser(
        prog="pando-gif-encoder",
        description="Assemble rendered frames into an animation summary.",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="optional path to write the assembled animation summary (JSON)",
    )
    args = parser.parse_args(argv)

    frames = []
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        frame = json.loads(line)
        if frame.get("pixels") is None:
            continue
        frames.append(frame)
    summary = assemble_animation(frames) if frames else {"frames": 0, "bytes": 0, "angles": []}
    encoded = json.dumps(summary)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(encoded + "\n")
    sys.stdout.write(encoded + "\n")
    sys.stderr.write(f"Assembled {summary['frames']} frame(s)\n")
    return 0
