"""Wire messages exchanged over simulated channels."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .serialization import estimate_size

__all__ = ["Message", "DATA", "HEARTBEAT", "CLOSE", "CONTROL"]

#: Message kinds
DATA = "data"
HEARTBEAT = "heartbeat"
CLOSE = "close"
CONTROL = "control"

_sequence = itertools.count()


@dataclass
class Message:
    """A single frame travelling through a simulated channel.

    ``size_bytes`` is used by the network model to charge transfer time;
    heartbeats and control frames are small and fixed-size.
    """

    kind: str
    payload: Any = None
    sender: str = ""
    size_bytes: int = 0
    seq: int = field(default_factory=lambda: next(_sequence))

    @classmethod
    def data(cls, payload: Any, sender: str = "") -> "Message":
        """Build a data frame, estimating its wire size from the payload."""
        return cls(
            kind=DATA,
            payload=payload,
            sender=sender,
            size_bytes=max(16, estimate_size(payload)),
        )

    @classmethod
    def heartbeat(cls, sender: str = "") -> "Message":
        """Build a heartbeat (ping/pong) frame."""
        return cls(kind=HEARTBEAT, payload=None, sender=sender, size_bytes=8)

    @classmethod
    def close(cls, sender: str = "", reason: Optional[str] = None) -> "Message":
        """Build a graceful close frame."""
        return cls(kind=CLOSE, payload=reason, sender=sender, size_bytes=16)

    @classmethod
    def control(cls, payload: Any, sender: str = "") -> "Message":
        """Build a control frame (signalling, join/leave notifications)."""
        return cls(
            kind=CONTROL,
            payload=payload,
            sender=sender,
            size_bytes=max(16, estimate_size(payload)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Message {self.kind} #{self.seq} from={self.sender!r} {self.size_bytes}B>"
