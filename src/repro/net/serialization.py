"""Serialization helpers mirroring Pando's wire conventions.

The paper's usage example (Figure 2) gzip-compresses the rendered pixels and
base64-encodes them "which simplifies its transmission on the network"; all
other values travel as JSON strings on the WebSocket/WebRTC channel.  The
helpers below reproduce those conventions and, importantly for the simulator,
provide a consistent way to estimate the number of bytes a value occupies on
the wire so that the network model can charge transfer time for it.
"""

from __future__ import annotations

import base64
import gzip
import json
from typing import Any

__all__ = [
    "encode_json",
    "decode_json",
    "encode_binary",
    "decode_binary",
    "estimate_size",
    "Batch",
    "BATCH_FRAME_OVERHEAD",
    "SizedPayload",
    "OOB_MIN_BYTES",
    "oob_pack",
    "oob_unpack",
]


def encode_json(value: Any) -> str:
    """Serialize *value* to a JSON string (compact separators)."""
    return json.dumps(value, separators=(",", ":"), default=_fallback)


def decode_json(data: str) -> Any:
    """Inverse of :func:`encode_json`."""
    return json.loads(data)


def encode_binary(data: bytes) -> str:
    """gzip + base64 encode *data* (paper Figure 2, line 8)."""
    return base64.b64encode(gzip.compress(data)).decode("ascii")


def decode_binary(encoded: str) -> bytes:
    """Inverse of :func:`encode_binary`."""
    return gzip.decompress(base64.b64decode(encoded.encode("ascii")))


#: Fixed per-frame overhead charged for the batch envelope on the wire.
BATCH_FRAME_OVERHEAD = 16


class Batch:
    """A wire frame carrying several consecutive stream values.

    Coalescing ``batch_size`` values into a single DATA frame amortises the
    per-frame dispatch overhead (one scheduler event and one latency charge on
    the simulated channels, one inter-process round trip on the process-pool
    backend).  A ``Batch`` is an explicit marker type — distinct from a plain
    list — so that list-*valued* stream elements are never mistaken for
    framing and flattened by :func:`repro.pullstream.throughs.unbatching`.
    """

    __slots__ = ("values",)

    def __init__(self, values: Any) -> None:
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Batch) and other.values == self.values

    # Mutable value container: defining __eq__ leaves Batch unhashable,
    # which is intended — frames are transient wire envelopes, not keys.

    @property
    def size_bytes(self) -> int:
        """Wire size: the batched payloads plus a fixed envelope overhead."""
        return BATCH_FRAME_OVERHEAD + sum(
            estimate_size(value) for value in self.values
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Batch n={len(self.values)} {self.size_bytes}B>"


class SizedPayload:
    """Wrap a value with an explicit wire size in bytes.

    Applications whose values stand for large binary blobs (e.g. the 168 kB
    Landsat tiles of the image-processing application) wrap them so the
    network model charges a realistic transfer time without the simulator
    having to materialise megabytes of data.
    """

    __slots__ = ("value", "size_bytes")

    def __init__(self, value: Any, size_bytes: int) -> None:
        self.value = value
        self.size_bytes = int(size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SizedPayload {self.size_bytes}B {self.value!r}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SizedPayload)
            and other.value == self.value
            and other.size_bytes == self.size_bytes
        )

    def __hash__(self) -> int:
        return hash((self.size_bytes, repr(self.value)))


def estimate_size(value: Any) -> int:
    """Estimate the wire size of *value* in bytes.

    Order of preference: an explicit :class:`SizedPayload`, a ``size_bytes``
    key of a mapping, a ``size_bytes`` attribute, raw ``bytes`` length, and
    finally the length of the JSON encoding.
    """
    if isinstance(value, (SizedPayload, Batch)):
        return value.size_bytes
    if isinstance(value, dict) and isinstance(value.get("size_bytes"), (int, float)):
        return int(value["size_bytes"])
    size_attr = getattr(value, "size_bytes", None)
    if isinstance(size_attr, (int, float)):
        return int(size_attr)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    try:
        return len(encode_json(value))
    except (TypeError, ValueError):
        return len(repr(value))


# --------------------------------------------------------------------------
# Out-of-band payload protocol (shared-memory data plane).
#
# Large binary stream values — raytraced pixel buffers, image tiles — do not
# have to travel on the same channel as the control records that frame them.
# ``oob_pack`` splits a value into a *tag* naming its wire shape, a flat
# buffer of payload bytes, and the metadata needed to rebuild it; the caller
# moves the buffer over whatever cheap data plane it owns (a
# :class:`~repro.net.shm_ring.ShmRing` slot) and ships only ``(tag, meta)``
# with the control record.  ``oob_unpack`` is the inverse.  Values that have
# no flat byte representation return ``None`` from ``oob_pack`` and stay
# in-band — the graceful-degradation contract every transport relies on.
# --------------------------------------------------------------------------

#: Payloads smaller than this stay in-band by default: below a few hundred
#: bytes the pickled control record is as cheap as the slot bookkeeping.
OOB_MIN_BYTES = 512


def oob_pack(value: Any) -> Any:
    """Split *value* into ``(tag, buffer, meta)`` for out-of-band transport.

    Returns ``None`` when the value has no flat byte representation (it must
    then travel in-band).  Supported shapes:

    * ``bytes`` / ``bytearray`` / ``memoryview`` — tag ``"raw"``, the bytes
      themselves; the metadata records a ``bytearray`` source so the
      receiver rebuilds the same type (a memoryview — unpicklable, so it
      could never cross in-band either — arrives as ``bytes``);
    * C-contiguous numpy arrays — tag ``"nd"``, the array's buffer, and
      ``(dtype_str, shape)`` so the receiver can rebuild the array without a
      pickle round-trip.
    """
    if isinstance(value, bytes):
        return ("raw", value, None)
    if isinstance(value, bytearray):
        return ("raw", value, "bytearray")
    if isinstance(value, memoryview):
        # ``cast`` is restricted to contiguous views; a strided view is
        # materialised instead (it is unpicklable, so falling back in-band
        # is not an option for it anyway).
        if not value.contiguous:
            return ("raw", bytes(value), None)
        if value.ndim != 1 or value.format not in ("B", "b", "c"):
            value = value.cast("B")
        return ("raw", value, None)
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is in the baseline image
        return None
    if (
        isinstance(value, numpy.ndarray)
        and value.ndim >= 1
        and value.flags["C_CONTIGUOUS"]
        and value.dtype.hasobject is False
    ):
        return ("nd", value.data.cast("B"), (value.dtype.str, value.shape))
    return None


def oob_unpack(tag: str, buffer: Any, meta: Any, copy: bool = True) -> Any:
    """Rebuild a value from its out-of-band ``(tag, buffer, meta)`` form.

    With ``copy=False`` the returned value aliases *buffer* where the shape
    allows it (a numpy array viewing a shared-memory slot — the zero-copy
    read path); the caller then guarantees the buffer outlives the value.
    ``copy=True`` materialises an owned copy, which is what a receiver must
    do before releasing the slot the buffer lives in.
    """
    if tag == "raw":
        return bytearray(buffer) if meta == "bytearray" else bytes(buffer)
    if tag == "nd":
        import numpy

        dtype_str, shape = meta
        array = numpy.frombuffer(buffer, dtype=numpy.dtype(dtype_str)).reshape(shape)
        return array.copy() if copy else array
    raise ValueError(f"unknown out-of-band payload tag {tag!r}")


def _fallback(value: Any) -> Any:
    """JSON fallback for non-serialisable objects (size estimation only)."""
    if isinstance(value, SizedPayload):
        return {"size_bytes": value.size_bytes}
    if isinstance(value, Batch):
        return value.values
    return repr(value)
