"""Serialization helpers mirroring Pando's wire conventions.

The paper's usage example (Figure 2) gzip-compresses the rendered pixels and
base64-encodes them "which simplifies its transmission on the network"; all
other values travel as JSON strings on the WebSocket/WebRTC channel.  The
helpers below reproduce those conventions and, importantly for the simulator,
provide a consistent way to estimate the number of bytes a value occupies on
the wire so that the network model can charge transfer time for it.
"""

from __future__ import annotations

import base64
import gzip
import json
from typing import Any

__all__ = [
    "encode_json",
    "decode_json",
    "encode_binary",
    "decode_binary",
    "estimate_size",
    "Batch",
    "BATCH_FRAME_OVERHEAD",
    "SizedPayload",
]


def encode_json(value: Any) -> str:
    """Serialize *value* to a JSON string (compact separators)."""
    return json.dumps(value, separators=(",", ":"), default=_fallback)


def decode_json(data: str) -> Any:
    """Inverse of :func:`encode_json`."""
    return json.loads(data)


def encode_binary(data: bytes) -> str:
    """gzip + base64 encode *data* (paper Figure 2, line 8)."""
    return base64.b64encode(gzip.compress(data)).decode("ascii")


def decode_binary(encoded: str) -> bytes:
    """Inverse of :func:`encode_binary`."""
    return gzip.decompress(base64.b64decode(encoded.encode("ascii")))


#: Fixed per-frame overhead charged for the batch envelope on the wire.
BATCH_FRAME_OVERHEAD = 16


class Batch:
    """A wire frame carrying several consecutive stream values.

    Coalescing ``batch_size`` values into a single DATA frame amortises the
    per-frame dispatch overhead (one scheduler event and one latency charge on
    the simulated channels, one inter-process round trip on the process-pool
    backend).  A ``Batch`` is an explicit marker type — distinct from a plain
    list — so that list-*valued* stream elements are never mistaken for
    framing and flattened by :func:`repro.pullstream.throughs.unbatching`.
    """

    __slots__ = ("values",)

    def __init__(self, values: Any) -> None:
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Batch) and other.values == self.values

    # Mutable value container: defining __eq__ leaves Batch unhashable,
    # which is intended — frames are transient wire envelopes, not keys.

    @property
    def size_bytes(self) -> int:
        """Wire size: the batched payloads plus a fixed envelope overhead."""
        return BATCH_FRAME_OVERHEAD + sum(
            estimate_size(value) for value in self.values
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Batch n={len(self.values)} {self.size_bytes}B>"


class SizedPayload:
    """Wrap a value with an explicit wire size in bytes.

    Applications whose values stand for large binary blobs (e.g. the 168 kB
    Landsat tiles of the image-processing application) wrap them so the
    network model charges a realistic transfer time without the simulator
    having to materialise megabytes of data.
    """

    __slots__ = ("value", "size_bytes")

    def __init__(self, value: Any, size_bytes: int) -> None:
        self.value = value
        self.size_bytes = int(size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SizedPayload {self.size_bytes}B {self.value!r}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SizedPayload)
            and other.value == self.value
            and other.size_bytes == self.size_bytes
        )

    def __hash__(self) -> int:
        return hash((self.size_bytes, repr(self.value)))


def estimate_size(value: Any) -> int:
    """Estimate the wire size of *value* in bytes.

    Order of preference: an explicit :class:`SizedPayload`, a ``size_bytes``
    key of a mapping, a ``size_bytes`` attribute, raw ``bytes`` length, and
    finally the length of the JSON encoding.
    """
    if isinstance(value, (SizedPayload, Batch)):
        return value.size_bytes
    if isinstance(value, dict) and isinstance(value.get("size_bytes"), (int, float)):
        return int(value["size_bytes"])
    size_attr = getattr(value, "size_bytes", None)
    if isinstance(size_attr, (int, float)):
        return int(size_attr)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    try:
        return len(encode_json(value))
    except (TypeError, ValueError):
        return len(repr(value))


def _fallback(value: Any) -> Any:
    """JSON fallback for non-serialisable objects (size estimation only)."""
    if isinstance(value, SizedPayload):
        return {"size_bytes": value.size_bytes}
    if isinstance(value, Batch):
        return value.values
    return repr(value)
