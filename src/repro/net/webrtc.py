"""Simulated WebRTC data-channel connections.

WebRTC lets two browsers communicate directly, in many cases even through
NAT, removing the need for a server to relay all traffic (paper section
2.4.1).  Its establishment is more expensive than WebSocket's: the two peers
must exchange offer/answer and ICE candidates through a signalling channel —
Pando uses a WebSocket to its public server for that — before the direct
DTLS/SCTP association comes up.  The paper's WAN deployment (PlanetLab,
section 5.4) uses WebRTC.

:class:`WebRTCConnection` models this: connection setup pays several
signalling round trips through the :class:`~repro.net.signaling.PublicServer`
plus one direct round trip for ICE/DTLS; NAT traversal may fail, in which
case the connection either falls back to relaying every frame through the
server (``relay_fallback=True``) or fails with
:class:`~repro.errors.NATTraversalError`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import NATTraversalError, SignallingError
from ..sim.network import NetworkModel
from ..sim.scheduler import Scheduler
from .channel import SimChannel
from .nat import NATModel
from .signaling import PublicServer

__all__ = ["WebRTCConnection"]


class WebRTCConnection(SimChannel):
    """A master <-> volunteer WebRTC data channel."""

    #: ICE connectivity checks + DTLS handshake on the direct path
    SETUP_ROUND_TRIPS = 1.5
    #: offer/answer + ICE candidate exchanges through the signalling server
    SIGNALLING_ROUND_TRIPS = 2
    protocol = "rtc"

    def __init__(
        self,
        scheduler: Scheduler,
        network: NetworkModel,
        local_host: str,
        remote_host: str,
        signalling_server: Optional[PublicServer] = None,
        nat_model: Optional[NATModel] = None,
        relay_fallback: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(scheduler, network, local_host, remote_host, **kwargs)
        self.signalling_server = signalling_server
        self.nat_model = nat_model or NATModel(network)
        self.relay_fallback = relay_fallback
        self.used_relay = False

    def connect(
        self, cb: Callable[[Optional[BaseException], "WebRTCConnection"], None]
    ) -> None:
        """Signal through the public server, then bring up the direct path."""

        def after_signalling() -> None:
            if self.nat_model.direct_connection_possible(
                self.local.host, self.remote.host
            ):
                self._establish_direct(cb)
                return
            if not self.relay_fallback:
                cb(
                    NATTraversalError(
                        f"cannot establish a direct WebRTC connection between "
                        f"{self.local.host} and {self.remote.host}"
                    ),
                    self,
                )
                return
            # TURN-style fallback: every frame is relayed through the server.
            if self.signalling_server is None:
                cb(
                    SignallingError(
                        "relay fallback requested but no signalling server is available"
                    ),
                    self,
                )
                return
            self.used_relay = True
            self.relay_host = self.signalling_server.host
            self._establish_direct(cb)

        self._run_signalling(after_signalling)

    # ------------------------------------------------------------ internals
    def _run_signalling(self, on_success: Callable[[], None]) -> None:
        if self.signalling_server is None:
            # Both peers are directly reachable (e.g. tests): skip signalling.
            on_success()
            return

        remaining = {"round_trips": self.SIGNALLING_ROUND_TRIPS}

        def exchange(_payload=None) -> None:
            if remaining["round_trips"] == 0:
                on_success()
                return
            remaining["round_trips"] -= 1
            self.signalling_server.relay_signal(
                self.local.host,
                self.remote.host,
                {"type": "offer/answer", "remaining": remaining["round_trips"]},
                exchange,
            )

        exchange()

    def _establish_direct(
        self, cb: Callable[[Optional[BaseException], "WebRTCConnection"], None]
    ) -> None:
        profile = self.network.profile(self.local.host, self.remote.host)
        setup_delay = self.SETUP_ROUND_TRIPS * profile.rtt
        if self.used_relay:
            # Connectivity checks also go through the relay, roughly doubling.
            setup_delay *= 2

        def established() -> None:
            self.established = True
            self.established_at = self.scheduler.now
            self.local.start()
            self.remote.start()
            cb(None, self)

        self.scheduler.call_later(setup_delay, established)
