"""Shared-memory slot ring: the cheap data plane for process-pool frames.

The pool backend's wire protocol pickles every ``Batch`` through the
``ProcessPoolExecutor`` pipe — fine for control records, ruinous for the
payloads the paper's applications actually move (raytraced pixel buffers,
Landsat tiles).  :class:`ShmRing` splits the two planes: one
``multiprocessing.shared_memory`` block is divided into fixed-size slots,
payload bytes cross the process boundary with a single memcpy into a slot,
and only a tiny control record — ``(slot index, length, tag, meta)`` —
travels on the pipe.  The receiving process maps the same block by name and
reads the payload straight out of the slot (zero-copy for numpy arrays, one
memcpy for ``bytes``).

Ownership protocol (what keeps the ring leak-proof without cross-process
locks): **slots are only ever acquired and released by the master**, and a
slot's lifetime is tied to the frame that carried it.  Submitting a frame
acquires its slots; the child may *reuse* a frame's own slots to return
results (the input payload has been consumed by then); delivering — or
failing, cancelling, or shutting down — the frame releases them.  A payload
that does not fit any slot, or finds the ring exhausted, simply stays
in-band on the pipe: the ring degrades to the old transport, it never
blocks and never drops.

Entry format (pickled inside the frame's control record)::

    ("inline", value, spare)              # in-band; *spare* is a slot the
                                          # child may use for the result
                                          # (None when the ring had none)
    ("shm", slot, length, tag, meta)      # payload lives in ring slot

The *spare* slot covers the asymmetric frames of the paper's applications —
a tiny render spec in, a megabyte pixel buffer out: the input travels
in-band, but its result still comes back through the ring.

The child-side helpers (:func:`load_entry`, :func:`store_entry`,
:func:`attach_ring`) are plain module-level functions, picklable under every
start method, with the attachment cached per process.
"""

from __future__ import annotations

import os
from collections import deque
from multiprocessing import shared_memory
from typing import Any, Deque, List, Optional, Sequence, Set, Tuple

from ..errors import PandoError
from .serialization import OOB_MIN_BYTES, oob_pack, oob_unpack

__all__ = [
    "DEFAULT_SLOT_COUNT",
    "DEFAULT_SLOT_SIZE",
    "ShmRing",
    "pack_frame",
    "unpack_frame",
    "attach_ring",
    "load_entry",
    "store_entry",
]

#: Default ring geometry: 32 slots of 1 MiB keeps two batched Limiter
#: windows of large frames in flight while staying a rounding error on any
#: host's /dev/shm.  Both knobs are per-pool configurable.
DEFAULT_SLOT_COUNT = 32
DEFAULT_SLOT_SIZE = 1 << 20


class ShmRing:
    """A ring of fixed-size shared-memory slots with master-side accounting.

    The creating process owns the block and the free list; attached
    processes (see :func:`attach_ring`) only read and write slot contents
    they were handed via control records.  ``acquire`` never blocks: it
    returns ``None`` when the ring is exhausted, which callers treat as the
    in-band fallback.
    """

    def __init__(
        self,
        slot_count: int = DEFAULT_SLOT_COUNT,
        slot_size: int = DEFAULT_SLOT_SIZE,
    ) -> None:
        if slot_count < 1:
            raise PandoError("ShmRing needs at least one slot")
        if slot_size < 1:
            raise PandoError("ShmRing slots need a positive size")
        self.slot_count = slot_count
        self.slot_size = slot_size
        self._shm: Optional[shared_memory.SharedMemory] = shared_memory.SharedMemory(
            create=True, size=slot_count * slot_size
        )
        self.name = self._shm.name
        # Fork-started executor children inherit this object; only the
        # creating process may unlink the block (see close()).
        self._owner_pid = os.getpid()
        self._free: Deque[int] = deque(range(slot_count))
        self._held: Set[int] = set()
        # counters for benches and the leak assertions of the test suite
        self.slots_acquired = 0
        self.slots_released = 0
        #: payloads that stayed in-band (too large for a slot, or exhausted)
        self.fallbacks = 0
        #: payload bytes moved through slots (both directions, master side)
        self.bytes_written = 0
        self.bytes_read = 0

    # --------------------------------------------------------------- slots
    @property
    def in_use(self) -> int:
        """Slots currently acquired and not yet released."""
        return len(self._held)

    @property
    def free_slots(self) -> int:
        return len(self._free)

    @property
    def closed(self) -> bool:
        return self._shm is None

    def acquire(self) -> Optional[int]:
        """Take a free slot, or ``None`` when the ring is exhausted/closed."""
        if self._shm is None or not self._free:
            return None
        slot = self._free.popleft()
        self._held.add(slot)
        self.slots_acquired += 1
        return slot

    def release(self, slot: int) -> None:
        """Return *slot* to the free list (exactly once per acquisition)."""
        if slot not in self._held:
            raise PandoError(f"slot {slot} is not acquired (double release?)")
        self._held.discard(slot)
        self._free.append(slot)
        self.slots_released += 1

    def release_all(self, slots: Sequence[int]) -> None:
        """Release every slot in *slots*, even when one release fails.

        A double release mid-sequence must not abandon the remaining slots
        (each would leak until :meth:`close`): every slot gets its release
        attempted, then the first error is re-raised.
        """
        first_error: Optional[BaseException] = None
        for slot in slots:
            try:
                self.release(slot)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def write(self, slot: int, data: Any) -> int:
        """memcpy *data* (a bytes-like) into *slot*; returns the length."""
        if self._shm is None:
            raise PandoError("ShmRing is closed")
        view = memoryview(data)
        length = view.nbytes
        if length > self.slot_size:
            raise PandoError(
                f"payload of {length} bytes exceeds the {self.slot_size}-byte slot"
            )
        offset = slot * self.slot_size
        self._shm.buf[offset : offset + length] = view.cast("B")
        self.bytes_written += length
        return length

    def view(self, slot: int, length: int) -> memoryview:
        """A zero-copy view of *slot*'s first *length* bytes."""
        if self._shm is None:
            raise PandoError("ShmRing is closed")
        offset = slot * self.slot_size
        return self._shm.buf[offset : offset + length]

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unmap and unlink the block (idempotent; counters stay readable)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
            if os.getpid() == self._owner_pid:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self.closed else "open"
        return (
            f"<ShmRing {self.name} {state} {self.slot_count}x{self.slot_size}B "
            f"in_use={self.in_use}>"
        )


# --------------------------------------------------------------------------
# Master side: frames in and out of the ring.
# --------------------------------------------------------------------------


def pack_frame(
    ring: ShmRing, values: Sequence[Any], min_bytes: int = OOB_MIN_BYTES
) -> Tuple[List[Any], List[int]]:
    """Move a frame's eligible payloads into ring slots.

    Returns ``(entries, slots)``: one entry per value (``("inline", ...)``
    or ``("shm", ...)``) and the slots acquired for the frame, in entry
    order — the caller owns them until the frame's result is consumed.
    A payload stays in-band when it is small (below *min_bytes*), has no
    flat byte form, exceeds the slot size, or the ring is exhausted.  An
    in-band value still gets a *spare* slot so an asymmetric frame — small
    input, large result — returns its result through the ring too; spares
    are only granted while the ring keeps a quarter of its slots free, so
    frames of small control values cannot starve the large payloads the
    ring exists for.
    """
    entries: List[Any] = []
    slots: List[int] = []
    spare_reserve = ring.slot_count // 4
    for value in values:
        packed = oob_pack(value)
        if packed is not None:
            tag, buffer, meta = packed
            length = memoryview(buffer).nbytes
            if min_bytes <= length <= ring.slot_size:
                slot = ring.acquire()
                if slot is not None:
                    try:
                        ring.write(slot, buffer)
                    except Exception:
                        # A buffer the codec accepted but the ring rejects
                        # is a bug worth surfacing — but never at the cost
                        # of stranding the slot.
                        ring.release(slot)
                        raise
                    entries.append(("shm", slot, length, tag, meta))
                    slots.append(slot)
                    continue
            if length >= min_bytes:
                ring.fallbacks += 1
        spare = ring.acquire() if ring.free_slots > spare_reserve else None
        if spare is not None:
            slots.append(spare)
        entries.append(("inline", _inband(value), spare))
    return entries, slots


def _inband(value: Any) -> Any:
    """Make *value* safe for the pickled control record.

    A memoryview is unpicklable, so it can never ride the pipe by
    reference; materialising it is the only in-band form there is (the
    codec does the same for the slot path, so both fallbacks agree).
    """
    return bytes(value) if isinstance(value, memoryview) else value


def unpack_frame(ring: ShmRing, entries: Sequence[Any]) -> List[Any]:
    """Materialise a frame's values from its control entries (master side).

    Always copies out of the ring — the caller releases the frame's slots
    immediately afterwards, so no returned value may alias a slot.
    """
    values: List[Any] = []
    for entry in entries:
        if entry[0] == "inline":
            if entry[2] == "fallback":
                ring.fallbacks += 1
            values.append(entry[1])
        else:
            _kind, slot, length, tag, meta = entry
            view = ring.view(slot, length)
            try:
                values.append(oob_unpack(tag, view, meta, copy=True))
            finally:
                view.release()
            ring.bytes_read += length
    return values


# --------------------------------------------------------------------------
# Child side: attach by name, read inputs, write results back.
# --------------------------------------------------------------------------

#: Per-process cache of attached blocks, keyed by shared-memory name.
_ATTACHED: dict = {}


def attach_ring(name: str) -> shared_memory.SharedMemory:
    """Map the ring block *name* into this process (cached).

    Executor children share the master's resource-tracker process, whose
    per-name cache is a set: the attach below re-registers a name the
    master already registered (a no-op), and the master's ``unlink``
    removes it exactly once — so neither side may *unregister* on the
    child's behalf, and no tracker bookkeeping is needed here.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached
    shm = shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = shm
    return shm


def load_entry(name: str, slot_size: int, entry: Any, copy: bool = False) -> Any:
    """Rebuild one value from a control entry (child side).

    ``copy=False`` is the zero-copy read: an ``"nd"`` payload comes back as
    a numpy array viewing the slot directly.  The value is only guaranteed
    valid until the frame's result is returned (the master releases the
    slots then), which holds for the batch-apply loop the pool runs.
    """
    if entry[0] == "inline":
        return entry[1]
    _kind, slot, length, tag, meta = entry
    shm = attach_ring(name)
    offset = slot * slot_size
    return oob_unpack(tag, shm.buf[offset : offset + length], meta, copy=copy)


def store_entry(
    name: str,
    slot_size: int,
    entry: Any,
    result: Any,
    min_bytes: int = OOB_MIN_BYTES,
) -> Any:
    """Write one result back through the frame's slot when possible.

    The frame owns its slots until the master consumes the result, and an
    ``("shm", ...)`` input's payload has already been applied — so an
    eligible result overwrites the input slot in place (one memcpy, nothing
    on the pipe); an ``("inline", ...)`` input offers its spare slot the
    same way.  A result that is in-band-shaped, small (below *min_bytes*),
    oversized, or without a slot to use is returned inline — exactly the
    graceful degradation of the submit side; a slot-worthy result the ring
    could not carry is marked ``"fallback"`` so
    :func:`unpack_frame` folds it into the master's fallback counter.
    """
    slot = entry[2] if entry[0] == "inline" else entry[1]
    packed = oob_pack(result)
    if packed is None:
        return ("inline", result, None)
    tag, buffer, meta = packed
    view = memoryview(buffer).cast("B")
    length = view.nbytes
    if length < min_bytes:
        return ("inline", _inband(result), None)
    if slot is None or length > slot_size:
        # A slot-worthy result that the ring could not carry: flag it so
        # the master's fallback counter covers the result plane too.
        return ("inline", _inband(result), "fallback")
    shm = attach_ring(name)
    offset = slot * slot_size
    # A result that cannot alias the ring memcpys straight in; one that
    # might (a zero-copy ``nd`` load returned by an echo-style function) is
    # materialised first, because writing a buffer over itself through a
    # memoryview is undefined.  Owned bytes/bytearray objects never alias;
    # for ndarrays a cheap bounds check against the mapped block decides
    # (conservative: a false positive only costs the defensive copy).
    if isinstance(result, (bytes, bytearray)) or _disjoint_from(shm, result):
        shm.buf[offset : offset + length] = view
    else:
        shm.buf[offset : offset + length] = bytes(view)
    return ("shm", slot, length, tag, meta)


def _disjoint_from(shm: shared_memory.SharedMemory, result: Any) -> bool:
    """True when *result* is an ndarray provably outside *shm*'s mapping."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is in the baseline image
        return False
    if not isinstance(result, numpy.ndarray):
        return False
    block = numpy.frombuffer(shm.buf, dtype=numpy.uint8)
    try:
        return not numpy.may_share_memory(result, block)
    finally:
        del block
