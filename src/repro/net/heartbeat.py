"""Heartbeat-based failure detection.

Pando relies on the heartbeat mechanism of WebSocket and WebRTC to *suspect*
crash-stop failures under partial synchrony (paper section 2.3): if no
message or heartbeat is received from the peer within a time bound, the
connection is declared dead and the values lent to that worker are
re-submitted elsewhere.  :class:`HeartbeatMonitor` implements both sides of
this mechanism on top of any scheduler exposing ``now`` and
``call_later(delay, fn)`` — the discrete-event simulator for the simulated
channels, or the real-clock :class:`~repro.net.ws_transport.LoopClock`
facade over an asyncio loop for the live websocket transport (ping/pong on
the socket).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["HeartbeatMonitor", "DEFAULT_INTERVAL", "DEFAULT_TIMEOUT"]

#: Default heartbeat period in seconds (WebSocket ping interval).
DEFAULT_INTERVAL = 1.0
#: Default suspicion timeout in seconds (a few missed heartbeats).
DEFAULT_TIMEOUT = 3.0


class HeartbeatMonitor:
    """Send periodic heartbeats and suspect the peer after a silence timeout.

    Parameters
    ----------
    scheduler:
        Any clock-and-timers provider: ``now`` (seconds) plus
        ``call_later(delay, fn)`` returning a cancellable handle — the
        simulation :class:`~repro.sim.scheduler.Scheduler` or a real-clock
        :class:`~repro.net.ws_transport.LoopClock`.
    send:
        Called every *interval* seconds to emit a heartbeat frame to the peer.
    on_failure:
        Called once when the peer has been silent for longer than *timeout*.
    interval / timeout:
        Heartbeat period and suspicion bound, in seconds.
    """

    def __init__(
        self,
        scheduler: Any,
        send: Callable[[], None],
        on_failure: Callable[[], None],
        interval: float = DEFAULT_INTERVAL,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if interval <= 0 or timeout <= 0:
            raise ValueError("heartbeat interval and timeout must be positive")
        self.scheduler = scheduler
        self.interval = interval
        self.timeout = timeout
        self._send = send
        self._on_failure = on_failure
        self._last_seen = scheduler.now
        self._stopped = False
        self._failed = False
        #: cancellable timer handles (sim ScheduledEvent or asyncio TimerHandle)
        self._send_event: Optional[Any] = None
        self._check_event: Optional[Any] = None

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        """Begin (or restart) emitting heartbeats and checking for silence.

        Safe to call again on an already-running monitor — the reconnect
        path: the previous send/check timer chains are cancelled instead of
        stacking duplicates.  A monitor that was :meth:`stop`-ed, or that
        already suspected its peer, starts afresh (``failed`` resets), so one
        monitor instance can follow a connection through reconnections.
        """
        self._cancel_events()
        self._stopped = False
        self._failed = False
        self._last_seen = self.scheduler.now
        self._schedule_send()
        self._schedule_check()

    def stop(self) -> None:
        """Stop all timers (connection closed gracefully)."""
        self._stopped = True
        self._cancel_events()

    def _cancel_events(self) -> None:
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None
        if self._check_event is not None:
            self._check_event.cancel()
            self._check_event = None

    def touch(self) -> None:
        """Record that the peer was heard from (any frame counts)."""
        self._last_seen = self.scheduler.now

    @property
    def failed(self) -> bool:
        """True once the peer has been suspected."""
        return self._failed

    # ------------------------------------------------------------ internals
    def _schedule_send(self) -> None:
        if self._stopped or self._failed:
            return

        def beat() -> None:
            if self._stopped or self._failed:
                return
            self._send()
            self._schedule_send()

        self._send_event = self.scheduler.call_later(self.interval, beat)

    def _schedule_check(self) -> None:
        if self._stopped or self._failed:
            return

        def check() -> None:
            if self._stopped or self._failed:
                return
            silence = self.scheduler.now - self._last_seen
            if silence >= self.timeout:
                self._failed = True
                self.stop()
                self._on_failure()
                return
            self._schedule_check()

        # Re-check shortly after the moment the timeout could first expire.
        delay = max(self.timeout - (self.scheduler.now - self._last_seen), 1e-6)
        self._check_event = self.scheduler.call_later(delay, check)
