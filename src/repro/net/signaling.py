"""Public signalling server (``pando-server`` equivalent).

When volunteers cannot reach the master directly (different networks, NAT),
Pando deploys a small public server — on Heroku's free tier or a Raspberry
Pi — whose only jobs are (1) serving the volunteer code at a public URL and
(2) relaying WebRTC signalling messages between a joining volunteer and the
master until their direct connection is established (paper section 2.4.3).
Since signalling requires little resources, the server never carries the
computation data itself (unless a channel explicitly falls back to relaying).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import SignallingError
from ..sim.network import NetworkModel
from ..sim.scheduler import Scheduler

__all__ = ["Deployment", "PublicServer"]

_deployment_ids = itertools.count(1)


@dataclass
class Deployment:
    """One Pando deployment registered on the public server (one URL)."""

    deployment_id: str
    master_host: str
    url: str
    #: callback invoked (via the server) when a volunteer wants to join
    on_join_request: Callable[[str, Dict[str, Any]], None]
    volunteers: List[str] = field(default_factory=list)
    active: bool = True


class PublicServer:
    """Relays join requests and signalling messages between hosts.

    All exchanges with the server pay the network delay between the calling
    host and the server's host, so signalling over a WAN is visibly slower
    than over a LAN — matching the WebRTC setup cost the paper describes.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        network: NetworkModel,
        host: str = "public-server",
    ) -> None:
        self.scheduler = scheduler
        self.network = network
        self.host = host
        self._deployments: Dict[str, Deployment] = {}
        self.signalling_messages = 0

    # ------------------------------------------------------------ master API
    def register_deployment(
        self,
        master_host: str,
        on_join_request: Callable[[str, Dict[str, Any]], None],
    ) -> Deployment:
        """Register a deployment and return its public URL record."""
        deployment_id = f"d{next(_deployment_ids)}"
        deployment = Deployment(
            deployment_id=deployment_id,
            master_host=master_host,
            url=f"http://{self.host}/{deployment_id}",
            on_join_request=on_join_request,
        )
        self._deployments[deployment_id] = deployment
        return deployment

    def shutdown_deployment(self, deployment_id: str) -> None:
        """Remove a deployment (the tool shut down, paper DP1)."""
        deployment = self._deployments.get(deployment_id)
        if deployment is not None:
            deployment.active = False

    # --------------------------------------------------------- volunteer API
    def join(
        self,
        url: str,
        volunteer_host: str,
        info: Optional[Dict[str, Any]] = None,
        cb: Optional[Callable[[Optional[BaseException]], None]] = None,
    ) -> None:
        """A volunteer opens the deployment URL in its browser.

        The request travels volunteer -> server -> master; the master then
        initiates the actual data connection (WebSocket or WebRTC).
        """
        deployment = self._find(url)
        if deployment is None or not deployment.active:
            error = SignallingError(f"no active deployment at {url!r}")
            if cb is not None:
                cb(error)
            return
        to_server = self.network.delay(volunteer_host, self.host, 512)
        to_master = self.network.delay(self.host, deployment.master_host, 512)

        def reach_master() -> None:
            deployment.volunteers.append(volunteer_host)
            deployment.on_join_request(volunteer_host, dict(info or {}))
            if cb is not None:
                cb(None)

        self.scheduler.call_later(to_server + to_master, reach_master)

    # ------------------------------------------------------------ signalling
    def relay_signal(
        self,
        sender_host: str,
        receiver_host: str,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> None:
        """Relay one signalling message (offer/answer/ICE candidate)."""
        self.signalling_messages += 1
        delay = self.network.delay(sender_host, self.host, 256) + self.network.delay(
            self.host, receiver_host, 256
        )
        self.scheduler.call_later(delay, deliver, payload)

    # ------------------------------------------------------------- internals
    def _find(self, url: str) -> Optional[Deployment]:
        for deployment in self._deployments.values():
            if deployment.url == url:
                return deployment
        return None

    @property
    def deployments(self) -> Dict[str, Deployment]:
        return dict(self._deployments)
