"""Network Address Translation model.

WebRTC can in many cases establish direct browser-to-browser connections even
through NAT (paper section 2.4.1), but not always: the paper reports that the
WebTorrent-based variant sometimes took minutes or failed to connect.  The
simulator models NAT as a per-host attribute plus a per-link traversal
failure probability (from the :class:`~repro.sim.network.LinkProfile`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.network import NetworkModel

__all__ = ["NATConfig", "NATModel"]


@dataclass(frozen=True)
class NATConfig:
    """NAT behaviour of one host."""

    host: str
    behind_nat: bool = False
    #: probability that hole punching fails even when both sides try
    traversal_failure_rate: float = 0.0


class NATModel:
    """Decide whether a direct connection between two hosts can be set up."""

    def __init__(self, network: NetworkModel) -> None:
        self.network = network
        self._hosts: Dict[str, NATConfig] = {}

    def configure(self, config: NATConfig) -> None:
        """Register the NAT behaviour of a host."""
        self._hosts[config.host] = config

    def config_for(self, host: str) -> NATConfig:
        """NAT configuration of *host* (defaults to no NAT)."""
        return self._hosts.get(host, NATConfig(host=host))

    def direct_connection_possible(self, host_a: str, host_b: str) -> bool:
        """Sample whether a direct (non-relayed) connection can be set up.

        If neither host is behind NAT the connection always succeeds; if at
        least one is, failure is sampled from the per-host rate and the
        link-profile's ``nat_failure_rate``.
        """
        config_a = self.config_for(host_a)
        config_b = self.config_for(host_b)
        if not config_a.behind_nat and not config_b.behind_nat:
            return True
        if self.network.nat_blocks_direct_connection(host_a, host_b):
            return False
        for config in (config_a, config_b):
            if config.behind_nat and config.traversal_failure_rate > 0:
                if self.network._rng.random() < config.traversal_failure_rate:
                    return False
        return True
