"""Simulated duplex message channels exposed as pull-streams.

A :class:`SimChannel` connects two :class:`ChannelEndpoint` objects — one on
the master's host, one on the volunteer's host.  Each endpoint exposes a
pull-stream :class:`~repro.pullstream.duplex.Duplex`:

* its **sink** eagerly drains the values produced upstream and sends each as
  a data frame to the peer (this eagerness is exactly why Pando needs the
  ``Limiter`` module in front of the channel, paper section 2.4.3);
* its **source** produces the payloads received from the peer.

Frames are delivered through the discrete-event scheduler after the delay
computed by the :class:`~repro.sim.network.NetworkModel` for the pair of
hosts, so latency, jitter and payload size all influence timing.  Endpoints
run a :class:`~repro.net.heartbeat.HeartbeatMonitor`; an endpoint that
crashes (crash-stop) simply goes silent and the peer discovers the failure
through the heartbeat timeout, erroring its source — which is how the failure
reaches StreamLender.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from ..errors import ConnectionClosed
from ..pullstream.duplex import Duplex
from ..pullstream.protocol import DONE, Callback, End, Source, is_error
from ..pullstream.pushable import Pushable
from ..pullstream.sinks import eager_pump
from ..sim.network import NetworkModel
from ..sim.scheduler import Scheduler
from .heartbeat import DEFAULT_INTERVAL, DEFAULT_TIMEOUT, HeartbeatMonitor
from .message import CLOSE, CONTROL, DATA, HEARTBEAT, Message
from .serialization import Batch

__all__ = ["ChannelEndpoint", "SimChannel"]

_channel_ids = itertools.count()


class ChannelEndpoint:
    """One side of a simulated connection."""

    def __init__(
        self,
        channel: "SimChannel",
        host: str,
        label: str,
        heartbeat_interval: float = DEFAULT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_TIMEOUT,
        heartbeats_enabled: bool = True,
    ) -> None:
        self.channel = channel
        self.host = host
        self.label = label
        self.peer: Optional["ChannelEndpoint"] = None
        self.closed = False
        self.crashed = False
        self.close_reason: Optional[BaseException] = None
        self._incoming = Pushable()
        self._outgoing_aborted = False
        self._last_arrival = 0.0
        #: the local producer finished (half-closed, no more data sent)
        self._write_closed = False
        #: the peer announced it will send no more data
        self._read_ended = False
        self.duplex = Duplex(source=self._source_read, sink=self._sink)
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        #: DATA frames sent, and stream values they carried (a batched frame
        #: carries several values — the framing amortisation benches compare
        #: these two counters).
        self.data_frames_sent = 0
        self.values_sent = 0
        self._close_listeners: List[Callable[[Optional[BaseException]], None]] = []
        self._receive_listeners: List[Callable[[Any], None]] = []
        self._heartbeats_enabled = heartbeats_enabled
        #: a :class:`~repro.obs.TraceLog` when the deployment attached one;
        #: heartbeat failures then emit heartbeat_suspicion trace events
        self.trace: Optional[Any] = None
        self.heartbeat = HeartbeatMonitor(
            channel.scheduler,
            send=self._send_heartbeat,
            on_failure=self._on_heartbeat_failure,
            interval=heartbeat_interval,
            timeout=heartbeat_timeout,
        )

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin heartbeating (called once the connection is established)."""
        if self._heartbeats_enabled:
            self.heartbeat.start()

    def close(self, reason: Optional[str] = None) -> None:
        """Gracefully close the whole connection: notify the peer and stop."""
        if self.closed:
            return
        self._transmit(
            Message.close(sender=self.label, reason={"half": False, "reason": reason})
        )
        self._shutdown(None)

    def close_write(self, reason: Optional[str] = None) -> None:
        """Half-close: no more data will be sent, but receiving continues.

        Used when the local producer's stream ended while results from the
        peer may still be in flight (the peer learns through the close frame
        that no further inputs are coming).
        """
        if self.closed or self._write_closed:
            return
        self._write_closed = True
        self._transmit(
            Message.close(sender=self.label, reason={"half": True, "reason": reason})
        )
        if self._read_ended:
            self._shutdown(None)

    def crash(self) -> None:
        """Crash-stop: go silent without notifying the peer.

        The peer only finds out through its heartbeat timeout.
        """
        if self.closed:
            return
        self.crashed = True
        self._shutdown(ConnectionClosed(f"{self.label} crashed"), notify_source=False)

    def on_close(self, listener: Callable[[Optional[BaseException]], None]) -> None:
        """Register *listener* to run when this endpoint closes or fails."""
        self._close_listeners.append(listener)

    def on_receive(self, listener: Callable[[Any], None]) -> None:
        """Register ``listener(payload)`` for every DATA frame delivered.

        Fires after the payload entered the endpoint's incoming buffer, i.e.
        once the value is visible to the pull side.  The event-loop
        interleaving benches use this to trace a channel's progress next to
        the pools sharing the loop; metrics collectors can hook it without
        wrapping the duplex.
        """
        self._receive_listeners.append(listener)

    def _shutdown(
        self, reason: Optional[BaseException], notify_source: bool = True
    ) -> None:
        if self.closed:
            return
        self.closed = True
        self.close_reason = reason
        self.heartbeat.stop()
        if notify_source:
            if reason is None:
                self._incoming.end()
            else:
                self._incoming.error(reason)
        for listener in list(self._close_listeners):
            listener(reason)

    # ------------------------------------------------------- pull interfaces
    def _source_read(self, end: End, cb: Callback) -> None:
        """Source half: deliver received payloads to the local consumer."""
        if end is not None:
            # The local consumer aborts: close the connection.
            if not self.closed:
                self.close(reason="consumer aborted")
            self._incoming(end, cb)
            return
        self._incoming(None, cb)

    def _sink(self, read: Source) -> None:
        """Sink half: eagerly read local values and send them to the peer."""

        def on_end(answer_end: End) -> None:
            # Local producer finished: half-close so results still in flight
            # from the peer can be received; a producer error closes the
            # whole connection.
            if not self.closed and not is_error(answer_end):
                self.close_write(reason="producer ended")
            elif not self.closed:
                self.close(reason=f"producer error: {answer_end!r}")

        eager_pump(
            read,
            on_value=self.send,
            on_end=on_end,
            closed_reason=lambda: (
                (self.close_reason if self.close_reason is not None else DONE)
                if self.closed
                else None
            ),
        )

    _sink.pull_role = "sink"

    # ------------------------------------------------------------ messaging
    def send(self, payload: Any) -> None:
        """Send a data frame carrying *payload* (a value or a :class:`Batch`)."""
        if self.closed or self.peer is None:
            return  # dropped by _transmit anyway; keep the counters truthful
        self.data_frames_sent += 1
        self.values_sent += len(payload) if isinstance(payload, Batch) else 1
        self._transmit(Message.data(payload, sender=self.label))

    def send_control(self, payload: Any) -> None:
        """Send a control frame (signalling) to the peer."""
        self._transmit(Message.control(payload, sender=self.label))

    def _send_heartbeat(self) -> None:
        self._transmit(Message.heartbeat(sender=self.label))

    def _transmit(self, message: Message) -> None:
        if self.closed and message.kind != CLOSE:
            return
        peer = self.peer
        if peer is None:
            return
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        delay = self.channel.message_delay(self.host, peer.host, message.size_bytes)
        # WebSocket and WebRTC data channels are ordered transports: a frame
        # never overtakes one sent before it, even when jitter would make its
        # raw propagation delay shorter.
        arrival = max(
            self.channel.scheduler.now + delay, self._last_arrival + 1e-9
        )
        self._last_arrival = arrival
        self.channel.scheduler.call_at(arrival, peer._receive, message)

    def _receive(self, message: Message) -> None:
        if self.closed:
            return
        self.messages_received += 1
        self.heartbeat.touch()
        if message.kind == HEARTBEAT:
            return
        if message.kind == CLOSE:
            half = isinstance(message.payload, dict) and message.payload.get("half")
            if half:
                # The peer will send no more data; results we still owe it can
                # continue to flow until our own producer ends too.
                self._read_ended = True
                self._incoming.end()
                if self._write_closed:
                    self._shutdown(None)
            else:
                self._shutdown(None)
            return
        if message.kind == DATA:
            self._incoming.push(message.payload)
            for listener in list(self._receive_listeners):
                listener(message.payload)
            return
        if message.kind == CONTROL:
            self.channel.on_control(self, message.payload)
            return

    def _on_heartbeat_failure(self) -> None:
        if self.trace is not None:
            self.trace.emit(
                "heartbeat_suspicion",
                peer=self.peer.label if self.peer else None,
                endpoint=self.label,
                timeout=self.heartbeat.timeout,
            )
        self._shutdown(
            ConnectionClosed(
                f"{self.label}: no heartbeat from {self.peer.label if self.peer else '?'} "
                f"within {self.heartbeat.timeout}s"
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "crashed" if self.crashed else ("closed" if self.closed else "open")
        return f"<ChannelEndpoint {self.label}@{self.host} {state}>"


class SimChannel:
    """A bidirectional connection between two hosts.

    Subclasses (:class:`~repro.net.websocket.WebSocketConnection`,
    :class:`~repro.net.webrtc.WebRTCConnection`) model protocol-specific
    connection establishment; the base class provides the two endpoints and
    frame delivery.
    """

    #: extra one-way trips required to establish the connection
    SETUP_ROUND_TRIPS = 1.0
    protocol = "sim"

    def __init__(
        self,
        scheduler: Scheduler,
        network: NetworkModel,
        local_host: str,
        remote_host: str,
        heartbeat_interval: float = DEFAULT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_TIMEOUT,
        heartbeats_enabled: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.network = network
        self.id = next(_channel_ids)
        self.local = ChannelEndpoint(
            self,
            host=local_host,
            label=f"{self.protocol}-{self.id}:{local_host}",
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            heartbeats_enabled=heartbeats_enabled,
        )
        self.remote = ChannelEndpoint(
            self,
            host=remote_host,
            label=f"{self.protocol}-{self.id}:{remote_host}",
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            heartbeats_enabled=heartbeats_enabled,
        )
        self.local.peer = self.remote
        self.remote.peer = self.local
        self.established = False
        self.established_at: Optional[float] = None
        #: when set, every frame is relayed through this host (TURN-style),
        #: paying the latency of both hops instead of the direct path.
        self.relay_host: Optional[str] = None

    def message_delay(self, sender: str, receiver: str, size_bytes: int) -> float:
        """Delivery delay of one frame, accounting for an optional relay."""
        if self.relay_host is None:
            return self.network.delay(sender, receiver, size_bytes)
        return self.network.delay(sender, self.relay_host, size_bytes) + self.network.delay(
            self.relay_host, receiver, size_bytes
        )

    # ------------------------------------------------------------------ API
    def connect(self, cb: Callable[[Optional[BaseException], "SimChannel"], None]) -> None:
        """Establish the connection, then call ``cb(err, channel)``.

        The base implementation charges ``SETUP_ROUND_TRIPS`` round trips of
        latency between the two hosts.
        """
        profile = self.network.profile(self.local.host, self.remote.host)
        setup_delay = self.SETUP_ROUND_TRIPS * profile.rtt

        def established() -> None:
            self.established = True
            self.established_at = self.scheduler.now
            self.local.start()
            self.remote.start()
            cb(None, self)

        self.scheduler.call_later(setup_delay, established)

    def on_control(self, endpoint: ChannelEndpoint, payload: Any) -> None:
        """Hook for subclasses that exchange control frames (signalling)."""

    def close(self) -> None:
        """Close both endpoints gracefully."""
        self.local.close()
        self.remote.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<{type(self).__name__} #{self.id} "
            f"{self.local.host}<->{self.remote.host} established={self.established}>"
        )
