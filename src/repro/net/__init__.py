"""Network substrate: simulated channels, transports, signalling, NAT — and
one real wire.

Most of these modules replace the browser WebSocket/WebRTC stacks of the
original Pando with in-process equivalents that preserve the properties
Pando relies on — ordered duplex delivery, heartbeat-based failure
detection, connection setup cost, latency and bandwidth (see DESIGN.md,
substitution table).  :mod:`~repro.net.ws_transport` is the exception: an
actual asyncio websocket server and client, so external volunteer processes
join a live master over TCP.
"""

from .serialization import (
    SizedPayload,
    decode_binary,
    decode_json,
    encode_binary,
    encode_json,
    estimate_size,
    oob_pack,
    oob_unpack,
)
from .shm_ring import ShmRing
from .message import CLOSE, CONTROL, DATA, HEARTBEAT, Message
from .heartbeat import DEFAULT_INTERVAL, DEFAULT_TIMEOUT, HeartbeatMonitor
from .channel import ChannelEndpoint, SimChannel
from .websocket import WebSocketConnection
from .webrtc import WebRTCConnection
from .signaling import Deployment, PublicServer
from .nat import NATConfig, NATModel
from .ws_transport import (
    LoopClock,
    WsConnection,
    WsVolunteerGateway,
    connect_websocket,
    pack_wire_frame,
    unpack_wire_frame,
)

__all__ = [
    "SizedPayload",
    "decode_binary",
    "decode_json",
    "encode_binary",
    "encode_json",
    "estimate_size",
    "oob_pack",
    "oob_unpack",
    "ShmRing",
    "CLOSE",
    "CONTROL",
    "DATA",
    "HEARTBEAT",
    "Message",
    "DEFAULT_INTERVAL",
    "DEFAULT_TIMEOUT",
    "HeartbeatMonitor",
    "ChannelEndpoint",
    "SimChannel",
    "WebSocketConnection",
    "WebRTCConnection",
    "Deployment",
    "PublicServer",
    "NATConfig",
    "NATModel",
    "LoopClock",
    "WsConnection",
    "WsVolunteerGateway",
    "connect_websocket",
    "pack_wire_frame",
    "unpack_wire_frame",
]
