"""Simulated WebSocket connections.

WebSocket is Pando's default transport when the volunteer can reach the
master directly (same LAN, or a VPN such as the Grid5000 deployment of the
paper, section 5.3).  Establishment costs a TCP handshake plus the HTTP
upgrade, i.e. roughly two round trips, after which frames flow with the
plain link latency and heartbeats (ping/pong) detect disconnections.
"""

from __future__ import annotations

from .channel import SimChannel

__all__ = ["WebSocketConnection"]


class WebSocketConnection(SimChannel):
    """A master <-> volunteer WebSocket connection."""

    #: TCP handshake + HTTP upgrade
    SETUP_ROUND_TRIPS = 2.0
    protocol = "ws"
