"""Real websocket volunteer transport on the asyncio event loop.

Everything else under ``repro.net`` simulates the network; this module is the
wire.  It binds an actual RFC 6455 websocket server (stdlib-only: the
handshake is HTTP + SHA-1, frames are length-prefixed with client-side
masking, heartbeats are real ping/pong control frames) to the PR-4 event-loop
primitives so **external worker processes attach to a live master over
TCP** — the paper's deployment story (volunteers on the same LAN or VPN),
minus the browser:

* :class:`WsConnection` — one established websocket, either side, on an
  ``asyncio`` stream pair.  Sends are synchronous buffered writes (safe on
  the loop thread); receives are awaited, with ping/pong answered inline.
* :func:`pack_wire_frame` / :func:`unpack_wire_frame` — the Pando wire
  format inside each websocket binary frame: a length-prefixed pickled
  control record followed by the out-of-band payload buffers that
  :func:`~repro.net.serialization.oob_pack` split off, so large
  ``bytes``/array values are framed without a pickle copy.  One DATA frame
  carries one :class:`~repro.net.serialization.Batch` of stream values —
  the same batched framing the pool and simulated channels use.
* :class:`LoopClock` — a real-clock facade (``now`` + ``call_later``) over
  the asyncio loop, so the unchanged
  :class:`~repro.net.heartbeat.HeartbeatMonitor` drives membership on wall
  -clock time: pings every *interval*, crash-stop suspicion after *timeout*
  of silence.
* :class:`WsVolunteerGateway` — the server, registered on an
  :class:`~repro.sched.event_loop.EventLoopScheduler` as an
  :class:`~repro.sched.sources.EventSource`.  Each volunteer that completes
  the hello/welcome exchange is attached to the
  :class:`~repro.core.distributed_map.DistributedMap` as an ordinary
  channel worker: results flow back through a thread-safe
  :class:`~repro.sched.sources.PushablePort`, and a volunteer that vanishes
  mid-frame (socket reset, SIGKILL, heartbeat timeout) fails its sub-stream
  so the lender re-lends its borrowed values and the sharded master
  rebalances — the existing crash-stop paths, now triggered by a real wire.

Trust model: frames carry pickled control records, exactly as trusting as
the paper's deployment where volunteers download and execute the master's
code bundle.  Run it between mutually-trusting hosts (LAN/VPN), not on the
open internet.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import itertools
import os
import pickle
import struct
import threading
from collections import deque
from contextlib import suppress
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..analysis.annotations import any_thread, loop_only
from ..errors import ConnectionClosed, PandoError, ProtocolError, TaskError
from ..pullstream.duplex import Duplex
from ..pullstream.protocol import DONE, End, is_error
from ..pullstream.pushable import Pushable
from ..pullstream.sinks import eager_pump
from ..sched.sources import EventSource, PushablePort
from .heartbeat import DEFAULT_INTERVAL, DEFAULT_TIMEOUT, HeartbeatMonitor
from .serialization import OOB_MIN_BYTES, Batch, oob_pack, oob_unpack

__all__ = [
    "LoopClock",
    "WsConnection",
    "WsVolunteerGateway",
    "connect_websocket",
    "pack_wire_frame",
    "unpack_wire_frame",
    "parse_ws_url",
    "WIRE_VERSION",
]

# --------------------------------------------------------------------------
# RFC 6455 essentials
# --------------------------------------------------------------------------

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Refuse frames larger than this (a corrupted length prefix must fail
#: loudly, not allocate gigabytes).
DEFAULT_MAX_FRAME = 256 * 1024 * 1024

#: Bump when the control-record schema changes incompatibly.
WIRE_VERSION = 1

# Control-record kinds of the volunteer protocol.
HELLO = "hello"
WELCOME = "welcome"
DATA = "data"
RESULT = "result"
TASK_ERROR = "task-error"
END = "end"
BYE = "bye"


def _accept_key(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _apply_mask(payload: bytes, mask: bytes) -> bytes:
    """XOR *payload* with the repeating 4-byte *mask* (vectorised)."""
    n = len(payload)
    if n == 0:
        return b""
    repeated = (mask * (n // 4 + 1))[:n]
    return (
        int.from_bytes(payload, "little") ^ int.from_bytes(repeated, "little")
    ).to_bytes(n, "little")


def encode_ws_frame(opcode: int, payload: bytes, mask: bool) -> bytes:
    """Encode one unfragmented websocket frame (FIN set)."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = _apply_mask(bytes(payload), key)
    return bytes(header) + bytes(payload)


async def _read_ws_frame(
    reader: asyncio.StreamReader, max_frame: int
) -> Tuple[bool, int, bytes]:
    """Read one frame; returns ``(fin, opcode, unmasked payload)``."""
    head = await reader.readexactly(2)
    fin = bool(head[0] & 0x80)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        (length,) = struct.unpack("!H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await reader.readexactly(8))
    if length > max_frame:
        raise ProtocolError(
            f"websocket frame of {length} bytes exceeds the {max_frame} byte limit"
        )
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key is not None:
        payload = _apply_mask(payload, key)
    return fin, opcode, payload


async def server_handshake(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, timeout: float = 10.0
) -> Dict[str, str]:
    """Answer the HTTP upgrade request; returns the request headers."""
    request = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout)
    lines = request.decode("latin-1").split("\r\n")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    key = headers.get("sec-websocket-key")
    if (
        "websocket" not in headers.get("upgrade", "").lower()
        or not lines[0].startswith("GET ")
        or key is None
    ):
        writer.write(b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n")
        raise ProtocolError(f"not a websocket upgrade request: {lines[0]!r}")
    writer.write(
        (
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {_accept_key(key)}\r\n"
            "\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    return headers


async def client_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    host: str,
    path: str = "/",
    timeout: float = 10.0,
) -> None:
    """Send the HTTP upgrade request and validate the 101 response."""
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    response = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout)
    lines = response.decode("latin-1").split("\r\n")
    if " 101 " not in lines[0] + " ":
        raise ProtocolError(f"websocket upgrade refused: {lines[0]!r}")
    accept = None
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep and name.strip().lower() == "sec-websocket-accept":
            accept = value.strip()
    if accept != _accept_key(key):
        raise ProtocolError("websocket upgrade returned a bad Sec-WebSocket-Accept")


def parse_ws_url(url: str) -> Tuple[str, int, str]:
    """Split a ``ws://host:port/path`` URL into ``(host, port, path)``."""
    parts = urlsplit(url)
    if parts.scheme != "ws":
        raise PandoError(f"unsupported url {url!r}: only ws:// is implemented")
    if not parts.hostname:
        raise PandoError(f"url {url!r} has no host")
    return parts.hostname, parts.port or 80, parts.path or "/"


# --------------------------------------------------------------------------
# Wire frames: length-prefixed control record + out-of-band payloads
# --------------------------------------------------------------------------

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _buffer_length(buffer: Any) -> int:
    if isinstance(buffer, memoryview):
        return buffer.nbytes
    return len(buffer)


def pack_wire_frame(
    record: Dict[str, Any],
    values: Optional[List[Any]] = None,
    oob_min_bytes: int = OOB_MIN_BYTES,
) -> bytes:
    """Encode a control *record* (plus optional stream *values*) for the wire.

    Layout: ``u32 control_length | pickle(control) | payload buffers``.
    Each value with a flat byte representation of at least *oob_min_bytes*
    is split off by :func:`~repro.net.serialization.oob_pack`: the control
    record keeps ``("oob", tag, meta, length)`` and the raw buffer is
    appended after the pickle, so big payloads are never copied through the
    pickler.  Everything else travels inline as ``("inline", value)``.
    """
    buffers: List[Any] = []
    if values is not None:
        entries: List[Tuple[Any, ...]] = []
        for value in values:
            packed = oob_pack(value)
            if packed is None:
                entries.append(("inline", value))
                continue
            tag, buffer, meta = packed
            length = _buffer_length(buffer)
            if length >= oob_min_bytes:
                buffers.append(buffer)
                entries.append(("oob", tag, meta, length))
            elif isinstance(value, memoryview):
                # Unpicklable, but too small to be worth a payload section:
                # inline the materialised bytes (same shape oob_unpack makes).
                entries.append(("inline", bytes(value)))
            else:
                entries.append(("inline", value))
        record = dict(record, values=entries)
    control = pickle.dumps(record, protocol=_PICKLE_PROTOCOL)
    return b"".join([struct.pack("!I", len(control)), control, *map(bytes, buffers)])


def unpack_wire_frame(payload: Any) -> Dict[str, Any]:
    """Inverse of :func:`pack_wire_frame`; materialises the values list."""
    view = memoryview(payload)
    (control_length,) = struct.unpack_from("!I", view, 0)
    record = pickle.loads(view[4 : 4 + control_length])
    entries = record.get("values")
    if entries is not None:
        offset = 4 + control_length
        values: List[Any] = []
        for entry in entries:
            if entry[0] == "inline":
                values.append(entry[1])
            else:
                _kind, tag, meta, length = entry
                values.append(
                    oob_unpack(tag, view[offset : offset + length], meta, copy=True)
                )
                offset += length
        record["values"] = values
    return record


# --------------------------------------------------------------------------
# One established websocket
# --------------------------------------------------------------------------


class WsConnection:
    """One websocket on an asyncio stream pair (either side of the wire).

    Sends are plain buffered ``StreamWriter.write`` calls — safe to issue
    synchronously from the dispatch thread, with back-pressure provided at
    the protocol level by the :class:`~repro.core.limiter.Limiter` window
    (at most *window* frames are ever un-answered).  :meth:`recv` awaits
    the next data message, answering pings and counting pongs on the way;
    every received frame also notifies the traffic listener, which is how
    the heartbeat monitor's ``touch`` sees data frames as liveness proof.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_side: bool,
        peer: str = "?",
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._client_side = client_side
        self.peer = peer
        self.max_frame = max_frame
        self.closed = False
        self._close_sent = False
        self._fragments: List[bytes] = []
        self._on_traffic: Optional[Callable[[], None]] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.pings_sent = 0
        self.pings_received = 0
        self.pongs_received = 0

    # -- sending (synchronous, buffered) -----------------------------------
    def _write_frame(self, opcode: int, payload: bytes) -> None:
        if self.closed or self._writer.is_closing():
            raise ConnectionClosed(f"websocket to {self.peer} is closed")
        frame = encode_ws_frame(opcode, payload, mask=self._client_side)
        self._writer.write(frame)
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    def send_bytes(self, payload: bytes) -> None:
        """Send one binary message (a packed wire frame)."""
        self._write_frame(OP_BINARY, payload)

    def send_ping(self) -> None:
        self._write_frame(OP_PING, b"hb")
        self.pings_sent += 1

    def send_close(self, code: int = 1000) -> None:
        if self._close_sent:
            return
        self._close_sent = True
        with suppress(Exception):
            self._write_frame(OP_CLOSE, struct.pack("!H", code))

    async def drain(self) -> None:
        """Await the transport's write buffer (volunteer-side flow control)."""
        await self._writer.drain()

    # -- receiving ----------------------------------------------------------
    def on_traffic(self, listener: Optional[Callable[[], None]]) -> None:
        """Call *listener* after every received frame (heartbeat ``touch``)."""
        self._on_traffic = listener

    async def recv(self) -> Optional[bytes]:
        """Next data message, or ``None`` once the connection is finished.

        ``None`` covers every way a websocket ends: a clean CLOSE frame, an
        EOF, or a reset — the callers distinguish graceful from crash-stop
        at the protocol layer (a ``bye`` record precedes a clean close).
        """
        if self.closed:
            return None
        try:
            while True:
                fin, opcode, payload = await _read_ws_frame(self._reader, self.max_frame)
                self.frames_received += 1
                self.bytes_received += len(payload)
                if self._on_traffic is not None:
                    self._on_traffic()
                if opcode == OP_PING:
                    self.pings_received += 1
                    with suppress(ConnectionClosed):
                        self._write_frame(OP_PONG, payload)
                elif opcode == OP_PONG:
                    self.pongs_received += 1
                elif opcode == OP_CLOSE:
                    self.send_close()
                    self.closed = True
                    return None
                elif opcode in (OP_BINARY, OP_TEXT, OP_CONT):
                    if opcode == OP_CONT:
                        if not self._fragments:
                            raise ProtocolError("continuation frame without a start")
                        self._fragments.append(payload)
                        if not fin:
                            continue
                        message = b"".join(self._fragments)
                        self._fragments = []
                        return message
                    if not fin:
                        self._fragments = [payload]
                        continue
                    return payload
                # unknown control opcodes are ignored (forward compatibility)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            self.closed = True
            return None

    # -- lifecycle ----------------------------------------------------------
    def close_transport(self) -> None:
        """Drop the TCP transport (idempotent, never raises)."""
        self.closed = True
        with suppress(Exception):
            self._writer.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        side = "client" if self._client_side else "server"
        state = "closed" if self.closed else "open"
        return f"<WsConnection {side} {state} peer={self.peer}>"


async def connect_websocket(
    url: str, timeout: float = 10.0, max_frame: int = DEFAULT_MAX_FRAME
) -> WsConnection:
    """Open and upgrade a client connection to *url* (``ws://host:port``)."""
    host, port, path = parse_ws_url(url)
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        await client_handshake(reader, writer, f"{host}:{port}", path, timeout=timeout)
    except BaseException:
        writer.close()
        raise
    return WsConnection(reader, writer, client_side=True, peer=url, max_frame=max_frame)


# --------------------------------------------------------------------------
# Real-clock heartbeat support
# --------------------------------------------------------------------------


class LoopClock:
    """Real-clock scheduler facade over an asyncio loop.

    Exposes exactly the slice of the simulation
    :class:`~repro.sim.scheduler.Scheduler` interface that
    :class:`~repro.net.heartbeat.HeartbeatMonitor` consumes — ``now`` and
    ``call_later`` returning a cancellable handle — so the same monitor
    implementation runs unchanged against wall-clock time: the timers are
    loop timers, and they fire while the scheduler's run loop is spinning.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    @property
    def now(self) -> float:
        return self._loop.time()

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Any:
        """Schedule *callback*; the returned ``TimerHandle`` has ``cancel()``."""
        return self._loop.call_later(delay, callback, *args)


# --------------------------------------------------------------------------
# The volunteer gateway (server side)
# --------------------------------------------------------------------------


class _GatewayVolunteer:
    """Master-side bookkeeping for one websocket volunteer."""

    def __init__(self, conn: WsConnection, hello: Dict[str, Any]) -> None:
        self.conn = conn
        self.hello = hello
        self.worker_id: Optional[str] = None
        self.handle: Any = None
        self.port: Optional[PushablePort] = None
        self.monitor: Optional[HeartbeatMonitor] = None
        self.record: Any = None
        #: set by the gateway dispatch once attach succeeded (or was refused)
        self.attached = asyncio.Event()
        self.rejected = False
        #: termination marker once the volunteer can no longer receive values
        self.close_reason: End = None
        self.seq = 0
        self.values_sent = 0
        self.results_received = 0
        self.task: Optional[asyncio.Task] = None
        #: master-side frame traces awaiting this volunteer's RESULT echo,
        #: keyed by frame_id — the wire copy was packed before serialize_s
        #: was recorded, so the master's dict stays authoritative
        self.inflight_traces: Dict[int, Dict[str, Any]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "lost" if self.close_reason is not None else "open"
        return f"<_GatewayVolunteer {self.worker_id} {state}>"


class WsVolunteerGateway(EventSource):
    """Accept real websocket volunteers into a :class:`DistributedMap`.

    The gateway is an :class:`~repro.sched.sources.EventSource`: connection
    handler tasks (running on the scheduler's loop whenever it spins) only
    *enqueue* membership events and push results into per-volunteer
    :class:`~repro.sched.sources.PushablePort` ingresses; every stream
    mutation — attaching the sub-stream, recording a departure — happens in
    :meth:`dispatch` on the dispatch thread, preserving the single-threaded
    pull-stream invariant.

    Lifecycle: :meth:`start` binds the server and registers the gateway
    (the URL to hand volunteers is :attr:`url`); volunteers may connect any
    time — handshakes complete while ``drive()`` spins the loop; a volunteer
    that vanishes mid-frame (reset, kill, heartbeat silence) fails its
    sub-stream, so the lender re-lends its borrowed values elsewhere; and
    :meth:`stop` (called by ``DistributedMap.close``) tears down the server
    and every connection.

    A drive with zero connected volunteers waits (the master's ordinary
    "waiting for volunteers" state) — pass ``timeout=`` to ``drive`` as the
    guard, exactly like the paper's master, which serves until someone joins.
    """

    def __init__(
        self,
        dmap: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        fn_ref: Any = None,
        frame_batch: Optional[int] = None,
        window: Optional[int] = None,
        heartbeat_interval: float = DEFAULT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_TIMEOUT,
        oob_min_bytes: int = OOB_MIN_BYTES,
        max_frame: int = DEFAULT_MAX_FRAME,
        registry: Any = None,
        name_prefix: str = "ws",
        stop_grace: float = 0.5,
    ) -> None:
        if dmap.scheduler is None:
            raise PandoError(
                "WsVolunteerGateway requires a DistributedMap with an event-"
                "loop scheduler (DistributedMap(scheduler='asyncio'))"
            )
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0:
            raise PandoError("heartbeat interval and timeout must be positive")
        self.dmap = dmap
        self.scheduler = dmap.scheduler
        self.host = host
        self.port = port
        self.fn_ref = fn_ref
        self.frame_batch = frame_batch if frame_batch is not None else dmap.batch_size
        self.window = window
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.oob_min_bytes = oob_min_bytes
        self.max_frame = max_frame
        self.name_prefix = name_prefix
        #: how long :meth:`stop` waits for in-flight byes before force-closing
        self.stop_grace = stop_grace
        if registry is None:
            # Imported lazily: repro.master imports repro.net back.
            from ..master.registry import VolunteerRegistry

            registry = VolunteerRegistry()
        #: the master's :class:`~repro.master.registry.VolunteerRegistry`
        #: (join/leave/crash records with wall-clock timestamps)
        self.registry = registry
        self.url: Optional[str] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._clock: Optional[LoopClock] = None
        self._inbox: Deque[Tuple[Any, ...]] = deque()
        self._inbox_lock = threading.Lock()
        self._volunteers: Dict[str, _GatewayVolunteer] = {}
        self._reap: List[_GatewayVolunteer] = []
        self._ids = itertools.count(1)
        # counters for tests and benches
        self.volunteers_joined = 0
        self.volunteers_left = 0
        self.volunteers_crashed = 0
        #: heartbeat-triggered suspicions (a clean run must keep this at 0)
        self.suspicions = 0
        self.frames_sent = 0
        self.values_sent = 0
        self.results_received = 0
        #: pings sent across all departed connections (liveness really ran)
        self.pings_sent = 0
        #: websocket payload bytes sent to / received from volunteers
        self.bytes_sent = 0
        self.bytes_received = 0
        #: the owning map's observability plane (frame tracing), or None
        self.obs = getattr(dmap, "obs", None)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> str:
        """Bind the websocket server and return its ``ws://`` URL."""
        if self._server is not None:
            raise PandoError("WsVolunteerGateway is already started")
        loop = self.scheduler._ensure_loop()
        self._clock = LoopClock(loop)
        self._server = self.scheduler.run_coroutine(
            asyncio.start_server(self._handle_connection, self.host, self.port)
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.url = f"ws://{self.host}:{self.port}"
        self.scheduler.register(self)
        return self.url

    def stop(self) -> None:
        """Close the server and every volunteer connection (idempotent)."""
        server, self._server = self._server, None
        volunteers = list(self._volunteers.values())
        if self.scheduler.closed:
            # The loop is gone: drop the transports synchronously.
            if server is not None:
                server.close()
            for volunteer in volunteers:
                volunteer.conn.close_transport()
            return

        async def _shutdown() -> None:
            if server is not None:
                server.close()
                await server.wait_closed()
            # The loop stops spinning the instant the last sink completes,
            # which is typically *before* the volunteers' bye frames arrive.
            # Give those byes a short grace window so a volunteer that
            # finished cleanly is recorded as a leave, not a crash.
            tasks = [
                volunteer.task
                for volunteer in volunteers
                if volunteer.task is not None and not volunteer.task.done()
            ]
            if tasks:
                await asyncio.wait(tasks, timeout=self.stop_grace)
            for volunteer in volunteers:
                if volunteer.close_reason is None:
                    volunteer.close_reason = ConnectionClosed("gateway stopped")
                volunteer.conn.send_close()
                volunteer.conn.close_transport()
            pending = [task for task in tasks if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

        if server is not None or volunteers:
            self.scheduler.run_coroutine(_shutdown())
        # Settle the membership bookkeeping the teardown just enqueued.
        while self.dispatch():
            pass

    # ------------------------------------------------------- EventSource API
    def ready(self) -> bool:
        with self._inbox_lock:
            return bool(self._inbox)

    @loop_only
    def dispatch(self) -> bool:
        with self._inbox_lock:
            if not self._inbox:
                return False
            event = self._inbox.popleft()
        kind = event[0]
        if kind == "join":
            self._attach(event[1])
        elif kind == "left":
            self._record_left(event[1], event[2])
        self._reap_ports()
        return True

    def live(self) -> bool:
        # An open server may accept a volunteer at any moment; a volunteer
        # may answer at any moment.  Only a stopped gateway with no
        # connections left cannot contribute progress.
        if self._server is not None:
            return True
        with self._inbox_lock:
            if self._inbox:
                return True
        return any(v.close_reason is None for v in self._volunteers.values())

    # --------------------------------------------------- connection handling
    @any_thread
    def _enqueue(self, event: Tuple[Any, ...]) -> None:
        with self._inbox_lock:
            self._inbox.append(event)
        self.scheduler.wake()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        try:
            await server_handshake(reader, writer)
        except Exception:
            with suppress(Exception):
                writer.close()
            return
        conn = WsConnection(
            reader, writer, client_side=False, peer=peer, max_frame=self.max_frame
        )
        try:
            payload = await asyncio.wait_for(conn.recv(), 30.0)
        except Exception:
            conn.close_transport()
            return
        if payload is None:
            conn.close_transport()
            return
        try:
            hello = unpack_wire_frame(payload)
        except Exception:
            conn.close_transport()
            return
        if hello.get("kind") != HELLO:
            conn.close_transport()
            return
        volunteer = _GatewayVolunteer(conn, hello)
        volunteer.task = asyncio.current_task()
        self._enqueue(("join", volunteer))
        await volunteer.attached.wait()
        if volunteer.rejected:
            conn.send_close()
            conn.close_transport()
            return
        crashed = True  # crash-stop unless a clean bye/close arrives
        reason: Optional[BaseException] = None
        try:
            while True:
                payload = await conn.recv()
                if payload is None:
                    reason = ConnectionClosed(
                        f"volunteer {volunteer.worker_id} connection closed"
                    )
                    break
                self.bytes_received += len(payload)
                record = unpack_wire_frame(payload)
                kind = record.get("kind")
                if kind == RESULT:
                    values = record.get("values", [])
                    volunteer.results_received += len(values)
                    self.results_received += len(values)
                    echo = record.get("trace")
                    if echo is not None and self.obs is not None:
                        # The volunteer echoed the frame's trace dict back
                        # with exec_s added: the frame is delivered now.
                        # Merge exec_s into the master-side trace kept at
                        # send time (it alone carries serialize_s); fall
                        # back to the echo if the send never recorded one.
                        trace = volunteer.inflight_traces.pop(
                            echo.get("frame_id"), None
                        )
                        if trace is not None:
                            trace["exec_s"] = echo.get("exec_s", 0.0)
                        else:
                            trace = echo
                        self.obs.observe_frame(trace)
                    frame = Batch(values) if record.get("batched") else values[0]
                    volunteer.port.push(frame)
                elif kind == TASK_ERROR:
                    reason = TaskError(
                        f"volunteer {volunteer.worker_id} task failed: "
                        f"{record.get('message') or 'unknown error'}"
                    )
                    break
                elif kind == BYE:
                    crashed = False
                    break
                # unknown kinds are ignored (forward compatibility)
        except asyncio.CancelledError:
            # gateway.stop() cancelled us; bookkeeping still runs below.
            crashed = False
        finally:
            self._finish_connection(volunteer, crashed, reason)

    def _finish_connection(
        self,
        volunteer: _GatewayVolunteer,
        crashed: bool,
        reason: Optional[BaseException],
    ) -> None:
        """Terminate the volunteer's result stream and queue the bookkeeping.

        Runs on the loop thread (handler task).  The port operations only
        enqueue — the stream machinery sees the termination on the next
        dispatch round, strictly after any results that arrived before it.
        """
        conn = volunteer.conn
        if volunteer.port is None:
            # Never attached (stop() raced the hello, or attach was refused).
            conn.close_transport()
            return
        if volunteer.close_reason is None:
            volunteer.close_reason = (
                (reason or ConnectionClosed(f"volunteer {volunteer.worker_id} lost"))
                if crashed
                else DONE
            )
        if is_error(volunteer.close_reason):
            volunteer.port.error(volunteer.close_reason)
        else:
            volunteer.port.end()
        conn.close_transport()
        self._enqueue(("left", volunteer, is_error(volunteer.close_reason)))

    def _suspect(self, volunteer: _GatewayVolunteer) -> None:
        """Heartbeat timeout: declare the volunteer dead (crash-stop)."""
        if volunteer.close_reason is not None:
            return
        self.suspicions += 1
        if self.obs is not None:
            self.obs.trace.emit(
                "heartbeat_suspicion",
                worker=volunteer.worker_id,
                timeout=self.heartbeat_timeout,
            )
        error = ConnectionClosed(
            f"volunteer {volunteer.worker_id} suspected: no traffic for "
            f"{self.heartbeat_timeout}s"
        )
        volunteer.close_reason = error
        if volunteer.port is not None:
            volunteer.port.error(error)
        # Dropping the transport unblocks the reader task, whose exit path
        # records the departure.
        volunteer.conn.close_transport()

    # ------------------------------------------------------------- dispatch
    @loop_only
    def _attach(self, volunteer: _GatewayVolunteer) -> None:
        """Wire one hello'd volunteer into the map (dispatch thread)."""
        hello = volunteer.hello
        tabs = max(1, int(hello.get("tabs", 1) or 1))
        worker_id = self._claim_worker_id(hello.get("name"))
        port: Optional[PushablePort] = None
        try:
            pushable = Pushable()
            port = PushablePort(self.scheduler, pushable)
            self.scheduler.register(port)
            volunteer.port = port
            volunteer.worker_id = worker_id
            welcome = {
                "kind": WELCOME,
                "version": WIRE_VERSION,
                "worker_id": worker_id,
                "fn_ref": self.fn_ref,
                "frame_batch": self.frame_batch,
                "heartbeat_interval": self.heartbeat_interval,
                "heartbeat_timeout": self.heartbeat_timeout,
            }
            volunteer.conn.send_bytes(pack_wire_frame(welcome))
            window = self.window if self.window is not None else tabs + 1
            volunteer.handle = self.dmap.add_channel(
                Duplex(source=pushable, sink=self._make_ws_sink(volunteer)),
                worker_id=worker_id,
                batch_size=window,
                frame_batch=self.frame_batch,
            )
        except Exception:
            # Late attach (map already terminated) or a dead socket: refuse.
            volunteer.rejected = True
            volunteer.port = None
            if port is not None:
                self.scheduler.unregister(port)
            volunteer.attached.set()
            return
        self._volunteers[worker_id] = volunteer
        volunteer.record = self.registry.register(
            host=volunteer.conn.peer,
            device_name=str(hello.get("name") or worker_id),
            protocol="ws",
            joined_at=self._clock.now,
            tabs=tabs,
        )
        monitor = HeartbeatMonitor(
            self._clock,
            send=volunteer.conn.send_ping,
            on_failure=lambda: self._suspect(volunteer),
            interval=self.heartbeat_interval,
            timeout=self.heartbeat_timeout,
        )
        volunteer.monitor = monitor
        volunteer.conn.on_traffic(monitor.touch)
        monitor.start()
        self.volunteers_joined += 1
        volunteer.attached.set()

    def _claim_worker_id(self, requested: Any) -> str:
        base = str(requested) if requested else f"{self.name_prefix}-{next(self._ids)}"
        worker_id = base
        suffix = itertools.count(2)
        while worker_id in self.dmap.workers:
            worker_id = f"{base}-{next(suffix)}"
        return worker_id

    @loop_only
    def _record_left(self, volunteer: _GatewayVolunteer, crashed: bool) -> None:
        if volunteer.monitor is not None:
            volunteer.monitor.stop()
        if volunteer.record is not None:
            self.registry.mark_left(
                volunteer.record.volunteer_id, self._clock.now, crashed=crashed
            )
        if crashed:
            self.volunteers_crashed += 1
        else:
            self.volunteers_left += 1
        self.pings_sent += volunteer.conn.pings_sent
        if volunteer.worker_id is not None:
            self._volunteers.pop(volunteer.worker_id, None)
        self._reap.append(volunteer)

    def _reap_ports(self) -> None:
        """Unregister the ports of departed volunteers once they drained."""
        still_waiting: List[_GatewayVolunteer] = []
        for volunteer in self._reap:
            port = volunteer.port
            if port is not None and port.live():
                still_waiting.append(volunteer)  # queued results not yet ported
            elif port is not None:
                self.scheduler.unregister(port)
        self._reap = still_waiting

    # ------------------------------------------------------------- the sink
    def _make_ws_sink(self, volunteer: _GatewayVolunteer) -> Callable[[Any], None]:
        """The duplex sink sending sub-stream values to one volunteer.

        Mirrors the simulated channel sink: eagerly drain the (limited)
        upstream, one wire frame per value-or-:class:`Batch`; when the
        volunteer is gone, abort the upstream with the close reason so the
        lender re-lends whatever this volunteer still borrowed.
        """
        conn = volunteer.conn

        def on_value(frame: Any) -> None:
            batched = isinstance(frame, Batch)
            values = list(frame.values) if batched else [frame]
            volunteer.seq += 1
            record = {"kind": DATA, "seq": volunteer.seq, "batched": batched}
            trace = (
                self.obs.begin_frame("ws", values=len(values))
                if self.obs is not None
                else None
            )
            if trace is not None:
                # The trace dict rides the wire record; the volunteer echoes
                # it back in the RESULT record with exec_s added.
                record["trace"] = trace
            try:
                packed = pack_wire_frame(
                    record, values, oob_min_bytes=self.oob_min_bytes
                )
                conn.send_bytes(packed)
            except Exception as exc:
                # The socket died under the write: crash-stop.  The pump
                # aborts the upstream through closed_reason on its next turn.
                if volunteer.close_reason is None:
                    volunteer.close_reason = ConnectionClosed(
                        f"write to volunteer {volunteer.worker_id} failed: {exc!r}"
                    )
                return
            if trace is not None:
                self.obs.end_serialize(trace)
                self.obs.observe_payload("ws", len(packed))
                volunteer.inflight_traces[trace["frame_id"]] = trace
            self.bytes_sent += len(packed)
            volunteer.values_sent += len(values)
            self.values_sent += len(values)
            self.frames_sent += 1

        def on_end(end: End) -> None:
            # Upstream terminated (all work done, or the map aborted): tell
            # the volunteer to stop waiting for frames and go home.
            if volunteer.close_reason is None and not conn.closed:
                with suppress(Exception):
                    conn.send_bytes(
                        pack_wire_frame(
                            {"kind": END, "error": repr(end) if is_error(end) else None}
                        )
                    )

        def closed_reason() -> End:
            reason = volunteer.close_reason
            if reason is None:
                return None
            return reason if is_error(reason) else DONE

        def sink(read: Any) -> None:
            eager_pump(read, on_value, on_end, closed_reason)

        sink.pull_role = "sink"
        return sink

    # ----------------------------------------------------------- inspection
    @property
    def active_volunteers(self) -> List[str]:
        """Worker ids of the currently attached volunteers."""
        return [
            worker_id
            for worker_id, volunteer in self._volunteers.items()
            if volunteer.close_reason is None
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "open" if self._server is not None else "stopped"
        return (
            f"<WsVolunteerGateway {state} url={self.url} "
            f"volunteers={len(self._volunteers)} joined={self.volunteers_joined}>"
        )
