"""repro — a Python reproduction of *Pando: Personal Volunteer Computing in
Browsers* (Lavoie, Hendren, Desprez, Correia — Middleware 2019).

The package provides:

* :mod:`repro.pullstream` — the pull-stream design pattern (sources, throughs,
  sinks, async-map, pushable, duplex);
* :mod:`repro.core` — the paper's contribution: ``StreamLender``, ``Limiter``,
  ``stubborn`` and ``DistributedMap``;
* :mod:`repro.sched` — the asyncio scheduler subsystem: one event loop
  driving pools, simulated channels and pushable ports concurrently;
* :mod:`repro.net` — simulated WebSocket/WebRTC channels, heartbeats,
  signalling server and NAT model;
* :mod:`repro.devices` — the Table-2 device catalogue and simulated devices;
* :mod:`repro.sim` — virtual clock, discrete-event scheduler, network
  profiles, failure injection, metrics and deployment scenarios;
* :mod:`repro.master` / :mod:`repro.worker` — the Pando master process and
  browser-tab volunteers;
* :mod:`repro.apps` — the seven applications of the paper's section 4;
* :mod:`repro.cli` — the Unix-pipeline command-line interface;
* :mod:`repro.bench` — the harness regenerating every table and figure of the
  evaluation.

Quickstart (local, in-process workers)::

    from repro import DistributedMap, pull, values, collect

    dmap = DistributedMap(batch_size=2)
    result = pull(values(range(10)), dmap, collect())
    dmap.add_local_worker(lambda x, cb: cb(None, x * x))
    assert result.result() == [x * x for x in range(10)]
"""

from . import pullstream
from .pullstream import (
    DONE,
    async_map,
    batch,
    collect,
    count,
    drain,
    filter_,
    from_iterable,
    infinite,
    map_,
    pull,
    take,
    through,
    values,
)
from .core import (
    DistributedMap,
    Limiter,
    ReorderBuffer,
    StreamLender,
    UnorderedStreamLender,
    WorkerHandle,
    limit,
    stubborn,
)
from .master import Bundle, MasterConfig, PandoMaster, bundle_function, bundle_module
from .pool import ProcessPoolWorker
from .sched import EventLoopScheduler
from .errors import (
    BundlingError,
    ConnectionClosed,
    DeploymentError,
    ExternalTransferError,
    PandoError,
    ProtocolError,
    StreamAborted,
    TaskError,
    WorkerCrashed,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # pull-stream essentials re-exported at top level
    "pullstream",
    "DONE",
    "async_map",
    "batch",
    "collect",
    "count",
    "drain",
    "filter_",
    "from_iterable",
    "infinite",
    "map_",
    "pull",
    "take",
    "through",
    "values",
    # core abstractions
    "DistributedMap",
    "Limiter",
    "ReorderBuffer",
    "StreamLender",
    "UnorderedStreamLender",
    "WorkerHandle",
    "limit",
    "stubborn",
    # process-pool backend
    "ProcessPoolWorker",
    # event-loop scheduler
    "EventLoopScheduler",
    # master
    "Bundle",
    "MasterConfig",
    "PandoMaster",
    "bundle_function",
    "bundle_module",
    # errors
    "BundlingError",
    "ConnectionClosed",
    "DeploymentError",
    "ExternalTransferError",
    "PandoError",
    "ProtocolError",
    "StreamAborted",
    "TaskError",
    "WorkerCrashed",
]
