"""Virtual clock for the discrete-event simulator.

All simulated components (network channels, devices, failure schedules)
reference the same :class:`VirtualClock`.  Time is a float number of seconds;
it only moves forward when the scheduler processes an event, so a five-minute
Table-2 measurement window (paper section 5.1) runs in milliseconds of real
time.

Components that interleave simulated time with real time — the asyncio
:class:`~repro.sched.EventLoopScheduler` pacing a simulation against the
wall clock, metrics collectors — observe the clock through
:meth:`VirtualClock.on_advance` listeners instead of polling it.
"""

from __future__ import annotations

from typing import Callable, List

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonically increasing simulated time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._listeners: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def on_advance(self, listener: Callable[[float, float], None]) -> None:
        """Register ``listener(previous, now)``, called after every advance.

        Listeners fire only when time actually moved (a zero-delta advance is
        silent), so an event cascade at one instant does not spam observers.
        """
        self._listeners.append(listener)

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to *timestamp*.

        Raises ``ValueError`` if that would move time backwards, which would
        indicate a scheduler bug.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move time backwards: {timestamp} < {self._now}"
            )
        previous, self._now = self._now, float(timestamp)
        if self._now > previous:
            for listener in list(self._listeners):
                listener(previous, self._now)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by *delta* seconds."""
        if delta < 0:
            raise ValueError(f"cannot advance by a negative delta: {delta}")
        self.advance_to(self._now + float(delta))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<VirtualClock t={self._now:.6f}>"
