"""Virtual clock for the discrete-event simulator.

All simulated components (network channels, devices, failure schedules)
reference the same :class:`VirtualClock`.  Time is a float number of seconds;
it only moves forward when the scheduler processes an event, so a five-minute
Table-2 measurement window (paper section 5.1) runs in milliseconds of real
time.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonically increasing simulated time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to *timestamp*.

        Raises ``ValueError`` if that would move time backwards, which would
        indicate a scheduler bug.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move time backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by *delta* seconds."""
        if delta < 0:
            raise ValueError(f"cannot advance by a negative delta: {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<VirtualClock t={self._now:.6f}>"
