"""Discrete-event simulation runtime (clock, scheduler, network, failures)."""

from .clock import VirtualClock
from .scheduler import ScheduledEvent, Scheduler
from .network import (
    LAN_PROFILE,
    LOOPBACK_PROFILE,
    LinkProfile,
    NetworkModel,
    VPN_PROFILE,
    WAN_PROFILE,
    profile_for_setting,
)
from .failures import ChurnModel, FailureEvent, FailureSchedule
from .metrics import MetricsCollector, ThroughputReport, WorkerMetrics

# NOTE: like .scenario, the .matrix module is imported directly
# (``repro.sim.matrix``) rather than re-exported here: both sit above the
# master/devices layers, which this package is imported *by*.

__all__ = [
    "VirtualClock",
    "ScheduledEvent",
    "Scheduler",
    "LAN_PROFILE",
    "LOOPBACK_PROFILE",
    "LinkProfile",
    "NetworkModel",
    "VPN_PROFILE",
    "WAN_PROFILE",
    "profile_for_setting",
    "ChurnModel",
    "FailureEvent",
    "FailureSchedule",
    "MetricsCollector",
    "ThroughputReport",
    "WorkerMetrics",
]
