"""Failure injection for simulated deployments.

Pando assumes crash-stop failures detected through heartbeats (paper
section 2.3): a browser tab is closed or the device loses connectivity, and
the values it was processing are re-submitted to other workers.  The classes
below describe *when* such failures happen so that scenarios (Figure 4, the
fault-tolerance tests, the replication ablation) can inject them
deterministically or randomly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["FailureEvent", "FailureSchedule", "ChurnModel"]


@dataclass(frozen=True)
class FailureEvent:
    """A single crash (or rejoin) of a named volunteer."""

    time: float
    worker_id: str
    kind: str = "crash"  # "crash" | "leave" | "join"

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "leave", "join"):
            raise ValueError(f"unknown failure event kind: {self.kind!r}")


class FailureSchedule:
    """An explicit list of failure events, ordered by time."""

    def __init__(self, events: Optional[Sequence[FailureEvent]] = None) -> None:
        self._events: List[FailureEvent] = sorted(
            events or [], key=lambda event: event.time
        )

    def add(self, event: FailureEvent) -> "FailureSchedule":
        """Insert an event, keeping the schedule sorted."""
        self._events.append(event)
        self._events.sort(key=lambda item: item.time)
        return self

    def crash(self, time: float, worker_id: str) -> "FailureSchedule":
        """Convenience: schedule a crash of *worker_id* at *time*."""
        return self.add(FailureEvent(time=time, worker_id=worker_id, kind="crash"))

    def join(self, time: float, worker_id: str) -> "FailureSchedule":
        """Convenience: schedule *worker_id* joining at *time*."""
        return self.add(FailureEvent(time=time, worker_id=worker_id, kind="join"))

    def leave(self, time: float, worker_id: str) -> "FailureSchedule":
        """Convenience: schedule a graceful departure of *worker_id* at *time*."""
        return self.add(FailureEvent(time=time, worker_id=worker_id, kind="leave"))

    @property
    def events(self) -> List[FailureEvent]:
        return list(self._events)

    def events_for(self, worker_id: str) -> List[FailureEvent]:
        """Events concerning one worker."""
        return [event for event in self._events if event.worker_id == worker_id]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


class ChurnModel:
    """Generate random crash/rejoin schedules for churn experiments.

    Each worker crashes after an exponentially-distributed up-time with mean
    ``mean_uptime`` and, when ``rejoin`` is enabled, returns after an
    exponentially-distributed down-time with mean ``mean_downtime``.
    """

    def __init__(
        self,
        mean_uptime: float,
        mean_downtime: float = 0.0,
        rejoin: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if mean_uptime <= 0:
            raise ValueError("mean_uptime must be positive")
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.rejoin = rejoin
        self._rng = random.Random(seed)

    def schedule_for(
        self,
        worker_ids: Sequence[str],
        horizon: float,
        start: float = 0.0,
    ) -> FailureSchedule:
        """Generate a schedule covering ``[start, start + horizon)``."""
        schedule = FailureSchedule()
        for worker_id in worker_ids:
            time = start
            alive = True
            while time < start + horizon:
                if alive:
                    time += self._rng.expovariate(1.0 / self.mean_uptime)
                    if time >= start + horizon:
                        break
                    schedule.crash(time, worker_id)
                    alive = False
                    if not self.rejoin:
                        break
                else:
                    downtime = (
                        self._rng.expovariate(1.0 / self.mean_downtime)
                        if self.mean_downtime > 0
                        else 0.0
                    )
                    time += downtime
                    if time >= start + horizon:
                        break
                    schedule.add(
                        FailureEvent(time=time, worker_id=worker_id, kind="join")
                    )
                    alive = True
        return schedule
