"""Failure injection for simulated deployments.

Pando assumes crash-stop failures detected through heartbeats (paper
section 2.3): a browser tab is closed or the device loses connectivity, and
the values it was processing are re-submitted to other workers.  The classes
below describe *when* such failures happen so that scenarios (Figure 4, the
fault-tolerance tests, the replication ablation) can inject them
deterministically or randomly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["FailureEvent", "FailureSchedule", "ChurnModel"]


@dataclass(frozen=True)
class FailureEvent:
    """A single crash, departure, (re)join or slowdown of a named volunteer.

    ``factor`` only applies to ``"slowdown"`` events: it multiplies the
    device's task durations from the event onward (2.0 = half speed), the
    straggler regime of the paper's crypto-search evaluation.
    """

    time: float
    worker_id: str
    kind: str = "crash"  # "crash" | "leave" | "join" | "slowdown"
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "leave", "join", "slowdown"):
            raise ValueError(f"unknown failure event kind: {self.kind!r}")
        if self.kind == "slowdown":
            if self.factor is None or self.factor <= 0:
                raise ValueError("slowdown events need a positive factor")
        elif self.factor is not None:
            raise ValueError(f"{self.kind} events do not take a factor")


class FailureSchedule:
    """An explicit list of failure events, ordered by time."""

    def __init__(self, events: Optional[Sequence[FailureEvent]] = None) -> None:
        self._events: List[FailureEvent] = sorted(
            events or [], key=lambda event: event.time
        )

    def add(self, event: FailureEvent) -> "FailureSchedule":
        """Insert an event, keeping the schedule sorted."""
        self._events.append(event)
        self._events.sort(key=lambda item: item.time)
        return self

    def crash(self, time: float, worker_id: str) -> "FailureSchedule":
        """Convenience: schedule a crash of *worker_id* at *time*."""
        return self.add(FailureEvent(time=time, worker_id=worker_id, kind="crash"))

    def join(self, time: float, worker_id: str) -> "FailureSchedule":
        """Convenience: schedule *worker_id* joining at *time*."""
        return self.add(FailureEvent(time=time, worker_id=worker_id, kind="join"))

    def leave(self, time: float, worker_id: str) -> "FailureSchedule":
        """Convenience: schedule a graceful departure of *worker_id* at *time*."""
        return self.add(FailureEvent(time=time, worker_id=worker_id, kind="leave"))

    def slowdown(self, time: float, worker_id: str, factor: float) -> "FailureSchedule":
        """Convenience: make *worker_id* a straggler (``factor``× slower)."""
        return self.add(
            FailureEvent(time=time, worker_id=worker_id, kind="slowdown", factor=factor)
        )

    def extend(self, other: "FailureSchedule") -> "FailureSchedule":
        """Merge *other*'s events into this schedule, keeping it sorted."""
        self._events.extend(other._events)
        self._events.sort(key=lambda item: item.time)
        return self

    @property
    def events(self) -> List[FailureEvent]:
        return list(self._events)

    def events_for(self, worker_id: str) -> List[FailureEvent]:
        """Events concerning one worker."""
        return [event for event in self._events if event.worker_id == worker_id]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


class ChurnModel:
    """Generate random crash/rejoin schedules for churn experiments.

    Each worker crashes after an exponentially-distributed up-time with mean
    ``mean_uptime`` and, when ``rejoin`` is enabled, returns after an
    exponentially-distributed down-time with mean ``mean_downtime``.
    """

    def __init__(
        self,
        mean_uptime: float,
        mean_downtime: float = 0.0,
        rejoin: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if mean_uptime <= 0:
            raise ValueError("mean_uptime must be positive")
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.rejoin = rejoin
        self._rng = random.Random(seed)

    def schedule_for(
        self,
        worker_ids: Sequence[str],
        horizon: float,
        start: float = 0.0,
    ) -> FailureSchedule:
        """Generate a schedule covering ``[start, start + horizon)``."""
        schedule = FailureSchedule()
        for worker_id in worker_ids:
            time = start
            alive = True
            while time < start + horizon:
                if alive:
                    time += self._rng.expovariate(1.0 / self.mean_uptime)
                    if time >= start + horizon:
                        break
                    schedule.crash(time, worker_id)
                    alive = False
                    if not self.rejoin:
                        break
                else:
                    downtime = (
                        self._rng.expovariate(1.0 / self.mean_downtime)
                        if self.mean_downtime > 0
                        else 0.0
                    )
                    time += downtime
                    if time >= start + horizon:
                        break
                    schedule.add(
                        FailureEvent(time=time, worker_id=worker_id, kind="join")
                    )
                    alive = True
        return schedule

    def waves(
        self,
        worker_ids: Sequence[str],
        horizon: float,
        period: float,
        duty: float = 0.5,
        jitter: float = 0.0,
        participation: float = 1.0,
        start: float = 0.0,
    ) -> FailureSchedule:
        """Diurnal churn: the fleet leaves and rejoins in periodic waves.

        Every *period* virtual seconds a wave starts; each worker joins the
        wave with probability *participation*, leaves near the wave front
        and rejoins after ``duty * period`` (its "night").  *jitter* spreads
        the individual departures/returns inside the wave; it is clamped so
        every worker's events stay causally valid (leave strictly before
        rejoin, rejoin strictly before the next wave's leave).
        """
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= participation <= 1.0:
            raise ValueError("participation must be in [0, 1]")
        off = duty * period
        # Half the off-window and half the on-window bound the spread:
        # leave < wave + off <= rejoin and rejoin < wave + period.
        jitter = min(jitter, off / 2, (period - off) / 2)
        schedule = FailureSchedule()
        for worker_id in worker_ids:
            wave = start
            while wave < start + horizon:
                wave_start = wave
                wave += period
                if participation < 1.0 and self._rng.random() >= participation:
                    continue
                spread = self._rng.uniform(0, jitter) if jitter > 0 else 0.0
                leave_time = wave_start + spread
                spread = self._rng.uniform(0, jitter) if jitter > 0 else 0.0
                join_time = wave_start + off + spread
                if leave_time >= start + horizon:
                    break
                schedule.leave(leave_time, worker_id)
                if join_time >= start + horizon:
                    break
                schedule.join(join_time, worker_id)
        return schedule

    def partitions(
        self,
        worker_ids: Sequence[str],
        windows: Sequence[tuple],
        fraction: float = 1.0,
    ) -> FailureSchedule:
        """Network partitions that heal: whole groups vanish and return.

        *windows* is a sequence of ``(begin, heal)`` pairs; during each one
        every selected worker (probability *fraction*) goes silent at
        ``begin`` — crash-stop, exactly what a partition looks like from the
        master — and rejoins at ``heal``.  All members share the partition's
        timestamps on purpose: simultaneous events are the stress case for
        the scheduler's same-tick FIFO and the lender's rebalancing.
        Windows must not overlap.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        ordered = sorted(windows, key=lambda window: window[0])
        previous_heal = None
        for begin, heal in ordered:
            if begin >= heal:
                raise ValueError(f"partition window ({begin}, {heal}) never heals")
            if previous_heal is not None and begin < previous_heal:
                raise ValueError("partition windows overlap")
            previous_heal = heal
        schedule = FailureSchedule()
        for begin, heal in ordered:
            for worker_id in worker_ids:
                if fraction < 1.0 and self._rng.random() >= fraction:
                    continue
                schedule.crash(begin, worker_id)
                schedule.join(heal, worker_id)
        return schedule

    def stragglers(
        self,
        worker_ids: Sequence[str],
        time: float,
        factor: float,
        count: Optional[int] = None,
    ) -> FailureSchedule:
        """Skewed stragglers: slow a random subset down by *factor*.

        Defaults to roughly a tenth of the fleet (at least one worker).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if count is None:
            count = max(1, len(worker_ids) // 10)
        if count > len(worker_ids):
            raise ValueError("count exceeds the number of workers")
        schedule = FailureSchedule()
        for worker_id in self._rng.sample(list(worker_ids), count):
            schedule.slowdown(time, worker_id, factor)
        return schedule
