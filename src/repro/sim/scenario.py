"""Deployment scenarios: build and run complete simulated Pando deployments.

A :class:`DeploymentScenario` assembles every piece of the system — master,
public server, volunteers with their devices, network model, failure
schedule — for one of the paper's three settings (LAN, VPN, WAN) and runs it
in virtual time.  Two modes are provided:

* :meth:`DeploymentScenario.run_measurement` reproduces the paper's
  methodology (section 5.1): an effectively infinite input stream is
  processed for a fixed measurement window after a warm-up, and per-worker
  throughput is derived from the number of items each worker completed —
  this regenerates the rows of Table 2;
* :meth:`DeploymentScenario.run_to_completion` processes a finite list of
  inputs until the output stream ends — used by integration tests, the
  Figure-4 deployment example and the fault-tolerance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..apps.base import Application
from ..devices.profiles import DeviceProfile, devices_for_setting
from ..errors import DeploymentError
from ..master.bundler import bundle_function
from ..master.master import MasterConfig, PandoMaster
from ..net.signaling import PublicServer
from ..pullstream import collect, drain, from_iterable, pull
from ..worker.volunteer import SimVolunteer
from .failures import FailureSchedule
from .metrics import MetricsCollector, ThroughputReport
from .network import NetworkModel, profile_for_setting
from .scheduler import Scheduler

__all__ = ["ScenarioConfig", "ScenarioResult", "DeploymentScenario", "default_batch_size"]

#: batch sizes used by the paper per setting (sections 5.2-5.4)
PAPER_BATCH_SIZES = {"lan": 2, "vpn": 2, "wan": 4, "loopback": 2}
#: transports used by the paper per setting
PAPER_TRANSPORTS = {"lan": "websocket", "vpn": "websocket", "wan": "webrtc", "loopback": "websocket"}


def default_batch_size(setting: str) -> int:
    """The batch size the paper used for a given deployment setting."""
    return PAPER_BATCH_SIZES.get(setting.lower(), 2)


@dataclass
class ScenarioConfig:
    """Everything needed to build one simulated deployment."""

    application: Application
    setting: str = "lan"
    devices: Optional[List[DeviceProfile]] = None
    batch_size: Optional[int] = None
    transport: Optional[str] = None
    #: measurement window in virtual seconds (the paper uses 300 s; the
    #: default is shorter to keep the test suite fast — benches override it)
    duration: float = 60.0
    #: virtual seconds granted for connections to establish before measuring
    warmup: float = 5.0
    use_public_server: Optional[bool] = None
    failure_schedule: Optional[FailureSchedule] = None
    #: device name -> join time (virtual seconds); missing devices join at 0
    join_times: Dict[str, float] = field(default_factory=dict)
    #: tabs (cores) contributed per device name; defaults to the profile's cores
    tabs: Dict[str, int] = field(default_factory=dict)
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 3.0
    #: deliver outputs in input order (False = unordered StreamLender)
    ordered: bool = True
    seed: Optional[int] = 42
    #: lender shards on the master (1 = single master)
    shards: int = 1
    #: bounded split buffer per shard (requires ``shards > 1``)
    split_buffer: Optional[int] = None
    #: work units per device execution chunk; tasks poll the scenario's stop
    #: request between chunks (bounded-tail cancellation); None = whole task
    task_chunk: Optional[float] = None

    def resolved_devices(self) -> List[DeviceProfile]:
        return list(
            self.devices if self.devices is not None else devices_for_setting(self.setting)
        )

    def resolved_batch_size(self) -> int:
        return (
            self.batch_size
            if self.batch_size is not None
            else default_batch_size(self.setting)
        )

    def resolved_transport(self) -> str:
        return (
            self.transport
            if self.transport is not None
            else PAPER_TRANSPORTS.get(self.setting.lower(), "websocket")
        )

    def resolved_public_server(self) -> bool:
        if self.use_public_server is not None:
            return self.use_public_server
        return self.resolved_transport() == "webrtc"


@dataclass
class ScenarioResult:
    """Outcome of a scenario run."""

    report: Optional[ThroughputReport]
    outputs: Optional[List[Any]]
    completed_at: Optional[float]
    lender_stats: Dict[str, Any]
    registry: Dict[str, Any]
    log: List[str]
    network_bytes: int
    scheduler_events: int

    def as_dict(self) -> dict:
        return {
            "report": self.report.as_dict() if self.report else None,
            "outputs": self.outputs,
            "completed_at": self.completed_at,
            "lender_stats": self.lender_stats,
            "registry": self.registry,
            "network_bytes": self.network_bytes,
            "scheduler_events": self.scheduler_events,
        }


class DeploymentScenario:
    """Build and run one simulated Pando deployment."""

    def __init__(
        self, config: ScenarioConfig, event_scheduler: Optional[Any] = None
    ) -> None:
        self.config = config
        self.app = config.application
        self.scheduler = Scheduler()
        self.network = NetworkModel(
            default_profile=profile_for_setting(config.setting), seed=config.seed
        )
        self.metrics = MetricsCollector()
        self.public_server: Optional[PublicServer] = (
            PublicServer(self.scheduler, self.network)
            if config.resolved_public_server()
            else None
        )
        #: the EventLoopScheduler pumping the map (``run_on_loop``), or None
        self.event_scheduler = event_scheduler
        self.master = PandoMaster(
            bundle_function(
                self.app.processing_function(),
                name=self.app.name,
                application=self.app,
            ),
            config=MasterConfig(
                batch_size=config.resolved_batch_size(),
                transport=config.resolved_transport(),
                ordered=config.ordered,
                heartbeat_interval=config.heartbeat_interval,
                heartbeat_timeout=config.heartbeat_timeout,
                shards=config.shards,
                split_buffer=config.split_buffer,
            ),
            scheduler=self.scheduler,
            network=self.network,
            public_server=self.public_server,
            metrics=self.metrics,
            host="master",
            event_scheduler=event_scheduler,
        )
        self.volunteers: Dict[str, SimVolunteer] = {}
        #: every volunteer ever built, including replaced rejoin incarnations
        self.incarnations: List[SimVolunteer] = []
        self._rejoin_counts: Dict[str, int] = {}
        self._serve_url: Optional[str] = None
        self._stop = False
        #: virtual time at which the output sink completed / aborted, if any
        self.completed_virtual: Optional[float] = None
        self.aborted_virtual: Optional[float] = None
        self._wire_links()
        self._build_volunteers()

    # ------------------------------------------------------------- building
    def _wire_links(self) -> None:
        """Heterogeneous latency mixes: a device whose profile names a
        different setting than the deployment's gets a master link with that
        setting's latency profile (LAN workers next to WAN stragglers)."""
        default_setting = self.config.setting.lower()
        for profile in self.config.resolved_devices():
            setting = (profile.setting or default_setting).lower()
            if setting != default_setting:
                self.network.set_link(
                    self.master.host, profile.name, profile_for_setting(setting)
                )

    def _build_volunteers(self) -> None:
        for profile in self.config.resolved_devices():
            tabs = self.config.tabs.get(profile.name, profile.cores)
            volunteer = SimVolunteer(
                profile, self.scheduler, host=profile.name, tabs=tabs
            )
            self._prepare_device(volunteer)
            self.volunteers[profile.name] = volunteer
            self.incarnations.append(volunteer)

    def _prepare_device(self, volunteer: SimVolunteer) -> None:
        device = volunteer.device
        if self.config.task_chunk is not None:
            device.task_chunk = self.config.task_chunk
        device.stop_check = lambda: self._stop

    def _schedule_joins(self, url: str) -> None:
        self._serve_url = url
        for name, volunteer in self.volunteers.items():
            join_time = self.config.join_times.get(name, 0.0)
            if self.public_server is not None:
                self.scheduler.call_at(
                    join_time, volunteer.join_url, url, self.public_server
                )
            else:
                self.scheduler.call_at(join_time, volunteer.join, self.master)

    def _schedule_failures(self) -> None:
        schedule = self.config.failure_schedule
        if schedule is None:
            return
        departed: set = set()
        for event in schedule:
            name = event.worker_id
            if name not in self.volunteers:
                raise DeploymentError(
                    f"failure schedule references unknown device {name!r}"
                )
            if event.kind == "crash":
                self.scheduler.call_at(event.time, self._crash_volunteer, name)
                departed.add(name)
            elif event.kind == "leave":
                self.scheduler.call_at(event.time, self._leave_volunteer, name)
                departed.add(name)
            elif event.kind == "slowdown":
                self.scheduler.call_at(
                    event.time, self._slow_volunteer, name, event.factor
                )
            elif event.kind == "join":
                if name in departed:
                    # A join after a crash/leave is a *rejoin*: a fresh
                    # incarnation built at fire time (the master never
                    # reuses a worker id, so the device name is suffixed).
                    self.scheduler.call_at(event.time, self._rejoin_volunteer, name)
                else:
                    # A plain join only overrides the initial join time.
                    self.config.join_times[name] = event.time

    # The handlers below look the volunteer up at *fire* time, so churn
    # events always target the current incarnation of the named host.
    def _crash_volunteer(self, name: str) -> None:
        self.volunteers[name].crash()

    def _leave_volunteer(self, name: str) -> None:
        self.volunteers[name].leave()

    def _slow_volunteer(self, name: str, factor: float) -> None:
        self.volunteers[name].device.set_speed_factor(factor)

    def _rejoin_volunteer(self, name: str) -> None:
        previous = self.volunteers[name]
        count = self._rejoin_counts.get(name, 0) + 1
        self._rejoin_counts[name] = count
        tabs = self.config.tabs.get(name, previous.profile.cores)
        volunteer = SimVolunteer(
            previous.profile,
            self.scheduler,
            host=name,
            tabs=tabs,
            device_name=f"{name}+{count}",
        )
        self._prepare_device(volunteer)
        self.volunteers[name] = volunteer
        self.incarnations.append(volunteer)
        if self.public_server is not None and self._serve_url is not None:
            volunteer.join_url(self._serve_url, self.public_server)
        else:
            volunteer.join(self.master)

    # ------------------------------------------------------------- stopping
    def request_stop(self) -> None:
        """Ask every device to abandon work at its next chunk boundary."""
        self._stop = True

    @property
    def stop_requested(self) -> bool:
        return self._stop

    # ------------------------------------------------------------ execution
    def run_measurement(self) -> ScenarioResult:
        """Measure steady-state throughput over the configured window."""
        config = self.config
        inputs = (
            self.app.wrap_input(value) for value in self.app.generate_inputs(None)
        )
        url = self.master.serve()
        self._schedule_failures()
        self._schedule_joins(url)
        sink_result = pull(from_iterable(inputs), self.master, drain())

        # Warm-up, then measure.
        self.metrics.enabled = False
        self.scheduler.run_until(config.warmup)
        self.metrics.start_window(self.scheduler.now)
        self.scheduler.run_until(config.warmup + config.duration)
        self.metrics.end_window(self.scheduler.now)
        self.master.shutdown()

        report = self.metrics.report(self.app.name, config.setting)
        return self._result(report=report, outputs=None, completed_at=None)

    def run_to_completion(
        self,
        inputs: Iterable[Any],
        wrap: bool = True,
        max_virtual_time: float = 24 * 3600.0,
    ) -> ScenarioResult:
        """Process a finite input list until the output stream terminates."""
        values = [self.app.wrap_input(v) if wrap else v for v in inputs]
        url = self.master.serve()
        self._schedule_failures()
        self._schedule_joins(url)
        sink_result = pull(from_iterable(values), self.master, collect())

        self.metrics.start_window(self.scheduler.now)
        self.scheduler.run(
            until=lambda: sink_result.done or self.scheduler.now > max_virtual_time
        )
        self.metrics.end_window(self.scheduler.now)
        self.master.shutdown()

        if not sink_result.done:
            raise DeploymentError(
                "deployment stalled before completing its input stream "
                f"(processed {self.metrics.output_items} of {len(values)})"
            )
        report = self.metrics.report(self.app.name, self.config.setting)
        return self._result(
            report=report,
            outputs=list(sink_result.value),
            completed_at=self.scheduler.now,
        )

    def run_on_loop(
        self,
        inputs: Iterable[Any],
        wrap: bool = True,
        sink: Optional[Any] = None,
        timeout: Optional[float] = None,
        drain_for: float = 0.0,
    ):
        """Drive the deployment through a ``SimEventSource`` on the event loop.

        The scenario must have been built with an ``event_scheduler`` (an
        :class:`~repro.sched.EventLoopScheduler`); the simulation clock is
        registered as an unpaced source, so virtual time advances as fast as
        the loop dispatches — and real (wall-clock) sources such as process
        pools attached to the master pump in the same rounds.  This is the
        scenario-matrix execution mode.

        *sink* defaults to ``collect()``; pass e.g. ``find(...)`` for abort
        scenarios.  *timeout* bounds the **wall-clock** run.  *drain_for*
        keeps simulating that much virtual time after the sink completes, so
        post-abort tails and pending heartbeat suspicions become observable.
        Returns the completed :class:`~repro.pullstream.sinks.SinkResult`
        (``scenario_result()`` builds the report afterwards).
        """
        loop = self.event_scheduler
        if loop is None:
            raise DeploymentError(
                "run_on_loop requires the scenario to be built with "
                "event_scheduler=EventLoopScheduler(...)"
            )
        values = [self.app.wrap_input(v) if wrap else v for v in inputs]
        url = self.master.serve()
        self._schedule_failures()
        self._schedule_joins(url)
        sink_result = pull(
            from_iterable(values),
            self.master,
            sink if sink is not None else collect(),
        )

        def stamp(result: Any) -> None:
            # Runs the instant the sink completes — inside the sim dispatch
            # for a volunteer-delivered value — so `now` is the virtual
            # completion/abort time.  An abort also requests the device
            # stop, which chunked tasks observe at their next boundary.
            self.completed_virtual = self.scheduler.now
            if result.aborted:
                self.aborted_virtual = self.scheduler.now
                self.request_stop()

        sink_result.on_done(stamp)
        self.metrics.start_window(self.scheduler.now)
        loop.register_sim(self.scheduler)
        self.master.distributed_map.drive(sink_result, timeout=timeout)
        if drain_for > 0.0:
            self.scheduler.run_for(drain_for)
        self.metrics.end_window(self.scheduler.now)
        self.master.shutdown()
        return sink_result

    def scenario_result(self, sink_result: Any) -> ScenarioResult:
        """Build the :class:`ScenarioResult` for a finished ``run_on_loop``."""
        value = sink_result.value
        if value is None:
            outputs: Optional[List[Any]] = None
        elif isinstance(value, list):
            outputs = list(value)
        else:
            outputs = [value]
        report = self.metrics.report(self.app.name, self.config.setting)
        return self._result(
            report=report, outputs=outputs, completed_at=self.completed_virtual
        )

    # ------------------------------------------------------------- reporting
    def _result(
        self,
        report: Optional[ThroughputReport],
        outputs: Optional[List[Any]],
        completed_at: Optional[float],
    ) -> ScenarioResult:
        registry = {
            "joins": self.master.registry.joins,
            "crashes": self.master.registry.crashes,
            "leaves": self.master.registry.leaves,
            "volunteers": len(self.master.registry),
        }
        return ScenarioResult(
            report=report,
            outputs=outputs,
            completed_at=completed_at,
            lender_stats=self.master.stats.as_dict(),
            registry=registry,
            log=self.master.log,
            network_bytes=self.network.total_bytes(),
            scheduler_events=self.scheduler.events_processed,
        )
