"""Deployment scenarios: build and run complete simulated Pando deployments.

A :class:`DeploymentScenario` assembles every piece of the system — master,
public server, volunteers with their devices, network model, failure
schedule — for one of the paper's three settings (LAN, VPN, WAN) and runs it
in virtual time.  Two modes are provided:

* :meth:`DeploymentScenario.run_measurement` reproduces the paper's
  methodology (section 5.1): an effectively infinite input stream is
  processed for a fixed measurement window after a warm-up, and per-worker
  throughput is derived from the number of items each worker completed —
  this regenerates the rows of Table 2;
* :meth:`DeploymentScenario.run_to_completion` processes a finite list of
  inputs until the output stream ends — used by integration tests, the
  Figure-4 deployment example and the fault-tolerance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..apps.base import Application
from ..devices.profiles import DeviceProfile, devices_for_setting
from ..errors import DeploymentError
from ..master.bundler import bundle_function
from ..master.master import MasterConfig, PandoMaster
from ..net.signaling import PublicServer
from ..pullstream import collect, drain, from_iterable, pull
from ..worker.volunteer import SimVolunteer
from .failures import FailureSchedule
from .metrics import MetricsCollector, ThroughputReport
from .network import NetworkModel, profile_for_setting
from .scheduler import Scheduler

__all__ = ["ScenarioConfig", "ScenarioResult", "DeploymentScenario", "default_batch_size"]

#: batch sizes used by the paper per setting (sections 5.2-5.4)
PAPER_BATCH_SIZES = {"lan": 2, "vpn": 2, "wan": 4, "loopback": 2}
#: transports used by the paper per setting
PAPER_TRANSPORTS = {"lan": "websocket", "vpn": "websocket", "wan": "webrtc", "loopback": "websocket"}


def default_batch_size(setting: str) -> int:
    """The batch size the paper used for a given deployment setting."""
    return PAPER_BATCH_SIZES.get(setting.lower(), 2)


@dataclass
class ScenarioConfig:
    """Everything needed to build one simulated deployment."""

    application: Application
    setting: str = "lan"
    devices: Optional[List[DeviceProfile]] = None
    batch_size: Optional[int] = None
    transport: Optional[str] = None
    #: measurement window in virtual seconds (the paper uses 300 s; the
    #: default is shorter to keep the test suite fast — benches override it)
    duration: float = 60.0
    #: virtual seconds granted for connections to establish before measuring
    warmup: float = 5.0
    use_public_server: Optional[bool] = None
    failure_schedule: Optional[FailureSchedule] = None
    #: device name -> join time (virtual seconds); missing devices join at 0
    join_times: Dict[str, float] = field(default_factory=dict)
    #: tabs (cores) contributed per device name; defaults to the profile's cores
    tabs: Dict[str, int] = field(default_factory=dict)
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 3.0
    #: deliver outputs in input order (False = unordered StreamLender)
    ordered: bool = True
    seed: Optional[int] = 42

    def resolved_devices(self) -> List[DeviceProfile]:
        return list(
            self.devices if self.devices is not None else devices_for_setting(self.setting)
        )

    def resolved_batch_size(self) -> int:
        return (
            self.batch_size
            if self.batch_size is not None
            else default_batch_size(self.setting)
        )

    def resolved_transport(self) -> str:
        return (
            self.transport
            if self.transport is not None
            else PAPER_TRANSPORTS.get(self.setting.lower(), "websocket")
        )

    def resolved_public_server(self) -> bool:
        if self.use_public_server is not None:
            return self.use_public_server
        return self.resolved_transport() == "webrtc"


@dataclass
class ScenarioResult:
    """Outcome of a scenario run."""

    report: Optional[ThroughputReport]
    outputs: Optional[List[Any]]
    completed_at: Optional[float]
    lender_stats: Dict[str, Any]
    registry: Dict[str, Any]
    log: List[str]
    network_bytes: int
    scheduler_events: int

    def as_dict(self) -> dict:
        return {
            "report": self.report.as_dict() if self.report else None,
            "outputs": self.outputs,
            "completed_at": self.completed_at,
            "lender_stats": self.lender_stats,
            "registry": self.registry,
            "network_bytes": self.network_bytes,
            "scheduler_events": self.scheduler_events,
        }


class DeploymentScenario:
    """Build and run one simulated Pando deployment."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.app = config.application
        self.scheduler = Scheduler()
        self.network = NetworkModel(
            default_profile=profile_for_setting(config.setting), seed=config.seed
        )
        self.metrics = MetricsCollector()
        self.public_server: Optional[PublicServer] = (
            PublicServer(self.scheduler, self.network)
            if config.resolved_public_server()
            else None
        )
        self.master = PandoMaster(
            bundle_function(
                self.app.processing_function(),
                name=self.app.name,
                application=self.app,
            ),
            config=MasterConfig(
                batch_size=config.resolved_batch_size(),
                transport=config.resolved_transport(),
                ordered=config.ordered,
                heartbeat_interval=config.heartbeat_interval,
                heartbeat_timeout=config.heartbeat_timeout,
            ),
            scheduler=self.scheduler,
            network=self.network,
            public_server=self.public_server,
            metrics=self.metrics,
            host="master",
        )
        self.volunteers: Dict[str, SimVolunteer] = {}
        self._build_volunteers()

    # ------------------------------------------------------------- building
    def _build_volunteers(self) -> None:
        for profile in self.config.resolved_devices():
            tabs = self.config.tabs.get(profile.name, profile.cores)
            volunteer = SimVolunteer(
                profile, self.scheduler, host=profile.name, tabs=tabs
            )
            self.volunteers[profile.name] = volunteer

    def _schedule_joins(self, url: str) -> None:
        for name, volunteer in self.volunteers.items():
            join_time = self.config.join_times.get(name, 0.0)
            if self.public_server is not None:
                self.scheduler.call_at(
                    join_time, volunteer.join_url, url, self.public_server
                )
            else:
                self.scheduler.call_at(join_time, volunteer.join, self.master)

    def _schedule_failures(self) -> None:
        schedule = self.config.failure_schedule
        if schedule is None:
            return
        for event in schedule:
            volunteer = self.volunteers.get(event.worker_id)
            if volunteer is None:
                raise DeploymentError(
                    f"failure schedule references unknown device {event.worker_id!r}"
                )
            if event.kind == "crash":
                self.scheduler.call_at(event.time, volunteer.crash)
            elif event.kind == "leave":
                self.scheduler.call_at(event.time, volunteer.leave)
            elif event.kind == "join":
                # Override/add a join time.
                self.config.join_times[event.worker_id] = event.time

    # ------------------------------------------------------------ execution
    def run_measurement(self) -> ScenarioResult:
        """Measure steady-state throughput over the configured window."""
        config = self.config
        inputs = (
            self.app.wrap_input(value) for value in self.app.generate_inputs(None)
        )
        url = self.master.serve()
        self._schedule_failures()
        self._schedule_joins(url)
        sink_result = pull(from_iterable(inputs), self.master, drain())

        # Warm-up, then measure.
        self.metrics.enabled = False
        self.scheduler.run_until(config.warmup)
        self.metrics.start_window(self.scheduler.now)
        self.scheduler.run_until(config.warmup + config.duration)
        self.metrics.end_window(self.scheduler.now)
        self.master.shutdown()

        report = self.metrics.report(self.app.name, config.setting)
        return self._result(report=report, outputs=None, completed_at=None)

    def run_to_completion(
        self,
        inputs: Iterable[Any],
        wrap: bool = True,
        max_virtual_time: float = 24 * 3600.0,
    ) -> ScenarioResult:
        """Process a finite input list until the output stream terminates."""
        values = [self.app.wrap_input(v) if wrap else v for v in inputs]
        url = self.master.serve()
        self._schedule_failures()
        self._schedule_joins(url)
        sink_result = pull(from_iterable(values), self.master, collect())

        self.metrics.start_window(self.scheduler.now)
        self.scheduler.run(
            until=lambda: sink_result.done or self.scheduler.now > max_virtual_time
        )
        self.metrics.end_window(self.scheduler.now)
        self.master.shutdown()

        if not sink_result.done:
            raise DeploymentError(
                "deployment stalled before completing its input stream "
                f"(processed {self.metrics.output_items} of {len(values)})"
            )
        report = self.metrics.report(self.app.name, self.config.setting)
        return self._result(
            report=report,
            outputs=list(sink_result.value),
            completed_at=self.scheduler.now,
        )

    # ------------------------------------------------------------- reporting
    def _result(
        self,
        report: Optional[ThroughputReport],
        outputs: Optional[List[Any]],
        completed_at: Optional[float],
    ) -> ScenarioResult:
        registry = {
            "joins": self.master.registry.joins,
            "crashes": self.master.registry.crashes,
            "leaves": self.master.registry.leaves,
            "volunteers": len(self.master.registry),
        }
        return ScenarioResult(
            report=report,
            outputs=outputs,
            completed_at=completed_at,
            lender_stats=self.master.stats.as_dict(),
            registry=registry,
            log=self.master.log,
            network_bytes=self.network.total_bytes(),
            scheduler_events=self.scheduler.events_processed,
        )
