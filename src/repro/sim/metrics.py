"""Throughput and utilisation metrics collected during simulated runs.

The paper measures, for each worker, "the computation duration and the number
of items processed ... over a five minute period, from which we derived the
throughput" and checks "that the total of all devices corresponded to the
throughput observed at the output of Pando" (section 5.1).
:class:`MetricsCollector` reproduces exactly those measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["WorkerMetrics", "MetricsCollector", "ThroughputReport"]


@dataclass
class WorkerMetrics:
    """Per-worker counters over the measurement window."""

    worker_id: str
    items_processed: int = 0
    compute_time: float = 0.0
    first_item_at: Optional[float] = None
    last_item_at: Optional[float] = None

    def record(self, timestamp: float, duration: float, items: int = 1) -> None:
        """Record the completion of *items* work unit(s) taking *duration* seconds."""
        self.items_processed += items
        self.compute_time += duration
        if self.first_item_at is None:
            self.first_item_at = timestamp
        self.last_item_at = timestamp

    def throughput(self, window: float) -> float:
        """Items per second over a window of *window* seconds."""
        if window <= 0:
            return 0.0
        return self.items_processed / window

    def utilisation(self, window: float) -> float:
        """Fraction of the window spent computing."""
        if window <= 0:
            return 0.0
        return min(1.0, self.compute_time / window)


@dataclass
class ThroughputReport:
    """Aggregated result of one measurement run (one Table-2 cell group)."""

    application: str
    setting: str
    window: float
    total_items: int
    total_throughput: float
    per_worker_throughput: Dict[str, float]
    per_worker_share: Dict[str, float]
    per_worker_items: Dict[str, int]
    output_items: int
    output_throughput: float

    def as_dict(self) -> dict:
        return {
            "application": self.application,
            "setting": self.setting,
            "window": self.window,
            "total_items": self.total_items,
            "total_throughput": self.total_throughput,
            "per_worker_throughput": dict(self.per_worker_throughput),
            "per_worker_share": dict(self.per_worker_share),
            "per_worker_items": dict(self.per_worker_items),
            "output_items": self.output_items,
            "output_throughput": self.output_throughput,
        }


class MetricsCollector:
    """Collect per-worker and output counters during a simulation run."""

    def __init__(self) -> None:
        self._workers: Dict[str, WorkerMetrics] = {}
        self.output_items = 0
        self.window_start = 0.0
        self.window_end: Optional[float] = None
        #: when False, records are ignored (used to exclude the warm-up
        #: period during which connections are still being established)
        self.enabled = True

    def worker(self, worker_id: str) -> WorkerMetrics:
        """Return (creating if needed) the metrics slot of *worker_id*."""
        if worker_id not in self._workers:
            self._workers[worker_id] = WorkerMetrics(worker_id)
        return self._workers[worker_id]

    def record_work(
        self, worker_id: str, timestamp: float, duration: float, items: int = 1
    ) -> None:
        """Record completed work on a worker."""
        if not self.enabled:
            return
        self.worker(worker_id).record(timestamp, duration, items)

    def record_output(self, items: int = 1) -> None:
        """Record results observed at the output of Pando."""
        if not self.enabled:
            return
        self.output_items += items

    def start_window(self, timestamp: float) -> None:
        """Mark the start of the measurement window and enable collection."""
        self.window_start = timestamp
        self.enabled = True

    def end_window(self, timestamp: float) -> None:
        """Mark the end of the measurement window and disable collection."""
        self.window_end = timestamp
        self.enabled = False

    @property
    def workers(self) -> Dict[str, WorkerMetrics]:
        return dict(self._workers)

    def report(self, application: str, setting: str) -> ThroughputReport:
        """Produce a :class:`ThroughputReport` for the completed window."""
        if self.window_end is None:
            raise ValueError("end_window() must be called before report()")
        window = self.window_end - self.window_start
        per_worker_items = {
            worker_id: metrics.items_processed
            for worker_id, metrics in self._workers.items()
        }
        total_items = sum(per_worker_items.values())
        per_worker_throughput = {
            worker_id: metrics.throughput(window)
            for worker_id, metrics in self._workers.items()
        }
        total_throughput = sum(per_worker_throughput.values())
        per_worker_share = {
            worker_id: (
                100.0 * throughput / total_throughput if total_throughput > 0 else 0.0
            )
            for worker_id, throughput in per_worker_throughput.items()
        }
        return ThroughputReport(
            application=application,
            setting=setting,
            window=window,
            total_items=total_items,
            total_throughput=total_throughput,
            per_worker_throughput=per_worker_throughput,
            per_worker_share=per_worker_share,
            per_worker_items=per_worker_items,
            output_items=self.output_items,
            output_throughput=self.output_items / window if window > 0 else 0.0,
        )
