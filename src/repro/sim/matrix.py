"""Planet-scale scenario matrix: declarative cells, one runner, one verifier.

The fault-tolerance experiments of the paper (section 5.6) exercise one
deployment shape at a time.  This module turns :class:`DeploymentScenario`
into a *matrix*: a :class:`MatrixCell` declares one point in the cross
product

    {ordered, unordered} x {single, sharded} x {pipe, shm pool | pure sim}

together with the environment that cell runs under — a synthetic volunteer
fleet (LAN/VPN/WAN latency mix, seeded per-device rates), diurnal churn
waves, healing partitions, skewed stragglers, and optionally a
bounded-tail abort (a ``find`` sink plus chunked tasks and a pool
cancellation flag).  :func:`run_cell` executes any cell through a
``SimEventSource`` on the event loop — thousand-volunteer deployments run
in *virtual* time, wall-clock cost is the loop dispatch only — and
:func:`verify_cell` checks the invariants every cell must satisfy:

* **exactly-once delivery** — output ids are a permutation of input ids
  (the input order itself for ordered cells), regardless of churn;
* **stats balance** — the lender counters reconcile with the schedule
  (``values_read``/``results_delivered`` match the input count);
* **trace balance** — rotation-proof trace totals agree with the lender
  counters (``substream_failed`` events vs failed sub-streams,
  ``shard_place`` events vs opened sub-streams on sharded cells);
* **registry balance** — every volunteer incarnation is accounted for
  (joins = registered volunteers, crashes bounded by the schedule);
* **proportional placement** — faster devices processed more items.

``pando simulate --matrix`` (see :func:`main`) runs cells from the shell.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..apps.base import Application, NodeCallback
from ..devices.profiles import DeviceProfile
from ..pullstream import find
from ..sched import EventLoopScheduler
from .failures import ChurnModel, FailureSchedule
from .scenario import DeploymentScenario, ScenarioConfig, ScenarioResult

__all__ = [
    "MatrixSearchApplication",
    "matrix_result",
    "matrix_task",
    "make_inputs",
    "synthesize_fleet",
    "MatrixCell",
    "CellResult",
    "DeviceTail",
    "bounded_tail_violations",
    "full_matrix",
    "smoke_matrix",
    "golden_cell",
    "scale_cell",
    "abort_cell",
    "all_cells",
    "run_cell",
    "verify_cell",
    "main",
]

APP_NAME = "matrix_search"


# ============================================================== application
def matrix_result(value: Any) -> Dict[str, Any]:
    """The search result for one (possibly wrapped) matrix input.

    Accepts both the bare input dict and the simulator's wire envelope
    (``{"application", "value", "size_bytes"}``), so the simulated tabs
    and the real process pool produce byte-identical results — the
    exactly-once check cannot tell (and must not care) who computed what.
    """
    inner = value
    if isinstance(inner, dict) and "value" in inner and "id" not in inner:
        inner = inner["value"]
    if not isinstance(inner, dict) or "id" not in inner:
        raise ValueError(f"not a matrix input: {value!r}")
    return {"id": inner["id"], "hit": bool(inner.get("hit", False))}


def matrix_task(value: Any) -> Dict[str, Any]:
    """Process-pool entry point (``repro.sim.matrix:matrix_task``)."""
    return matrix_result(value)


class MatrixSearchApplication(Application):
    """A synthetic crypto-style search: cheap items, rare hits, fat tails.

    Inputs are ``{"id", "cost", "hit"}`` dicts from :func:`make_inputs`;
    the *cost* drives the simulated task duration (skewed items model the
    stragglers of a synchronous search) and *hit* marks the needle a
    ``find`` sink aborts on.
    """

    name = APP_NAME
    unit = "Items/s"
    dataflow = "synchronous-search"
    input_size_bytes = 96
    result_size_bytes = 48

    def generate_inputs(self, count: Optional[int] = None):
        counter = itertools.count() if count is None else range(count)
        for index in counter:
            yield {"id": index, "cost": 1.0, "hit": False}

    def process(self, value: Any, cb: NodeCallback) -> None:
        cb(None, matrix_result(value))

    def cost(self, value: Any) -> float:
        inner = value
        if isinstance(inner, dict) and "value" in inner and "cost" not in inner:
            inner = inner["value"]
        if isinstance(inner, dict):
            return float(inner.get("cost", 1.0))
        return 1.0

    def simulate_result(self, value: Any) -> Any:
        # Identical to the pool's output on purpose — see matrix_result.
        return matrix_result(value)


def make_inputs(
    count: int,
    seed: int = 7,
    base_cost: float = 1.0,
    cost_jitter: float = 0.25,
    hit_ids: Iterable[int] = (),
    skew_ids: Iterable[int] = (),
    skew_factor: float = 25.0,
) -> List[Dict[str, Any]]:
    """Build *count* matrix inputs with seeded cost perturbation.

    Every input costs ``base_cost * (1 + U(0, cost_jitter))``; ids in
    *skew_ids* additionally cost ``skew_factor`` times more (the skewed
    tail of the search), and ids in *hit_ids* carry ``hit=True``.
    """
    rng = random.Random(seed)
    hits = set(hit_ids)
    skewed = set(skew_ids)
    inputs = []
    for index in range(count):
        cost = base_cost * (1.0 + cost_jitter * rng.random())
        if index in skewed:
            cost *= skew_factor
        inputs.append({"id": index, "cost": round(cost, 6), "hit": index in hits})
    return inputs


SETTINGS_CYCLE = ("lan", "vpn", "wan")


def synthesize_fleet(
    count: int,
    seed: int = 11,
    rate_range: Tuple[float, float] = (60.0, 600.0),
    settings: Tuple[str, ...] = SETTINGS_CYCLE,
) -> List[DeviceProfile]:
    """Synthesize *count* single-core volunteer profiles.

    Settings cycle through *settings* — the scenario's ``_wire_links`` then
    gives each device its setting's latency profile, so one fleet mixes LAN
    neighbours with WAN stragglers.  Rates are drawn uniformly from
    *rate_range* with a seeded generator: the fleet is a pure function of
    ``(count, seed)``, which is what makes golden cells pinnable.
    """
    rng = random.Random(seed)
    profiles = []
    for index in range(count):
        setting = settings[index % len(settings)]
        profiles.append(
            DeviceProfile(
                name=f"sim-{index:04d}-{setting}",
                setting=setting,
                cores=1,
                cpu="synthetic",
                year=2019,
                browser="sim",
                rates={APP_NAME: round(rng.uniform(*rate_range), 3)},
            )
        )
    return profiles


# ===================================================================== cells
@dataclass(frozen=True)
class MatrixCell:
    """One point of the scenario matrix, fully declarative."""

    name: str
    ordered: bool = True
    shards: int = 1
    #: process pool transport ("pipe" | "shm"), or None for a pure-sim cell
    pool: Optional[str] = None
    volunteers: int = 6
    inputs: int = 48
    seed: int = 42
    base_cost: float = 1.0
    batch_size: int = 2
    setting: str = "lan"
    heartbeat_interval: float = 2.0
    heartbeat_timeout: float = 8.0
    pool_processes: int = 2
    #: frames poll the pool stop flag every this many values (abort cells)
    cancel_chunk: Optional[int] = None
    #: work units per device execution chunk (bounded-tail cancellation)
    task_chunk: Optional[float] = None
    #: diurnal join/leave waves over part of the fleet
    churn: bool = False
    #: crash-then-heal partition window over part of the fleet
    partition: bool = False
    #: devices slowed by ``straggler_factor`` at t=0
    stragglers: int = 0
    straggler_factor: float = 6.0
    #: ids of skewed (straggler-cost) inputs
    skew_ids: Tuple[int, ...] = ()
    skew_factor: float = 25.0
    #: id of the needle; with ``abort_on_hit`` the sink is find(hit)
    hit_id: Optional[int] = None
    abort_on_hit: bool = False
    #: wall-clock bound on the loop run (None = unbounded)
    timeout: Optional[float] = 120.0
    #: virtual seconds simulated after the sink completes (observe tails)
    drain_for: float = 0.0

    def with_overrides(self, **overrides: Any) -> "MatrixCell":
        return dataclasses.replace(self, **overrides)


@dataclass
class ScheduleInfo:
    """What the failure schedule we built is allowed to cause."""

    schedule: Optional[FailureSchedule]
    straggler_names: List[str] = field(default_factory=list)
    #: every device the schedule touches — excluded from placement checks,
    #: since churned/partitioned/slowed devices under-process by design
    disturbed_names: List[str] = field(default_factory=list)
    scheduled_crashes: int = 0
    scheduled_leaves: int = 0
    scheduled_rejoins: int = 0


@dataclass(frozen=True)
class DeviceTail:
    """Post-abort evidence for one device incarnation.

    ``seconds_per_unit`` is this device's virtual seconds per work unit
    (straggler slowdown included): with chunked tasks, a completion may
    legally trail the abort by at most ``task_chunk * seconds_per_unit``.
    """

    name: str
    last_completion_at: Optional[float]
    seconds_per_unit: float
    tasks_stopped: int


@dataclass
class CellResult:
    """Everything :func:`verify_cell` needs about one executed cell."""

    cell: MatrixCell
    inputs: List[Dict[str, Any]]
    result: ScenarioResult
    aborted: bool
    aborted_virtual: Optional[float]
    trace_counts: Dict[str, int]
    schedule_info: ScheduleInfo
    pool_worker_ids: List[str]
    device_names: Dict[str, float]  # profile name -> rate
    tails: List[DeviceTail]
    wall_seconds: float
    events_processed: int

    @property
    def outputs(self) -> List[Any]:
        return self.result.outputs or []


def full_matrix(volunteers: int = 6, inputs: int = 48, seed: int = 42) -> List[MatrixCell]:
    """The 8-cell {ordered} x {shards} x {transport} grid, churned.

    Every grid cell runs the same environment — a heterogeneous fleet with
    one churn wave, a healing partition and a straggler — so the axes are
    the only thing that varies between cells.
    """
    cells = []
    for ordered, shards, transport in itertools.product(
        (True, False), (1, 3), ("pipe", "shm")
    ):
        order_label = "ordered" if ordered else "unordered"
        shard_label = "sharded" if shards > 1 else "single"
        cells.append(
            MatrixCell(
                name=f"{order_label}-{shard_label}-{transport}",
                ordered=ordered,
                shards=shards,
                pool=transport,
                volunteers=volunteers,
                inputs=inputs,
                seed=seed,
                base_cost=400.0,
                churn=True,
                partition=True,
                stragglers=1,
            )
        )
    return cells


def smoke_matrix() -> List[MatrixCell]:
    """The tier-1 subset: opposite corners of the grid."""
    by_name = {cell.name: cell for cell in full_matrix()}
    return [by_name["ordered-single-pipe"], by_name["unordered-sharded-shm"]]


def golden_cell() -> MatrixCell:
    """Pure-sim, fixed-seed cell whose placement and stats tests pin."""
    return MatrixCell(
        name="golden",
        ordered=True,
        shards=1,
        pool=None,
        volunteers=4,
        inputs=32,
        seed=2027,
        base_cost=50.0,
        heartbeat_interval=5.0,
        heartbeat_timeout=20.0,
    )


def scale_cell(volunteers: int = 1000, inputs: int = 3000, seed: int = 9001) -> MatrixCell:
    """The planet-scale cell: >= 1000 volunteers, pure virtual time.

    Heartbeats dominate event counts at this scale, so the interval is
    raised — membership is still heartbeat-driven, just coarser.
    """
    return MatrixCell(
        name=f"scale-{volunteers}",
        ordered=False,
        shards=4,
        pool=None,
        volunteers=volunteers,
        inputs=inputs,
        seed=seed,
        base_cost=20.0,
        heartbeat_interval=30.0,
        heartbeat_timeout=120.0,
        timeout=None,
    )


def abort_cell(seed: int = 1303) -> MatrixCell:
    """The skewed crypto-search cell: find() aborts, tails must be bounded.

    A handful of early inputs cost ``skew_factor`` more (the straggling
    searches); the needle sits mid-stream, so the abort fans out while the
    skewed tasks are still running.  ``task_chunk`` bounds the simulated
    devices' tails; the cell is pure-sim so the skewed work provably lands
    on the devices (the live pool's tail bound has its own test against
    ``cancel_chunk``).  ``drain_for`` is generous on purpose: an *unbounded*
    tail — the ``task_chunk=None`` comparison — must remain observable.
    """
    return MatrixCell(
        name="abort-skew",
        ordered=False,
        shards=1,
        pool=None,
        volunteers=5,
        inputs=60,
        seed=seed,
        base_cost=100.0,
        skew_ids=(0, 1, 2),
        skew_factor=50.0,
        hit_id=25,
        abort_on_hit=True,
        task_chunk=250.0,
        stragglers=1,
        straggler_factor=4.0,
        drain_for=300.0,
    )


def all_cells() -> Dict[str, MatrixCell]:
    """Every named cell, for the CLI and the full CI matrix."""
    cells = {cell.name: cell for cell in full_matrix()}
    for cell in (golden_cell(), scale_cell(), abort_cell()):
        cells[cell.name] = cell
    return cells


# ==================================================================== runner
def build_schedule(cell: MatrixCell, profiles: List[DeviceProfile]) -> ScheduleInfo:
    """Derive the cell's failure schedule from its declarative knobs.

    Churn, partition and straggler populations are disjoint slices of the
    fleet so the placement check can exclude exactly the perturbed devices.
    """
    info = ScheduleInfo(schedule=None)
    if not (cell.churn or cell.partition or cell.stragglers):
        return info
    names = [profile.name for profile in profiles]
    third = max(1, len(names) // 3)
    churn_names = names[:third]
    partition_names = names[third : 2 * third]
    straggler_pool = names[2 * third :] or names
    model = ChurnModel(mean_uptime=20.0, seed=cell.seed)
    schedule = FailureSchedule()
    if cell.churn:
        schedule.extend(
            model.waves(
                churn_names,
                horizon=40.0,
                period=16.0,
                duty=0.4,
                jitter=1.0,
                participation=0.9,
            )
        )
    if cell.partition:
        schedule.extend(model.partitions(partition_names, [(10.0, 18.0)]))
    if cell.stragglers:
        count = min(cell.stragglers, len(straggler_pool))
        slowdowns = model.stragglers(
            straggler_pool, time=0.0, factor=cell.straggler_factor, count=count
        )
        info.straggler_names = sorted(
            event.worker_id for event in slowdowns
        )
        schedule.extend(slowdowns)
    # Replay the scenario's departed-set logic to bound what may happen.
    departed: set = set()
    for event in schedule:
        if event.kind == "crash":
            info.scheduled_crashes += 1
            departed.add(event.worker_id)
        elif event.kind == "leave":
            info.scheduled_leaves += 1
            departed.add(event.worker_id)
        elif event.kind == "join" and event.worker_id in departed:
            info.scheduled_rejoins += 1
    info.disturbed_names = sorted({event.worker_id for event in schedule})
    info.schedule = schedule
    return info


def run_cell(cell: MatrixCell) -> CellResult:
    """Execute one cell on a fresh event loop and collect its evidence."""
    app = MatrixSearchApplication()
    profiles = synthesize_fleet(cell.volunteers, seed=cell.seed)
    inputs = make_inputs(
        cell.inputs,
        seed=cell.seed,
        base_cost=cell.base_cost,
        hit_ids=() if cell.hit_id is None else (cell.hit_id,),
        skew_ids=cell.skew_ids,
        skew_factor=cell.skew_factor,
    )
    info = build_schedule(cell, profiles)
    config = ScenarioConfig(
        application=app,
        setting=cell.setting,
        devices=profiles,
        batch_size=cell.batch_size,
        transport="websocket",
        ordered=cell.ordered,
        heartbeat_interval=cell.heartbeat_interval,
        heartbeat_timeout=cell.heartbeat_timeout,
        failure_schedule=info.schedule,
        seed=cell.seed,
        shards=cell.shards,
        task_chunk=cell.task_chunk,
    )
    loop = EventLoopScheduler()
    scenario = None
    try:
        scenario = DeploymentScenario(config, event_scheduler=loop)
        dmap = scenario.master.distributed_map
        pool_ids: List[str] = []
        if cell.pool is not None:
            handle = dmap.add_process_pool(
                "repro.sim.matrix:matrix_task",
                processes=cell.pool_processes,
                transport=cell.pool,
                worker_id=f"pool-{cell.pool}",
                cancel_chunk=cell.cancel_chunk,
            )
            pool_ids.append(handle.worker_id)
        sink = (
            find(lambda result: bool(result.get("hit")))
            if cell.abort_on_hit
            else None
        )
        started = time.perf_counter()
        sink_result = scenario.run_on_loop(
            inputs,
            sink=sink,
            timeout=cell.timeout,
            drain_for=cell.drain_for,
        )
        wall = time.perf_counter() - started
        result = scenario.scenario_result(sink_result)
        return CellResult(
            cell=cell,
            inputs=inputs,
            result=result,
            aborted=bool(sink_result.aborted),
            aborted_virtual=scenario.aborted_virtual,
            trace_counts=dmap.obs.trace.counts(),
            schedule_info=info,
            pool_worker_ids=pool_ids,
            device_names={profile.name: profile.rate(APP_NAME) for profile in profiles},
            tails=[
                DeviceTail(
                    name=volunteer.device.name,
                    last_completion_at=volunteer.device.last_completion_at,
                    seconds_per_unit=volunteer.device.task_duration(APP_NAME, 1.0),
                    tasks_stopped=volunteer.device.tasks_stopped,
                )
                for volunteer in scenario.incarnations
            ],
            wall_seconds=wall,
            events_processed=scenario.scheduler.events_processed,
        )
    finally:
        if scenario is not None:
            scenario.master.distributed_map.close()
        loop.close()


# ================================================================== verifier
def _items_per_device(
    cell_result: CellResult,
) -> Dict[str, int]:
    """Fold per-worker items onto base device names.

    Worker ids look like ``sim-0003-vpn#0`` (tab) with rejoin incarnations
    suffixed ``sim-0003-vpn+2#0``; the pool worker is excluded.
    """
    per_device: Dict[str, int] = {}
    report = cell_result.result.report
    if report is None:
        return per_device
    for worker_id, items in report.per_worker_items.items():
        if worker_id in cell_result.pool_worker_ids:
            continue
        device = worker_id.split("#", 1)[0].split("+", 1)[0]
        if device in cell_result.device_names:
            per_device[device] = per_device.get(device, 0) + items
    return per_device


def verify_cell(cell_result: CellResult) -> List[str]:
    """Check every matrix invariant; return the violations (empty = pass)."""
    violations: List[str] = []
    cell = cell_result.cell
    stats = cell_result.result.lender_stats
    expected_ids = [value["id"] for value in cell_result.inputs]
    output_ids = [result["id"] for result in cell_result.outputs]

    # ------------------------------------------------ exactly-once delivery
    if cell.abort_on_hit:
        if not cell_result.aborted:
            violations.append("abort cell completed without aborting")
        elif not (len(output_ids) == 1 and cell_result.outputs[0]["hit"]):
            violations.append(
                f"find sink delivered {cell_result.outputs!r}, expected the hit"
            )
        elif cell.task_chunk is not None:
            violations.extend(bounded_tail_violations(cell_result))
    else:
        if sorted(output_ids) != sorted(expected_ids):
            missing = set(expected_ids) - set(output_ids)
            extra = [i for i in output_ids if output_ids.count(i) > 1]
            violations.append(
                f"exactly-once broken: {len(output_ids)}/{len(expected_ids)} "
                f"delivered, missing={sorted(missing)[:5]} dup={sorted(set(extra))[:5]}"
            )
        if cell.ordered and output_ids != expected_ids:
            violations.append("ordered cell delivered outputs out of input order")

        # --------------------------------------------------- stats balance
        if stats["values_read"] != len(expected_ids):
            violations.append(
                f"values_read={stats['values_read']} != inputs={len(expected_ids)}"
            )
        if stats["results_delivered"] != len(expected_ids):
            violations.append(
                f"results_delivered={stats['results_delivered']} "
                f"!= inputs={len(expected_ids)}"
            )
        if stats["values_lent"] - stats["values_relent"] != len(expected_ids):
            violations.append(
                "lent/relent imbalance: "
                f"{stats['values_lent']} - {stats['values_relent']} "
                f"!= {len(expected_ids)}"
            )

    # ------------------------------------------------------- trace balance
    counts = cell_result.trace_counts
    if counts.get("substream_failed", 0) != stats["substreams_failed"]:
        violations.append(
            f"trace substream_failed={counts.get('substream_failed', 0)} "
            f"!= stats substreams_failed={stats['substreams_failed']}"
        )
    if cell.shards > 1 and counts.get("shard_place", 0) != stats["substreams_opened"]:
        violations.append(
            f"trace shard_place={counts.get('shard_place', 0)} "
            f"!= substreams_opened={stats['substreams_opened']}"
        )

    # ---------------------------------------------------- registry balance
    registry = cell_result.result.registry
    info = cell_result.schedule_info
    if registry["volunteers"] != registry["joins"]:
        violations.append(
            f"registry volunteers={registry['volunteers']} != joins={registry['joins']}"
        )
    # On pool cells the fleet lower bound is not deterministic: the pool
    # runs on wall clock while the volunteers join in virtual time, so the
    # whole stream can complete before some (or any) of the fleet connects
    # — the master then turns the late arrivals away.  Pure-sim cells have
    # no such race: every volunteer must register.
    joins_floor = 0 if cell.pool else cell.volunteers
    if not (
        joins_floor
        <= registry["joins"]
        <= cell.volunteers + info.scheduled_rejoins
    ):
        violations.append(
            f"joins={registry['joins']} outside "
            f"[{joins_floor}, {cell.volunteers + info.scheduled_rejoins}]"
        )
    # A scheduled *leave* can still register as a crash when it lands while
    # the channel is connecting (the tab goes silent before it ever opens),
    # so crashes are bounded by all scheduled departures, not crashes alone.
    departures = info.scheduled_crashes + info.scheduled_leaves
    if registry["crashes"] > departures:
        violations.append(
            f"crashes={registry['crashes']} > scheduled departures={departures}"
        )
    if registry["crashes"] + registry["leaves"] > registry["joins"]:
        violations.append("crashes + leaves exceed joins")

    # ---------------------------------------------- proportional placement
    if not cell.abort_on_hit:
        per_device = _items_per_device(cell_result)
        excluded = set(cell_result.schedule_info.disturbed_names)
        rated = sorted(
            (
                (cell_result.device_names[name], per_device.get(name, 0))
                for name in cell_result.device_names
                if name not in excluded
            ),
        )
        quartile = len(rated) // 4
        total_items = sum(items for _rate, items in rated)
        if quartile >= 1 and total_items >= 4 * len(rated):
            slow = rated[:quartile]
            fast = rated[-quartile:]
            slow_mean = sum(items for _r, items in slow) / len(slow)
            fast_mean = sum(items for _r, items in fast) / len(fast)
            if fast_mean < slow_mean:
                violations.append(
                    "placement not proportional: fastest quartile mean "
                    f"{fast_mean:.1f} < slowest quartile mean {slow_mean:.1f}"
                )
    return violations


def bounded_tail_violations(
    cell_result: CellResult, task_chunk: Optional[float] = None
) -> List[str]:
    """Devices that completed work later than one chunk past the abort.

    One chunk of at most *task_chunk* work units (default: the cell's own)
    may still be in flight when the abort fans out; anything later means
    the cancellation tail is unbounded.  The per-device limit folds in the
    calibrated rate and any straggler slowdown via ``seconds_per_unit``.
    """
    if cell_result.aborted_virtual is None:
        raise ValueError("bounded_tail_violations needs an aborted cell")
    chunk = task_chunk if task_chunk is not None else cell_result.cell.task_chunk
    if chunk is None:
        raise ValueError("bounded_tail_violations needs a task_chunk")
    violations = []
    for tail in cell_result.tails:
        if tail.last_completion_at is None:
            continue
        limit = cell_result.aborted_virtual + chunk * tail.seconds_per_unit + 1e-6
        if tail.last_completion_at > limit:
            violations.append(
                f"{tail.name} completed at {tail.last_completion_at:.3f}, "
                f"more than one chunk past the abort "
                f"(limit {limit:.3f}, aborted {cell_result.aborted_virtual:.3f})"
            )
    return violations


# ======================================================================= CLI
def main(argv: Optional[List[str]] = None) -> int:
    """``pando simulate --matrix`` — run scenario-matrix cells."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="pando simulate",
        description="Run planet-scale scenario-matrix cells in virtual time.",
    )
    parser.add_argument(
        "--matrix", action="store_true", help="run scenario-matrix cells"
    )
    parser.add_argument("--cell", help="run one named cell (see --list)")
    parser.add_argument(
        "--full", action="store_true", help="run every cell (default: smoke subset)"
    )
    parser.add_argument("--list", action="store_true", help="list cell names")
    parser.add_argument("--volunteers", type=int, help="override the fleet size")
    parser.add_argument("--inputs", type=int, help="override the input count")
    parser.add_argument("--seed", type=int, help="override the cell seed")
    parser.add_argument("--json", action="store_true", help="emit JSON lines")
    args = parser.parse_args(argv)

    if not args.matrix:
        parser.error("only --matrix mode is implemented; pass --matrix")
    catalogue = all_cells()
    if args.list:
        for name in sorted(catalogue):
            print(name)
        return 0
    if args.cell is not None:
        try:
            cells = [catalogue[args.cell]]
        except KeyError:
            parser.error(
                f"unknown cell {args.cell!r}; known: {sorted(catalogue)}"
            )
    elif args.full:
        cells = list(catalogue.values())
    else:
        cells = smoke_matrix()

    overrides: Dict[str, Any] = {}
    if args.volunteers is not None:
        overrides["volunteers"] = args.volunteers
    if args.inputs is not None:
        overrides["inputs"] = args.inputs
    if args.seed is not None:
        overrides["seed"] = args.seed

    failures = 0
    for cell in cells:
        cell = cell.with_overrides(**overrides) if overrides else cell
        cell_result = run_cell(cell)
        violations = verify_cell(cell_result)
        failures += bool(violations)
        summary = {
            "cell": cell.name,
            "seed": cell.seed,
            "volunteers": cell.volunteers,
            "outputs": len(cell_result.outputs),
            "aborted": cell_result.aborted,
            "virtual_s": cell_result.result.completed_at,
            "wall_s": round(cell_result.wall_seconds, 3),
            "events": cell_result.events_processed,
            "violations": violations,
        }
        if args.json:
            print(json.dumps(summary))
        else:
            status = "FAIL" if violations else "ok"
            print(
                f"[{status}] {cell.name}: {summary['outputs']} output(s), "
                f"virtual={summary['virtual_s']}, wall={summary['wall_s']}s, "
                f"events={summary['events']}"
            )
            for violation in violations:
                print(f"       - {violation}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
