"""Network latency/bandwidth models for the three deployment settings.

The paper evaluates Pando on a LAN (Wi-Fi to personal devices), a VPN
(Grid5000 nodes across France reached through INRIA's network) and a WAN
(PlanetLab EU nodes across Europe, reached through WebRTC).  Only two
network characteristics matter for Pando's throughput behaviour:

* the round-trip latency between master and volunteer, which is hidden by
  keeping ``batch_size`` inputs in flight (Limiter window);
* the transfer time of input/result payloads (relevant mostly for the
  image-processing application whose inputs are ~168 kB).

:class:`NetworkModel` maps a pair of hosts to a :class:`LinkProfile` and
computes per-message delivery delays, with optional jitter and loss of
connectivity (used by the failure injector).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "LinkProfile",
    "NetworkModel",
    "LAN_PROFILE",
    "VPN_PROFILE",
    "WAN_PROFILE",
    "LOOPBACK_PROFILE",
    "profile_for_setting",
]


@dataclass(frozen=True)
class LinkProfile:
    """Characteristics of a network path between two hosts."""

    name: str
    #: one-way base latency in seconds
    latency: float
    #: jitter amplitude in seconds (uniform, added to the base latency)
    jitter: float
    #: usable bandwidth in bytes per second
    bandwidth: float
    #: probability that establishing a direct (WebRTC) connection fails and
    #: must fall back to a relayed path — models NAT traversal difficulties
    nat_failure_rate: float = 0.0

    def one_way_delay(self, size_bytes: int, rng: Optional[random.Random] = None) -> float:
        """Delivery delay for a message of *size_bytes* bytes."""
        jitter = 0.0
        if self.jitter > 0:
            jitter = (rng or random).uniform(0.0, self.jitter)
        transfer = size_bytes / self.bandwidth if self.bandwidth > 0 else 0.0
        return self.latency + jitter + transfer

    @property
    def rtt(self) -> float:
        """Nominal round-trip time (ignoring payload size and jitter)."""
        return 2.0 * self.latency


#: Messages between co-located processes (master talking to itself).
LOOPBACK_PROFILE = LinkProfile(
    name="loopback", latency=0.00005, jitter=0.0, bandwidth=1e9
)

#: Wi-Fi local network between personal devices (paper section 5.2).
LAN_PROFILE = LinkProfile(
    name="lan", latency=0.002, jitter=0.001, bandwidth=30e6 / 8
)

#: VPN to Grid5000 over INRIA's network: low tens of milliseconds RTT,
#: well-provisioned links (paper section 5.3).
VPN_PROFILE = LinkProfile(
    name="vpn", latency=0.010, jitter=0.004, bandwidth=50e6 / 8
)

#: WAN to PlanetLab EU nodes over WebRTC: tens to low hundreds of
#: milliseconds RTT, more jitter, NAT traversal occasionally slow
#: (paper section 5.4).
WAN_PROFILE = LinkProfile(
    name="wan", latency=0.045, jitter=0.020, bandwidth=10e6 / 8, nat_failure_rate=0.05
)


def profile_for_setting(setting: str) -> LinkProfile:
    """Return the canonical profile for ``"lan"``, ``"vpn"``, ``"wan"`` or ``"loopback"``."""
    profiles = {
        "lan": LAN_PROFILE,
        "vpn": VPN_PROFILE,
        "wan": WAN_PROFILE,
        "loopback": LOOPBACK_PROFILE,
    }
    try:
        return profiles[setting.lower()]
    except KeyError:
        raise ValueError(
            f"unknown network setting {setting!r}; expected one of {sorted(profiles)}"
        ) from None


class NetworkModel:
    """Compute message delays between named hosts.

    A default profile applies to every pair unless a more specific link was
    registered with :meth:`set_link`.  The model also tracks byte counters per
    link for the bench reports.
    """

    def __init__(
        self,
        default_profile: LinkProfile = LAN_PROFILE,
        seed: Optional[int] = None,
    ) -> None:
        self.default_profile = default_profile
        self._links: Dict[Tuple[str, str], LinkProfile] = {}
        self._rng = random.Random(seed)
        self.bytes_sent: Dict[Tuple[str, str], int] = {}
        self.messages_sent: Dict[Tuple[str, str], int] = {}

    def set_link(self, host_a: str, host_b: str, profile: LinkProfile) -> None:
        """Register a specific *profile* for the pair (order-independent)."""
        self._links[self._key(host_a, host_b)] = profile

    def profile(self, host_a: str, host_b: str) -> LinkProfile:
        """Profile in effect between two hosts."""
        if host_a == host_b:
            return LOOPBACK_PROFILE
        return self._links.get(self._key(host_a, host_b), self.default_profile)

    def delay(self, sender: str, receiver: str, size_bytes: int) -> float:
        """One-way delay for a message of *size_bytes* from *sender* to *receiver*."""
        profile = self.profile(sender, receiver)
        key = self._key(sender, receiver)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0) + size_bytes
        self.messages_sent[key] = self.messages_sent.get(key, 0) + 1
        return profile.one_way_delay(size_bytes, self._rng)

    def nat_blocks_direct_connection(self, host_a: str, host_b: str) -> bool:
        """Sample whether NAT traversal between the two hosts fails."""
        profile = self.profile(host_a, host_b)
        if profile.nat_failure_rate <= 0:
            return False
        return self._rng.random() < profile.nat_failure_rate

    @staticmethod
    def _key(host_a: str, host_b: str) -> Tuple[str, str]:
        return (host_a, host_b) if host_a <= host_b else (host_b, host_a)

    def total_bytes(self) -> int:
        """Total payload bytes carried by the network so far."""
        return sum(self.bytes_sent.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<NetworkModel default={self.default_profile.name} "
            f"links={len(self._links)} bytes={self.total_bytes()}>"
        )
