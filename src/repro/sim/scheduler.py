"""Discrete-event scheduler driving all simulated deployments.

The scheduler is a priority queue of ``(time, sequence, callback)`` events on
a :class:`~repro.sim.clock.VirtualClock`.  Components schedule work with
:meth:`Scheduler.call_later` / :meth:`Scheduler.call_at` /
:meth:`Scheduler.call_soon`; the simulation is advanced with :meth:`run`,
:meth:`run_until` or :meth:`run_for`.

Determinism: events scheduled for the same instant run in scheduling order
(FIFO), so a simulation with a fixed random seed is fully reproducible — a
requirement for the StreamLender random-testing application and for stable
benchmark output.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from .clock import VirtualClock

__all__ = ["Scheduler", "ScheduledEvent"]


class ScheduledEvent:
    """Handle for a scheduled callback, allowing cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., None], args: Tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flag = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.time:.6f}{flag}>"


class Scheduler:
    """Virtual-time event loop.

    The scheduler also exposes simple run-time statistics (events processed)
    so benchmarks can report on simulation effort.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        #: maximum number of events before :class:`SimulationError` is raised,
        #: protecting against accidental infinite event cascades.
        self.max_events: Optional[int] = None

    # ----------------------------------------------------------- scheduling
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.clock.now

    def call_at(
        self, timestamp: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule *callback* to run at absolute virtual time *timestamp*."""
        if timestamp < self.clock.now:
            raise SimulationError(
                f"cannot schedule an event in the past: {timestamp} < {self.clock.now}"
            )
        event = ScheduledEvent(timestamp, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.clock.now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> ScheduledEvent:
        """Schedule *callback* to run at the current time, after pending events."""
        return self.call_at(self.clock.now, callback, *args)

    # -------------------------------------------------------------- running
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Virtual timestamp of the next live event (``None`` when idle).

        Cancelled events at the head of the queue are discarded on the way,
        so the answer is exact — the asyncio scheduler uses it both for stall
        detection (an idle simulation cannot make progress) and to pace
        virtual time against the wall clock.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process exactly one live event; False when the queue is empty.

        The single-event granularity is what makes the simulation fair to
        interleave with other ready-callback sources on one event loop: a
        long event cascade yields between events instead of monopolising the
        dispatcher.
        """
        if self.next_event_time() is None:
            return False
        self._step()
        return True

    def run(self, until: Optional[Callable[[], bool]] = None) -> float:
        """Process events until the queue is empty (or *until* returns True).

        Returns the virtual time at which the run stopped.
        """
        self._running = True
        try:
            while self._queue:
                if until is not None and until():
                    break
                self._step()
        finally:
            self._running = False
        return self.clock.now

    def run_until(self, timestamp: float) -> float:
        """Process events with time <= *timestamp*, then set the clock there."""
        self._running = True
        try:
            while self._queue and self._queue[0].time <= timestamp:
                self._step()
        finally:
            self._running = False
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)
        return self.clock.now

    def run_for(self, duration: float) -> float:
        """Process events for *duration* seconds of virtual time."""
        return self.run_until(self.clock.now + duration)

    def _step(self) -> None:
        event = heapq.heappop(self._queue)
        if event.cancelled:
            return
        self.clock.advance_to(event.time)
        self.events_processed += 1
        if self.max_events is not None and self.events_processed > self.max_events:
            raise SimulationError(
                f"simulation exceeded {self.max_events} events; "
                "likely an unbounded event cascade"
            )
        event.callback(*event.args)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Scheduler t={self.clock.now:.6f} pending={len(self._queue)} "
            f"processed={self.events_processed}>"
        )
