"""Exception hierarchy shared across the Pando reproduction.

The original Pando implementation signals failures through the pull-stream
callback protocol (an ``err`` value flowing upstream or downstream).  In this
Python port, those error values are instances of the exception classes below
so that they can also be raised at API boundaries (CLI, master, runtime).
"""

from __future__ import annotations


class PandoError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ProtocolError(PandoError):
    """A pull-stream module violated the ask/answer callback protocol.

    Typical violations: answering the same request twice, asking again before
    the previous answer arrived, or producing a value after ``done``.
    """


class StreamAborted(PandoError):
    """A downstream consumer aborted the stream before it finished."""


class ThreadOwnershipError(PandoError):
    """A ``@loop_only`` function was entered from a foreign thread.

    Raised only when the runtime thread asserts of
    :mod:`repro.analysis.annotations` are enabled (debug mode); the static
    ``pando-lint`` pass catches the same class of violation without running
    the code.
    """


class WorkerCrashed(PandoError):
    """A volunteer device crashed (crash-stop failure) while holding values."""

    def __init__(self, worker_id: str, message: str = "") -> None:
        super().__init__(message or f"worker {worker_id!r} crashed")
        self.worker_id = worker_id


class FrameCancelled(PandoError):
    """A pool task stopped mid-frame because the cancel flag was raised.

    Raised child-side between chunks (see :mod:`repro.pool.cancel`); the
    master only ever observes it on frames whose results are already
    undeliverable (the stream aborted), so it is bookkeeping, not failure.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"frame cancelled after {completed}/{total} values"
        )
        self.completed = completed
        self.total = total


class ConnectionClosed(PandoError):
    """A simulated WebSocket/WebRTC channel was closed or lost its heartbeat."""


class SignallingError(PandoError):
    """WebRTC signalling through the public server failed."""


class NATTraversalError(ConnectionClosed):
    """Direct WebRTC connectivity could not be established through NAT."""


class BundlingError(PandoError):
    """The processing function or its dependencies could not be bundled."""


class TaskError(PandoError):
    """The user-supplied processing function raised for a given input value."""

    def __init__(self, value: object, cause: BaseException) -> None:
        super().__init__(f"processing failed for input {value!r}: {cause!r}")
        self.value = value
        self.cause = cause


class DeploymentError(PandoError):
    """A simulated deployment scenario could not be constructed or run."""


class SimulationError(PandoError):
    """The discrete-event simulator reached an inconsistent state."""


class ExternalTransferError(PandoError):
    """A failure-prone external data-distribution transfer did not complete.

    Used by the *stubborn* processing applications (paper section 4.3) where
    results travel through DAT/WebTorrent-like channels that may fail even
    after the worker reported success.
    """
