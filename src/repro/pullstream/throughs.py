"""Standard pull-stream transformers (throughs).

These are the building blocks Pando composes between its sources and sinks:
``map``, ``filter``, ``take``, ``unique``, ``flatten``, plus ``batch`` /
``unbatch`` which implement the input batching used to hide network latency
in the paper's evaluation (section 5.5), and ``through`` which observes values
without modifying them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from .protocol import DONE, Callback, End, Source, is_error

__all__ = [
    "map_",
    "async_map_cb",
    "filter_",
    "filter_not",
    "take",
    "unique",
    "non_unique",
    "flatten",
    "batch",
    "unbatch",
    "through",
    "tap",
]


def map_(fn: Callable[[Any], Any]) -> Callable[[Source], Source]:
    """Apply *fn* synchronously to each value flowing through."""

    def wrap(read: Source) -> Source:
        def mapped(end: End, cb: Callback) -> None:
            def answer(answer_end: End, value: Any) -> None:
                if answer_end is not None:
                    cb(answer_end, None)
                    return
                try:
                    cb(None, fn(value))
                except Exception as exc:
                    # Abort upstream, then report the error downstream.
                    read(exc, lambda _e, _v: cb(exc, None))

            read(end, answer)

        mapped.pull_role = "source"
        return mapped

    wrap.pull_role = "through"
    return wrap


def async_map_cb(fn: Callable[[Any, Callback], None]) -> Callable[[Source], Source]:
    """Callback-style asynchronous map (see :mod:`repro.pullstream.async_map`).

    Present here for symmetry with the JS module list; the richer
    scheduler-aware version lives in ``async_map``.
    """
    from .async_map import async_map

    return async_map(fn)


def filter_(predicate: Callable[[Any], bool]) -> Callable[[Source], Source]:
    """Only let through values for which *predicate* is true."""

    def wrap(read: Source) -> Source:
        def filtered(end: End, cb: Callback) -> None:
            if end is not None:
                read(end, cb)
                return

            def answer(answer_end: End, value: Any) -> None:
                if answer_end is not None:
                    cb(answer_end, None)
                    return
                try:
                    keep = predicate(value)
                except Exception as exc:
                    read(exc, lambda _e, _v: cb(exc, None))
                    return
                if keep:
                    cb(None, value)
                else:
                    read(None, answer)

            read(None, answer)

        filtered.pull_role = "source"
        return filtered

    wrap.pull_role = "through"
    return wrap


def filter_not(predicate: Callable[[Any], bool]) -> Callable[[Source], Source]:
    """Complement of :func:`filter_`."""
    return filter_(lambda value: not predicate(value))


def take(n_or_test: Any, last: bool = False) -> Callable[[Source], Source]:
    """Let through the first *n* values (or while a predicate holds).

    When *n_or_test* is callable it acts as a "take while" predicate; with
    ``last=True`` the first failing value is still emitted (mirrors the JS
    ``pull.take`` options).
    """
    if callable(n_or_test):
        test = n_or_test
        counter = None
    else:
        counter = {"left": int(n_or_test)}
        test = None

    def wrap(read: Source) -> Source:
        state = {"ended": None}

        def taker(end: End, cb: Callback) -> None:
            if state["ended"] is not None and end is None:
                cb(state["ended"], None)
                return
            if end is not None:
                read(end, cb)
                return
            if counter is not None and counter["left"] <= 0:
                state["ended"] = DONE
                read(DONE, lambda _e, _v: cb(DONE, None))
                return

            def answer(answer_end: End, value: Any) -> None:
                if answer_end is not None:
                    state["ended"] = answer_end
                    cb(answer_end, None)
                    return
                if counter is not None:
                    counter["left"] -= 1
                    cb(None, value)
                    return
                if test(value):
                    cb(None, value)
                else:
                    state["ended"] = DONE
                    if last:
                        cb(None, value)
                    else:
                        read(DONE, lambda _e, _v: cb(DONE, None))

            read(None, answer)

        taker.pull_role = "source"
        return taker

    wrap.pull_role = "through"
    return wrap


def unique(key: Optional[Callable[[Any], Any]] = None) -> Callable[[Source], Source]:
    """Drop values whose key was already seen."""
    key = key or (lambda value: value)
    seen: set = set()

    def first_occurrence(value: Any) -> bool:
        k = key(value)
        if k in seen:
            return False
        seen.add(k)
        return True

    return filter_(first_occurrence)


def non_unique(key: Optional[Callable[[Any], Any]] = None) -> Callable[[Source], Source]:
    """Only let through values whose key was seen before (duplicates)."""
    key = key or (lambda value: value)
    seen: set = set()

    def is_duplicate(value: Any) -> bool:
        k = key(value)
        if k in seen:
            return True
        seen.add(k)
        return False

    return filter_(is_duplicate)


def flatten() -> Callable[[Source], Source]:
    """Flatten a stream of iterables into a stream of their elements."""

    def wrap(read: Source) -> Source:
        buffer: list = []
        state = {"ended": None}

        def flat(end: End, cb: Callback) -> None:
            if end is not None:
                read(end, cb)
                return
            if buffer:
                cb(None, buffer.pop(0))
                return
            if state["ended"] is not None:
                cb(state["ended"], None)
                return

            def answer(answer_end: End, value: Any) -> None:
                if answer_end is not None:
                    state["ended"] = answer_end
                    cb(answer_end, None)
                    return
                try:
                    buffer.extend(list(value))
                except TypeError:
                    buffer.append(value)
                flat(None, cb)

            read(None, answer)

        flat.pull_role = "source"
        return flat

    wrap.pull_role = "through"
    return wrap


def batch(size: int) -> Callable[[Source], Source]:
    """Group consecutive values into lists of at most *size* elements.

    Pando sends inputs to volunteers in batches (``--batch-size``) so that the
    transfer of the next inputs overlaps with the computation of the current
    one, hiding network latency (paper sections 5.2-5.5).
    """
    if size < 1:
        raise ValueError("batch size must be >= 1")

    def wrap(read: Source) -> Source:
        state = {"ended": None}

        def batched(end: End, cb: Callback) -> None:
            if end is not None:
                read(end, cb)
                return
            if state["ended"] is not None:
                cb(state["ended"], None)
                return
            chunk: list = []

            def answer(answer_end: End, value: Any) -> None:
                if answer_end is not None:
                    state["ended"] = answer_end
                    if chunk:
                        cb(None, list(chunk))
                    else:
                        cb(answer_end, None)
                    return
                chunk.append(value)
                if len(chunk) >= size:
                    cb(None, list(chunk))
                else:
                    read(None, answer)

            read(None, answer)

        batched.pull_role = "source"
        return batched

    wrap.pull_role = "through"
    return wrap


def unbatch() -> Callable[[Source], Source]:
    """Inverse of :func:`batch`: flatten lists back into single values."""
    return flatten()


def through(
    on_value: Optional[Callable[[Any], None]] = None,
    on_end: Optional[Callable[[End], None]] = None,
) -> Callable[[Source], Source]:
    """Observe values and termination without altering the stream."""

    def wrap(read: Source) -> Source:
        def observed(end: End, cb: Callback) -> None:
            def answer(answer_end: End, value: Any) -> None:
                if answer_end is not None:
                    if on_end is not None:
                        on_end(answer_end)
                    cb(answer_end, None)
                    return
                if on_value is not None:
                    on_value(value)
                cb(None, value)

            read(end, answer)

        observed.pull_role = "source"
        return observed

    wrap.pull_role = "through"
    return wrap


def tap(fn: Callable[[Any], None]) -> Callable[[Source], Source]:
    """Alias of :func:`through` observing only values."""
    return through(on_value=fn)
